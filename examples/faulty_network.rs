//! Fault injection demo: SysProf monitoring a client/server pair over a
//! network that loses, duplicates, reorders — and for half a second,
//! completely partitions — the monitoring path. The dissemination
//! protocol (per-subscription sequence numbers + ACK/NACK retransmits)
//! repairs every hole; the run prints what broke and what got fixed.
//!
//! ```text
//! cargo run --example faulty_network
//! ```

use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkFaults, LinkSpec, Port};
use simos::programs::EchoServer;
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::{GpaConfig, MonitorConfig, SysProf};

/// A client that fires a request every 4 ms.
struct PeriodicClient {
    server: NodeId,
    sock: Option<SocketId>,
    sent: u32,
}

impl Program for PeriodicClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.server, Port(80));
    }
    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        ctx.send(sock, 2_000, 1);
        self.sent += 1;
    }
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, _sock: SocketId, _reply: Message) {
        if self.sent >= 400 {
            ctx.exit();
            return;
        }
        ctx.sleep(SimDuration::from_millis(4), 0);
    }
    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
        let sock = self.sock.expect("connected");
        ctx.send(sock, 2_000, 1);
        self.sent += 1;
    }
}

fn main() {
    let client = NodeId(0);
    let server = NodeId(1);
    let monitor = NodeId(2);

    // 1. A hostile monitoring path: 4% loss, 2% duplication, 2%
    //    reordering, 200 µs of jitter — and an outright partition from
    //    0.8 s to 1.3 s. The application link stays clean; only SysProf's
    //    own traffic suffers.
    let plan = FaultPlan::default()
        .with_link(
            server,
            monitor,
            LinkFaults {
                loss: 0.04,
                duplicate: 0.02,
                reorder: 0.02,
                jitter: SimDuration::from_micros(200),
                reorder_delay: SimDuration::from_millis(1),
            },
        )
        .with_partition(
            vec![server],
            vec![monitor],
            SimTime::from_millis(800),
            SimTime::from_millis(1300),
        );

    let mut world = WorldBuilder::new(99)
        .node("client")
        .node("server")
        .node("monitor")
        .full_mesh(LinkSpec::gigabit_lan())
        .faults(plan)
        .build()
        .expect("valid topology");

    let sysprof = SysProf::deploy(
        &mut world,
        &[server],
        monitor,
        MonitorConfig {
            gpa: GpaConfig {
                log_deliveries: true,
                ..GpaConfig::default()
            },
            ..MonitorConfig::default()
        },
    );

    world.spawn(
        server,
        "app-server",
        Box::new(EchoServer::new(
            Port(80),
            512,
            SimDuration::from_micros(300),
        )),
    );
    world.spawn(
        client,
        "client",
        Box::new(PeriodicClient {
            server,
            sock: None,
            sent: 0,
        }),
    );

    // 2. Run four simulated seconds — enough for backed-off retransmits
    //    to drain after the partition heals.
    world.run_until(SimTime::from_secs(4));

    // 3. What the network did to the monitoring stream…
    let faults = world.network().fault_stats();
    println!("--- injected faults (monitoring link) ---");
    println!("random losses:    {}", faults.injected_losses);
    println!("partition drops:  {}", faults.partition_drops);
    println!("duplicates:       {}", faults.duplicates);
    println!("reordered:        {}", faults.reorders);
    println!("jittered:         {}", faults.jittered);

    // 4. …and how the protocol repaired it.
    let d = sysprof.daemon_stats(server).expect("daemon deployed");
    println!("\n--- daemon (sender) ---");
    println!("batches retransmitted: {}", d.retransmits);
    println!("acks received:         {}", d.acks_received);
    println!("nacks received:        {}", d.nacks_received);
    println!("resend-buffer evictions: {}", d.resend_evictions);

    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    let gs = gpa.gpa_stats();
    println!("\n--- GPA (receiver) ---");
    println!("sequenced batches:  {}", gs.batches_received);
    println!("duplicates dropped: {}", gs.duplicate_batches);
    println!("buffered o-o-o:     {}", gs.out_of_order);
    println!(
        "gaps: {} detected, {} recovered, {} abandoned",
        gs.gaps_detected, gs.gaps_recovered, gs.gaps_abandoned
    );
    println!("acks/nacks sent:    {}/{}", gs.acks_sent, gs.nacks_sent);
    println!(
        "\ninteractions delivered exactly once: {}",
        gpa.interaction_count()
    );
    println!("streams converged: {}", gpa.streams_converged());

    assert!(
        gpa.streams_converged(),
        "every gap must be repaired or accounted for"
    );
}
