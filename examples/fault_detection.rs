//! Online failure detection: one of the back-end NFS servers develops a
//! failing disk mid-run. SysProf's load reports and per-class summaries
//! finger the sick node within a couple of reporting intervals — the
//! "detect failures and performance bottlenecks" scenario that motivates
//! §3.2, driven entirely from monitoring data.
//!
//! ```text
//! cargo run --release --example fault_detection
//! ```

use simcore::{SimDuration, SimTime};
use sysprof_apps::storage::{build_storage_world, StorageConfig, BACKEND_PORT};

fn main() {
    let config = StorageConfig {
        threads_per_client: 4,
        duration: SimDuration::from_secs(20),
        ..StorageConfig::default()
    };
    let mut sw = build_storage_world(&config);
    let victim = sw.backend_nodes[1];
    let healthy = sw.backend_nodes[0];

    println!(
        "virtual storage service: 2 clients -> proxy -> {} back-ends",
        sw.backend_nodes.len()
    );
    println!("running healthy for 10 s…");
    sw.world.run_until(SimTime::from_secs(10));

    // Snapshot the per-backend view before the fault.
    let before: Vec<(simcore::NodeId, f64)> = {
        let gpa = sw.sysprof.gpa();
        let gpa = gpa.borrow();
        sw.backend_nodes
            .iter()
            .map(|&b| {
                let t = gpa
                    .class_summary(b, BACKEND_PORT)
                    .map(|s| s.mean_total_us / 1e3)
                    .unwrap_or(0.0);
                (b, t)
            })
            .collect()
    };
    for (node, ms) in &before {
        println!(
            "  {} mean interaction time: {ms:.1} ms",
            sw.world.network().node_name(*node)
        );
    }

    println!(
        "\ninjecting a disk fault on {} (8x slower seeks and transfers)…",
        sw.world.network().node_name(victim)
    );
    sw.world.degrade_disk(victim, 8.0);
    sw.world
        .run_until(SimTime::from_secs(20) + SimDuration::from_secs(2));

    // Diagnose from monitoring data only: compare each back-end's
    // per-interaction kernel time in the window after the fault.
    let fault_us = SimTime::from_secs(10).as_micros();
    let gpa = sw.sysprof.gpa();
    let gpa = gpa.borrow();
    println!("\nafter 10 more seconds, SysProf's post-fault window view:");
    let mut suspect = None;
    let mut worst = 0.0f64;
    let mut readings = Vec::new();
    for &b in &sw.backend_nodes {
        let recs = gpa.interactions_of(b, BACKEND_PORT);
        let window: Vec<_> = recs
            .into_iter()
            .filter(|r| r.start_us >= fault_us)
            .collect();
        let mean_ms = if window.is_empty() {
            0.0
        } else {
            window
                .iter()
                .map(|r| (r.end_us - r.start_us) as f64)
                .sum::<f64>()
                / window.len() as f64
                / 1e3
        };
        println!(
            "  {}: {} interactions since the fault, mean kernel time {:.1} ms",
            sw.world.network().node_name(b),
            window.len(),
            mean_ms,
        );
        readings.push((b, mean_ms));
        if mean_ms > worst {
            worst = mean_ms;
            suspect = Some(b);
        }
    }

    let suspect = suspect.expect("some backend reported");
    println!(
        "\n=> the post-fault interaction records indict {} ({:.0} ms/interaction)",
        sw.world.network().node_name(suspect),
        worst
    );
    assert_eq!(suspect, victim, "the monitor found the faulty node");
    let healthy_ms = readings
        .iter()
        .find(|(b, _)| *b == healthy)
        .map(|(_, ms)| *ms)
        .unwrap_or(0.0);
    println!(
        "   the healthy peer {} sits at {:.1} ms — {:.0}x difference",
        sw.world.network().node_name(healthy),
        healthy_ms,
        worst / healthy_ms.max(0.001)
    );
    println!("   detection used only SysProf data: no probe requests, no app changes.");
}
