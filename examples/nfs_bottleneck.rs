//! The §3.2 case study as a runnable diagnosis session: a shared virtual
//! storage service (clients → user-level NFS proxy → back-end NFS servers)
//! is slow — *where* is the time going?
//!
//! SysProf answers without touching the application: the per-interaction
//! records show the proxy spends a flat, small amount of user time per
//! request while the back-end's kernel time dwarfs it and grows with
//! load — the disk is the bottleneck, not the proxy.
//!
//! ```text
//! cargo run --release --example nfs_bottleneck
//! ```

use simcore::SimDuration;
use sysprof_apps::storage::{run_storage, StorageConfig};

fn main() {
    println!("Diagnosing the virtual storage service (Figures 4 & 5)…\n");
    println!(
        "{:>18} | {:>12} {:>14} | {:>18} | {:>10}",
        "iozone threads", "proxy user", "proxy kernel", "backend kernel", "throughput"
    );
    println!(
        "{:>18} | {:>12} {:>14} | {:>18} | {:>10}",
        "(per client)", "(ms)", "(ms)", "(ms)", "(req/s)"
    );

    let duration = SimDuration::from_secs(10);
    let mut last = None;
    for threads in [1usize, 2, 4, 8, 16] {
        let r = run_storage(StorageConfig {
            threads_per_client: threads,
            duration,
            ..StorageConfig::default()
        });
        println!(
            "{:>18} | {:>12.3} {:>14.3} | {:>18.2} | {:>10.0}",
            threads,
            r.proxy_user_ms,
            r.proxy_kernel_ms,
            r.backend_kernel_ms,
            r.requests_completed as f64 / duration.as_secs_f64(),
        );
        last = Some(r);
    }

    let r = last.expect("sweep ran");
    println!();
    println!("Diagnosis at the highest load:");
    println!(
        "  - time at the proxy:    {:.2} ms/interaction ({:.2} user + {:.2} kernel)",
        r.proxy_user_ms + r.proxy_kernel_ms,
        r.proxy_user_ms,
        r.proxy_kernel_ms
    );
    println!(
        "  - time at the back-end: {:.2} ms/interaction — {:.0}x the proxy",
        r.backend_kernel_ms,
        r.backend_kernel_ms / (r.proxy_user_ms + r.proxy_kernel_ms)
    );
    println!(
        "  - network round trip:   {:.3} ms — insignificant",
        r.network_rtt_ms
    );
    println!(
        "  - monitoring cost:      {:.2}% of proxy CPU",
        r.proxy_overhead_fraction * 100.0
    );
    println!("\n=> The back-end NFS servers (their disks) are the bottleneck.");
    println!("   The proxy's flat user time rules it out; its rising kernel time is");
    println!("   queueing behind the slow back-ends, not proxy processing.");
}
