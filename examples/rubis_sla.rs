//! The §3.3 case study: enforcing QoS for a multi-tier auction site with
//! window-constrained scheduling, with and without SysProf's measurements
//! feeding the dispatcher.
//!
//! Two request classes (CPU-heavy *bidding* with tight deadlines,
//! network-heavy *comment* with loose ones) share two servlet servers.
//! Halfway through, a background job lands on one server. Plain DWCS
//! dispatches blindly and degrades; RA-DWCS routes around the loaded
//! server using SysProf's per-server load reports.
//!
//! ```text
//! cargo run --release --example rubis_sla
//! ```

use simcore::SimDuration;
use sysprof_apps::rubis::{run_rubis, RubisConfig};

fn main() {
    let duration = SimDuration::from_secs(30);
    println!("RUBiS with DWCS scheduling: 150 bids/s + 150 comments/s over two servlet");
    println!(
        "servers; a background job loads server A at t = {}s.\n",
        duration.as_secs_f64() / 2.0
    );

    let plain = run_rubis(RubisConfig {
        resource_aware: false,
        monitored: false,
        duration,
        ..RubisConfig::default()
    });
    let ra = run_rubis(RubisConfig {
        resource_aware: true,
        monitored: true,
        duration,
        ..RubisConfig::default()
    });

    for (name, r) in [
        ("plain DWCS (Figure 6)", &plain),
        ("RA-DWCS (Figure 7)", &ra),
    ] {
        println!("== {name} ==");
        println!(
            "  bidding : {:>5.1}/s overall   before load {:>5.1}/s   after {:>5.1}/s   dropped {}",
            r.bid.mean_rps, r.bid.first_half_rps, r.bid.second_half_rps, r.bid.dropped
        );
        println!(
            "  comment : {:>5.1}/s overall   before load {:>5.1}/s   after {:>5.1}/s   dropped {}",
            r.comment.mean_rps,
            r.comment.first_half_rps,
            r.comment.second_half_rps,
            r.comment.dropped
        );
        println!();
    }

    println!(
        "RA-DWCS aggregate gain: {:+.1}% ({:.1} -> {:.1} responses/s)",
        (ra.total_rps / plain.total_rps - 1.0) * 100.0,
        plain.total_rps,
        ra.total_rps
    );
    println!(
        "bidding-class protection: plain lost {:.1}/s after the disturbance, RA lost {:.1}/s",
        plain.bid.first_half_rps - plain.bid.second_half_rps,
        (ra.bid.first_half_rps - ra.bid.second_half_rps).max(0.0)
    );
    println!(
        "cost of the measurements that made it possible: {:.2}% server CPU",
        ra.server_overhead_fraction * 100.0
    );

    // A compact per-second timeline of the bidding class, to see the
    // disturbance hit and (for RA) not hit.
    println!("\nbidding-class throughput timeline (responses/s per second):");
    for (name, r) in [("plain", &plain), ("ra   ", &ra)] {
        let line: String = r
            .bid
            .series
            .iter()
            .take(duration.as_secs_f64() as usize)
            .map(|(_, rate)| {
                // 0-9 scale against the 150/s offered rate.
                let level = ((rate / 150.0) * 9.0).round().clamp(0.0, 9.0) as u32;
                char::from_digit(level, 10).expect("digit in range")
            })
            .collect();
        println!("  {name}: {line}");
    }
    println!("         (9 = full offered rate, 0 = nothing; disturbance at the midpoint)");
}
