//! Custom Performance Analyzers: install an E-Code program into the
//! running kernel at runtime (§2's CPAs) and use a dynamic E-Code filter
//! on a monitoring channel.
//!
//! The CPA here watches NIC receive events and maintains a per-event
//! running average packet size plus a count of jumbo-ish packets, all
//! inside the (simulated) kernel, fuel-metered. No application changes,
//! no recompilation — the program is compiled and installed while the
//! system runs.
//!
//! ```text
//! cargo run --example custom_analyzer
//! ```

use kprof::EventMask;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{LinkSpec, Port};
use simos::programs::{EchoServer, OneShotSender};
use simos::WorldBuilder;
use sysprof::CpaAnalyzer;

const CPA_SOURCE: &str = r#"
    // Persistent state lives in statics, like a tiny in-kernel eBPF map.
    static int packets = 0;
    static int big_packets = 0;
    static double total_bytes = 0.0;

    // Inputs per event: kind, pid, wall_us, size, aux, port_src, port_dst.
    if (kind == 7) {                 // NetRxNic
        packets = packets + 1;
        total_bytes = total_bytes + size;
        if (size >= 1400) {
            big_packets = big_packets + 1;
        }
        out(0, total_bytes / packets);   // slot 0: running mean size
        out(1, big_packets);             // slot 1: jumbo count
    }
    return size >= 1400;                 // flag full-MTU packets
"#;

fn main() {
    let mut world = WorldBuilder::new(7)
        .node("client")
        .node("server")
        .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
        .build()
        .expect("valid topology");

    // Compile and "download into the kernel" at runtime.
    let cpa = CpaAnalyzer::compile("rx-size-profile", CPA_SOURCE, EventMask::NETWORK)
        .expect("the program is valid E-Code");
    println!("compiled CPA: {} bytecode instructions", {
        // Show that this really is compiled, not interpreted source.
        ecode::Program::compile(CPA_SOURCE, &sysprof::EVENT_INPUTS)
            .expect("compiles")
            .code_len()
    });
    let cpa_id = world.kprof_mut(NodeId(1)).register(Box::new(cpa));

    // Traffic: one 400 KB transfer to an echo server.
    world.spawn(
        NodeId(1),
        "server",
        Box::new(EchoServer::new(
            Port(80),
            1_000,
            SimDuration::from_micros(50),
        )),
    );
    world.spawn(
        NodeId(0),
        "client",
        Box::new(OneShotSender::new(NodeId(1), Port(80), 400_000)),
    );
    world.run_until(SimTime::from_secs(1));

    // Read the CPA's accumulated state back out.
    let kprof = world.kprof(NodeId(1));
    let cpa = kprof
        .analyzer_as::<CpaAnalyzer>(cpa_id)
        .expect("still installed");
    println!("events seen by the CPA : {}", cpa.events());
    println!("events flagged (>=1400B): {}", cpa.flagged());
    println!(
        "running mean packet size: {:.0} B (slot 0)",
        cpa.output(0).expect("traffic flowed")
    );
    println!(
        "jumbo packet count      : {:.0} (slot 1)",
        cpa.output(1).expect("traffic flowed")
    );
    println!(
        "kernel-side state       : packets={:?} big={:?}",
        cpa.global("packets"),
        cpa.global("big_packets")
    );
    println!(
        "fuel aborts             : {} (budget enforced per event)",
        cpa.aborted()
    );
    println!(
        "monitoring CPU charged  : {}",
        world.node_stats(NodeId(1)).cpu.monitor
    );
}
