//! The E-Code verifier: what happens when an administrator submits a bad
//! Custom Performance Analyzer, and what the machine-checked report for
//! an admitted one looks like.
//!
//! A CPA runs in the kernel fast path on every matching event, so the
//! paper requires analyzers that "never block and be computationally
//! small". The verifier enforces that *before installation*, the way an
//! eBPF verifier does: guaranteed traps and over-budget programs are
//! rejected with line-numbered diagnostics, and admitted programs carry a
//! proven worst-case fuel bound.
//!
//! ```text
//! cargo run --example verify_cpa
//! ```

use ecode::{verify, VerifyLimits};
use sysprof::EVENT_INPUTS;

/// First attempt: a per-port byte ratio. Three problems hide in it — a
/// divisor interval reasoning proves is always zero, an out() slot
/// beyond what the host retains, and a static that is never read.
const BAD: &str = r#"static int reqs = 0;
static int total = 0;
static int debug = 0;
int scale = 2 - 2;
if (port_dst == 2049) {
    reqs = reqs + 1;
}
total = total + size;
out(500, total / scale);
return 0;
"#;

/// The fixed version: `max(reqs, 1)` gives the divisor an interval that
/// provably excludes zero, and slot 0 is within the host's range. The
/// `1 == 1` guard is deliberate clutter for the optimizer to fold away.
const GOOD: &str = r#"static int reqs = 0;
static int total = 0;
if (port_dst == 2049) {
    reqs = reqs + 1;
}
total = total + size;
if (1 == 1) {
    out(0, total / max(reqs, 1));
}
return reqs;
"#;

fn main() {
    let limits = VerifyLimits::default();

    println!("submitting the buggy analyzer:\n");
    match verify(BAD, &EVENT_INPUTS, &limits) {
        Ok(_) => unreachable!("the buggy program must be rejected"),
        Err(e) => println!("{e}\n"),
    }

    println!("submitting the fixed analyzer:\n");
    let verified = verify(GOOD, &EVENT_INPUTS, &limits).expect("the fixed program is admitted");
    let r = verified.report();
    println!(
        "admitted: worst-case fuel {} (was {} before optimization),",
        r.fuel_bound, r.unoptimized_fuel_bound
    );
    println!(
        "          {} bytecode instructions (was {}),",
        r.code_len, r.unoptimized_code_len
    );
    println!("          {} warning(s):", r.warnings.len());
    for w in &r.warnings {
        println!("            {w}");
    }
    println!();
    println!(
        "the host can now charge at most {} instructions per event — a",
        r.fuel_bound
    );
    println!("machine-checked bound, not a runtime abort after the fact.");
}
