//! Runs every workload scenario in the library and prints the GPA's
//! diagnosis next to the application's own truth — the demo of SysProf
//! doing its actual job: naming the hot shard, the slow leaf, the
//! straggler rank, and the origin-bound tail from kernel-event streams
//! alone.
//!
//! ```text
//! cargo run --example scenario_diagnosis
//! ```

use sysprof_apps::{AllreduceScenario, CdnScenario, FanoutScenario, KvStoreScenario, ScenarioSpec};

const SEED: u64 = 7;

fn show<S: ScenarioSpec>(spec: &S, truth: impl FnOnce(&S::Output) -> String) {
    let run = spec.run(SEED);
    let diagnosis = spec.diagnose(&run);
    println!("=== {} (seed {SEED}) ===", spec.name());
    println!("application truth: {}", truth(&run.output));
    println!("GPA diagnosis:     {diagnosis}");
}

fn main() {
    show(&KvStoreScenario::default(), |r| {
        format!(
            "shard {} served {:.0}% of {} ops",
            r.hot_shard,
            100.0 * r.hot_shard_share,
            r.ops_completed
        )
    });
    show(&FanoutScenario::default(), |r| {
        format!(
            "slow leaf is index 4; {} requests, p50 {}µs, p99 {}µs",
            r.requests_completed, r.p50_us, r.p99_us
        )
    });
    show(&AllreduceScenario::default(), |r| {
        format!(
            "straggler is rank 2; {} iterations, mean {:.0}µs each",
            r.iterations_completed, r.mean_iteration_us
        )
    });
    show(&CdnScenario::default(), |r| {
        format!(
            "hit ratio {:.0}%, {} origin fetches, p50 {}µs, p95 {}µs",
            100.0 * r.hit_ratio,
            r.origin_fetches,
            r.p50_us,
            r.p95_us
        )
    });
}
