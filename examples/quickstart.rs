//! Quickstart: deploy SysProf on a tiny client/server cluster, generate
//! some traffic, and inspect what the monitor saw — per-interaction
//! records, `/proc`-style views, and the cluster-wide GPA summary.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use simcore::{NodeId, SimDuration, SimTime};
use simnet::{LinkSpec, Port};
use simos::programs::EchoServer;
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::{procfs, MonitorConfig, SysProf};

/// A client that sends a request every 5 ms and reads the reply.
struct PeriodicClient {
    server: NodeId,
    sock: Option<SocketId>,
    sent: u32,
}

impl Program for PeriodicClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.server, Port(80));
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        ctx.send(sock, 2_000, 1);
        self.sent += 1;
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, _reply: Message) {
        if self.sent >= 200 {
            ctx.exit();
            return;
        }
        ctx.sleep(SimDuration::from_millis(5), 0);
        let _ = sock;
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
        let sock = self.sock.expect("connected");
        ctx.send(sock, 2_000, 1);
        self.sent += 1;
    }
}

fn main() {
    // 1. A three-node cluster: client, server, and a monitoring node
    //    hosting the global performance analyzer.
    let mut world = WorldBuilder::new(42)
        .node("client")
        .node("server")
        .node("monitor")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .expect("valid topology");

    // 2. Deploy SysProf: an LPA + dissemination daemon on the server, the
    //    GPA on the monitoring node, connected over the simulated wire.
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(1)],
        NodeId(2),
        MonitorConfig::default(),
    );

    // 3. The application under diagnosis: an echo server with 300 µs of
    //    per-request compute, driven by a periodic client. Neither is
    //    instrumented in any way.
    world.spawn(
        NodeId(1),
        "app-server",
        Box::new(EchoServer::new(
            Port(80),
            512,
            SimDuration::from_micros(300),
        )),
    );
    world.spawn(
        NodeId(0),
        "client",
        Box::new(PeriodicClient {
            server: NodeId(1),
            sock: None,
            sent: 0,
        }),
    );

    // 4. Run two simulated seconds.
    world.run_until(SimTime::from_secs(2));

    // 5. What did the monitor see? First the node-local view…
    let lpa = sysprof.lpa(&world, NodeId(1)).expect("LPA deployed");
    println!("--- /proc/sysprof/status (server) ---");
    println!(
        "{}",
        procfs::render_status(NodeId(1), world.kprof(NodeId(1)), lpa)
    );
    println!("--- /proc/sysprof/interactions (last few) ---");
    let interactions = procfs::render_interactions(lpa);
    for line in interactions.lines().take(6) {
        println!("{line}");
    }

    // 6. …then the cluster-wide GPA view.
    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    println!("\n--- GPA summary ---");
    println!("{}", procfs::render_gpa_summary(&gpa));
    let summary = gpa
        .class_summary(NodeId(1), Port(80))
        .expect("interactions were observed");
    println!(
        "class :80 on server: {} interactions, mean total {:.0} µs \
         (kernel-in {:.0} µs, user {:.0} µs, kernel-out {:.0} µs)",
        summary.count,
        summary.mean_total_us,
        summary.mean_kernel_in_us,
        summary.mean_user_us,
        summary.mean_kernel_out_us,
    );
    println!(
        "\nmonitoring overhead on the server: {:.3}% of CPU",
        sysprof.overhead_fraction(&world, NodeId(1)) * 100.0
    );
}
