#!/usr/bin/env bash
# Local CI: formatting, lints (deny warnings), and the full test suite.
# Run from the repo root. Mirrors what a hosted pipeline would do.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test (release)"
cargo test --release -q

echo "==> bench smoke (hot path)"
# Short hot-path run: exercises the emit->dispatch->VM->encode pipeline in
# release mode and self-validates the JSON report it writes (the binary
# exits nonzero on a malformed file). Uses a scratch path so the committed
# BENCH_hotpath.json baseline is only ever refreshed deliberately.
cargo run -q --release -p sysprof-bench --bin hotpath -- --smoke --out target/BENCH_hotpath_smoke.json
test -s target/BENCH_hotpath_smoke.json

echo "==> examples"
cargo build -q --examples
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "--> example: $name"
    cargo run -q --example "$name"
done

echo "CI OK"
