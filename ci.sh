#!/usr/bin/env bash
# Local CI: formatting, lints (deny warnings), static analysis, and the
# full test suite. Run from the repo root. Mirrors what a hosted
# pipeline would do.
#
#   ./ci.sh              full pipeline
#   ./ci.sh --analyze    only the static-analysis gate (fast pre-commit check)
#   ./ci.sh --scenarios  only the scenario library: tests + bench smoke
#   ./ci.sh --merge      only the shard-safety analysis + sharded evaluation path
#   ./ci.sh --digest     only the digest plane: digest tests + sharded bench smoke
#   ./ci.sh --jit        only the compiled execution tier: tier sweeps + bench smoke
set -euo pipefail
cd "$(dirname "$0")"

run_analyzer() {
    echo "==> sysprof-analyzer (determinism + unsafe hygiene, hard gate)"
    # Exit 1 = unwaived findings, 2 = bad analyzer.toml; both fail CI.
    cargo run -q -p sysprof-analyzer -- --quiet
}

run_scenario_bench_smoke() {
    echo "==> bench smoke (scenario suite)"
    # Short run over every workload scenario; the binary self-validates
    # the JSON report. Scratch path, same policy as the hotpath smoke.
    cargo run -q --release -p sysprof-bench --bin scenarios -- --smoke \
        --out target/BENCH_scenarios_smoke.json
    test -s target/BENCH_scenarios_smoke.json
}

if [[ "${1:-}" == "--analyze" ]]; then
    run_analyzer
    echo "ANALYZE OK"
    exit 0
fi

if [[ "${1:-}" == "--scenarios" ]]; then
    # Fast path while iterating on the scenario library: golden
    # diagnoses + chaos matrix, the apps crate's own tests, and the
    # scenario bench smoke — skips fmt/clippy/miri and the full suite.
    echo "==> scenario tests (golden diagnoses + chaos matrix)"
    cargo test -q -p sysprof-apps
    cargo test -q --test scenarios
    run_scenario_bench_smoke
    echo "SCENARIOS OK"
    exit 0
fi

if [[ "${1:-}" == "--digest" ]]; then
    # Fast path while iterating on the parallel digest plane: the
    # digest fold + worker lifecycle + proptest suite, the GPA wiring,
    # the kvstore differential, and a short hotpath bench run that
    # exercises the sharded arms — skips fmt/clippy/miri and the full
    # suite.
    echo "==> sharded digest plane (pubsub)"
    cargo test -q -p pubsub digest
    echo "==> GPA digest wiring (core)"
    cargo test -q -p sysprof digest
    echo "==> sharded GPA end-to-end (kvstore differential)"
    cargo test -q --test sharded_gpa
    echo "==> bench smoke (hot path incl. sharded digest arms)"
    cargo run -q --release -p sysprof-bench --bin hotpath -- --smoke \
        --min-speedup 0.5 --out target/BENCH_hotpath_smoke.json
    test -s target/BENCH_hotpath_smoke.json
    echo "DIGEST OK"
    exit 0
fi

if [[ "${1:-}" == "--jit" ]]; then
    # Fast path while iterating on the compiled execution tier: the jit
    # unit + fallback tests, the three-tier generative sweeps, the
    # allocation-discipline proof, the CPA dispatch wiring, and a short
    # hotpath bench run that exercises the cpa_eval arm — skips
    # fmt/clippy/miri and the full suite.
    echo "==> compiled-tier lowering + fallback tests (ecode)"
    cargo test -q -p ecode jit
    echo "==> three-tier generative sweeps (reference/fused/compiled)"
    cargo test -q -p ecode --test verifier generated
    echo "==> allocation discipline (counting allocator, release)"
    cargo test -q --release -p ecode --test zero_alloc
    echo "==> CPA dispatch + filter wiring (core, pubsub)"
    cargo test -q -p sysprof cpa
    cargo test -q -p pubsub publish
    echo "==> bench smoke (hot path incl. cpa_eval arm)"
    cargo run -q --release -p sysprof-bench --bin hotpath -- --smoke \
        --min-speedup 0.5 --min-cpa 2.0 --out target/BENCH_hotpath_smoke.json
    test -s target/BENCH_hotpath_smoke.json
    echo "JIT OK"
    exit 0
fi

if [[ "${1:-}" == "--merge" ]]; then
    # Fast path while iterating on the merge-lattice analysis and the
    # sharded evaluation path: the classifier goldens + shard-differential
    # sweep, the digest fold, the GPA wiring, and the end-to-end scenario
    # differential — skips fmt/clippy/miri and the full suite.
    echo "==> shard-safety analysis (classifier goldens + differential sweep)"
    cargo test -q -p ecode --test verifier merge
    cargo test -q -p ecode --test verifier shard
    echo "==> sharded digest fold (pubsub)"
    cargo test -q -p pubsub digest
    echo "==> GPA digest wiring (core)"
    cargo test -q -p sysprof digest
    echo "==> sharded GPA end-to-end (kvstore differential)"
    cargo test -q --test sharded_gpa
    echo "MERGE OK"
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

run_analyzer

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test (release)"
cargo test --release -q

echo "==> miri (VM unsafe-path smoke)"
# The VM is the one crate with unsafe code; run its dedicated suite under
# Miri when a nightly toolchain with Miri is available. The container
# image is offline, so absence is tolerated — the same suite already ran
# natively as part of the workspace tests above.
if cargo +nightly miri --version >/dev/null 2>&1; then
    MIRIFLAGS="${MIRIFLAGS:-}" cargo +nightly miri test -p ecode --test miri_vm
else
    echo "--> miri not installed; skipping (suite ran natively in cargo test)"
fi

echo "==> bench smoke (hot path)"
# Short hot-path run: exercises the emit->dispatch->VM->encode pipeline in
# release mode and self-validates the JSON report it writes (the binary
# exits nonzero on a malformed file). Uses a scratch path so the committed
# BENCH_hotpath.json baseline is only ever refreshed deliberately.
# The speedup floor is deliberately loose for a 400k-event smoke run
# (scheduler noise swings short runs +/-25%): 0.5x of the committed
# baseline still fails CI on any real regression of the hot path. The
# cpa_eval floor is the real 2.0x gate: its ring-resident best-of-5
# alternating measurement is stable even at smoke length.
cargo run -q --release -p sysprof-bench --bin hotpath -- --smoke \
    --min-speedup 0.5 --min-cpa 2.0 --out target/BENCH_hotpath_smoke.json
test -s target/BENCH_hotpath_smoke.json

run_scenario_bench_smoke

echo "==> examples"
cargo build -q --examples
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "--> example: $name"
    cargo run -q --example "$name"
done

echo "CI OK"
