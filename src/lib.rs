//! Umbrella crate for the SysProf reproduction: re-exports every layer of
//! the workspace so examples and integration tests can reach the whole
//! system through one dependency.
//!
//! The layers, bottom-up:
//!
//! * [`simcore`] — discrete-event engine (virtual time, calendar, seeded
//!   randomness, online statistics),
//! * [`simnet`] — packet-level network (links, topologies, NTP clocks),
//! * [`kprof`] — the kernel monitoring interface (events, masks,
//!   predicates, analyzer registry, overhead accounting),
//! * [`simos`] — the simulated OS kernel (processes, scheduler, sockets,
//!   disks) instrumented with Kprof hooks,
//! * [`pbio`] — self-describing binary record encoding,
//! * [`ecode`] — the E-Code analyzer language and fuel-metered VM,
//! * [`pubsub`] — kernel-level publish/subscribe channels with dynamic
//!   E-Code filters,
//! * [`dwcs`] — the DWCS / RA-DWCS request schedulers,
//! * [`sysprof`] — the paper's toolkit: LPA, CPAs, dissemination daemon,
//!   GPA, controller, `/proc` views, and the [`sysprof::SysProf`] facade,
//! * [`sysprof_apps`] — the evaluation workloads (linpack, Iperf, the NFS
//!   virtual storage service, RUBiS),
//! * [`sysprof_bench`] — the drivers that regenerate each paper figure.

#![forbid(unsafe_code)]

pub use dwcs;
pub use ecode;
pub use kprof;
pub use pbio;
pub use pubsub;
pub use simcore;
pub use simnet;
pub use simos;
pub use sysprof;
pub use sysprof_apps;
pub use sysprof_bench;
