//! Full-duplex point-to-point links with bandwidth, propagation delay and a
//! drop-tail transmit queue per direction.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Maximum bytes that may be queued awaiting transmission per direction
    /// (drop-tail beyond this). Models switch/NIC buffering.
    pub queue_bytes: u64,
}

impl LinkSpec {
    /// 1 Gbps LAN with 50 µs propagation — the paper's primary testbed.
    pub fn gigabit_lan() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 1_000_000_000,
            propagation: SimDuration::from_micros(50),
            queue_bytes: 1024 * 1024,
        }
    }

    /// 100 Mbps LAN — the paper's secondary Iperf configuration.
    pub fn fast_ethernet() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 100_000_000,
            propagation: SimDuration::from_micros(100),
            queue_bytes: 1024 * 1024,
        }
    }

    /// Time to serialize `bytes` onto the wire at this link's bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero bandwidth.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        assert!(self.bandwidth_bps > 0, "link must have non-zero bandwidth");
        // ns = bits * 1e9 / bps, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(ns as u64)
    }
}

/// Outcome of asking a link direction to carry a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The packet was accepted.
    Sent {
        /// When the last bit leaves the sender (serialization complete).
        departure: SimTime,
        /// When the packet arrives at the receiver.
        arrival: SimTime,
    },
    /// The transmit queue was full; the packet is dropped (drop-tail).
    Dropped,
}

impl TransmitOutcome {
    /// The arrival time if the packet was sent.
    pub fn arrival_time(&self) -> Option<SimTime> {
        match self {
            TransmitOutcome::Sent { arrival, .. } => Some(*arrival),
            TransmitOutcome::Dropped => None,
        }
    }
}

/// One direction of a link: tracks when the transmitter frees up, so
/// back-to-back packets queue behind each other (store-and-forward FIFO).
#[derive(Debug, Clone)]
struct Direction {
    busy_until: SimTime,
    drops: u64,
    bytes_carried: u64,
    packets_carried: u64,
}

impl Direction {
    fn new() -> Self {
        Direction {
            busy_until: SimTime::ZERO,
            drops: 0,
            bytes_carried: 0,
            packets_carried: 0,
        }
    }

    fn transmit(&mut self, now: SimTime, bytes: u64, spec: &LinkSpec) -> TransmitOutcome {
        let start = now.max(self.busy_until);
        // Bytes already committed but not yet serialized as of `now` — the
        // queue occupancy a drop-tail check sees.
        let backlog_time = start.saturating_since(now);
        let backlog_bytes = (backlog_time.as_nanos() as u128 * spec.bandwidth_bps as u128
            / 8
            / 1_000_000_000) as u64;
        if backlog_bytes.saturating_add(bytes) > spec.queue_bytes.max(bytes) {
            self.drops += 1;
            return TransmitOutcome::Dropped;
        }
        let departure = start + spec.serialization_delay(bytes);
        self.busy_until = departure;
        self.bytes_carried += bytes;
        self.packets_carried += 1;
        TransmitOutcome::Sent {
            departure,
            arrival: departure + spec.propagation,
        }
    }
}

/// A full-duplex link. Directions are independent (as on switched Ethernet).
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    forward: Direction,
    reverse: Direction,
}

impl Link {
    /// Creates an idle link with the given parameters.
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            forward: Direction::new(),
            reverse: Direction::new(),
        }
    }

    /// The link parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Transmits `bytes` in the forward (`a -> b`) direction at time `now`.
    pub fn transmit_forward(&mut self, now: SimTime, bytes: u64) -> TransmitOutcome {
        self.forward.transmit(now, bytes, &self.spec)
    }

    /// Transmits `bytes` in the reverse (`b -> a`) direction at time `now`.
    pub fn transmit_reverse(&mut self, now: SimTime, bytes: u64) -> TransmitOutcome {
        self.reverse.transmit(now, bytes, &self.spec)
    }

    /// Packets dropped in (forward, reverse) directions.
    pub fn drops(&self) -> (u64, u64) {
        (self.forward.drops, self.reverse.drops)
    }

    /// Bytes successfully carried in (forward, reverse) directions.
    pub fn bytes_carried(&self) -> (u64, u64) {
        (self.forward.bytes_carried, self.reverse.bytes_carried)
    }

    /// Packets successfully carried in (forward, reverse) directions.
    pub fn packets_carried(&self) -> (u64, u64) {
        (self.forward.packets_carried, self.reverse.packets_carried)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serialization_delay_math() {
        let spec = LinkSpec::gigabit_lan();
        // 1500 bytes at 1 Gbps = 12 µs.
        assert_eq!(spec.serialization_delay(1500).as_nanos(), 12_000);
        let fe = LinkSpec::fast_ethernet();
        assert_eq!(fe.serialization_delay(1500).as_nanos(), 120_000);
    }

    #[test]
    fn idle_link_arrival_is_serialization_plus_propagation() {
        let mut link = Link::new(LinkSpec::gigabit_lan());
        let out = link.transmit_forward(SimTime::ZERO, 1500);
        match out {
            TransmitOutcome::Sent { departure, arrival } => {
                assert_eq!(departure.as_nanos(), 12_000);
                assert_eq!(arrival.as_nanos(), 12_000 + 50_000);
            }
            TransmitOutcome::Dropped => panic!("idle link dropped"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut link = Link::new(LinkSpec::gigabit_lan());
        let a = link
            .transmit_forward(SimTime::ZERO, 1500)
            .arrival_time()
            .unwrap();
        let b = link
            .transmit_forward(SimTime::ZERO, 1500)
            .arrival_time()
            .unwrap();
        assert_eq!(
            (b - a).as_nanos(),
            12_000,
            "second packet serializes after first"
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut link = Link::new(LinkSpec::gigabit_lan());
        let f = link
            .transmit_forward(SimTime::ZERO, 1500)
            .arrival_time()
            .unwrap();
        let r = link
            .transmit_reverse(SimTime::ZERO, 1500)
            .arrival_time()
            .unwrap();
        assert_eq!(f, r, "reverse direction does not queue behind forward");
    }

    #[test]
    fn drop_tail_when_queue_full() {
        let spec = LinkSpec {
            bandwidth_bps: 8_000, // 1 byte per ms: easy math
            propagation: SimDuration::ZERO,
            queue_bytes: 3000,
        };
        let mut link = Link::new(spec);
        let mut sent = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match link.transmit_forward(SimTime::ZERO, 1500) {
                TransmitOutcome::Sent { .. } => sent += 1,
                TransmitOutcome::Dropped => dropped += 1,
            }
        }
        assert!(dropped > 0, "oversubscribed link must drop");
        assert!(sent >= 2, "queue admits at least its capacity");
        assert_eq!(link.drops().0, dropped);
    }

    #[test]
    fn queue_drains_over_time() {
        let spec = LinkSpec {
            bandwidth_bps: 8_000_000, // 1 byte per µs
            propagation: SimDuration::ZERO,
            queue_bytes: 2000,
        };
        let mut link = Link::new(spec);
        // First packet starts serializing immediately.
        assert!(matches!(
            link.transmit_forward(SimTime::ZERO, 1500),
            TransmitOutcome::Sent { .. }
        ));
        // Its 1500 un-serialized bytes count as backlog, so a second packet
        // at the same instant would exceed the 2000-byte queue and drops.
        assert!(matches!(
            link.transmit_forward(SimTime::ZERO, 1500),
            TransmitOutcome::Dropped
        ));
        // Once the backlog serializes (1500 µs at 1 byte/µs), transmission
        // succeeds again.
        let later = SimTime::from_micros(1600);
        assert!(matches!(
            link.transmit_forward(later, 1500),
            TransmitOutcome::Sent { .. }
        ));
    }

    #[test]
    fn throughput_matches_bandwidth() {
        // Saturate a 100 Mbps link for one simulated second and check the
        // carried goodput is ≈ the configured bandwidth.
        let mut link = Link::new(LinkSpec::fast_ethernet());
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs(1);
        let mut carried = 0u64;
        while now < end {
            match link.transmit_forward(now, 1500) {
                TransmitOutcome::Sent { departure, .. } => {
                    carried += 1500;
                    now = departure;
                }
                TransmitOutcome::Dropped => unreachable!("sending at line rate"),
            }
        }
        let mbps = carried as f64 * 8.0 / 1e6;
        assert!((mbps - 100.0).abs() < 1.0, "measured {mbps} Mbps");
    }

    /// Deterministic generative sweep over the same properties the
    /// proptest versions below state, so they are exercised even where
    /// the proptest dev-dependency is a typecheck-only stand-in: FIFO
    /// order, bandwidth-bounded throughput, and exact drop accounting.
    #[test]
    fn generative_sweep_fifo_bandwidth_and_drop_accounting() {
        let mut rng = simcore::SimRng::seed(0xBEEF);
        for case in 0..200 {
            let spec = LinkSpec {
                bandwidth_bps: rng.uniform_u64(1_000_000, 10_000_000_000),
                propagation: SimDuration::from_micros(rng.uniform_u64(0, 500)),
                queue_bytes: rng.uniform_u64(1_500, 64 * 1024),
            };
            let mut link = Link::new(spec);
            let n = rng.uniform_u64(1, 200) as usize;
            let mut now = SimTime::ZERO;
            let mut last_arrival = SimTime::ZERO;
            let mut last_departure = SimTime::ZERO;
            let mut offered_bytes = 0u64;
            let mut dropped_bytes = 0u64;
            for _ in 0..n {
                now += SimDuration::from_micros(rng.uniform_u64(0, 2_000));
                let bytes = rng.uniform_u64(64, 9_000);
                offered_bytes += bytes;
                match link.transmit_forward(now, bytes) {
                    TransmitOutcome::Sent { departure, arrival } => {
                        // FIFO per direction.
                        assert!(arrival >= last_arrival, "case {case}: reordered");
                        last_arrival = arrival;
                        last_departure = departure;
                    }
                    TransmitOutcome::Dropped => dropped_bytes += bytes,
                }
            }
            // Drop-tail accounting is exact.
            let (carried, _) = link.bytes_carried();
            let (packets, _) = link.packets_carried();
            let (drops, _) = link.drops();
            assert_eq!(packets + drops, n as u64, "case {case}");
            assert_eq!(carried + dropped_bytes, offered_bytes, "case {case}");
            // The wire never beat its bit rate.
            let budget_bits =
                last_departure.as_nanos() as u128 * spec.bandwidth_bps as u128 / 1_000_000_000;
            assert!(
                (carried as u128) * 8 <= budget_bits + 8,
                "case {case}: carried {carried} B > {budget_bits} bits of wire time"
            );
        }
    }

    proptest! {
        /// Arrivals in one direction are monotone in submission order (FIFO
        /// — no reordering on a point-to-point link).
        #[test]
        fn prop_fifo_no_reordering(sizes in proptest::collection::vec(64u64..9000, 1..100)) {
            let mut link = Link::new(LinkSpec::gigabit_lan());
            let mut last = SimTime::ZERO;
            for (i, &s) in sizes.iter().enumerate() {
                let now = SimTime::from_micros(i as u64); // staggered submissions
                if let TransmitOutcome::Sent { arrival, .. } = link.transmit_forward(now, s) {
                    prop_assert!(arrival >= last);
                    last = arrival;
                }
            }
        }

        /// Carried bytes never exceed what the configured bandwidth could
        /// have serialized by the last departure: the wire cannot run
        /// faster than its bit rate.
        #[test]
        fn prop_bytes_bounded_by_bandwidth_times_time(
            bps in 1_000_000u64..10_000_000_000,
            sizes in proptest::collection::vec(64u64..9000, 1..200),
            gaps in proptest::collection::vec(0u64..5_000, 1..200),
        ) {
            let spec = LinkSpec {
                bandwidth_bps: bps,
                propagation: SimDuration::from_micros(10),
                queue_bytes: 64 * 1024,
            };
            let mut link = Link::new(spec);
            let mut now = SimTime::ZERO;
            let mut last_departure = SimTime::ZERO;
            for (i, &s) in sizes.iter().enumerate() {
                now += SimDuration::from_micros(gaps[i % gaps.len()]);
                if let TransmitOutcome::Sent { departure, .. } = link.transmit_forward(now, s) {
                    last_departure = departure;
                }
            }
            let (carried, _) = link.bytes_carried();
            // bits ≤ bps × elapsed seconds, with one byte of slack for
            // integer rounding in the serialization-delay division.
            let budget_bits = last_departure.as_nanos() as u128 * bps as u128 / 1_000_000_000;
            prop_assert!(
                (carried as u128) * 8 <= budget_bits + 8,
                "carried {carried} B > {budget_bits} bits of wire time"
            );
        }

        /// Drop-tail accounting is exact: every offered packet is either
        /// carried or counted in `drops`, and byte totals agree.
        #[test]
        fn prop_drops_are_exactly_offered_minus_carried(
            queue in 1_500u64..20_000,
            sizes in proptest::collection::vec(64u64..9000, 1..300),
        ) {
            let spec = LinkSpec {
                bandwidth_bps: 10_000_000, // slow enough to overflow the queue
                propagation: SimDuration::ZERO,
                queue_bytes: queue,
            };
            let mut link = Link::new(spec);
            let mut offered_bytes = 0u64;
            let mut dropped_bytes = 0u64;
            for &s in &sizes {
                offered_bytes += s;
                // Everything offered at t=0: maximal queue pressure.
                if matches!(link.transmit_forward(SimTime::ZERO, s), TransmitOutcome::Dropped) {
                    dropped_bytes += s;
                }
            }
            let (carried, _) = link.bytes_carried();
            let (packets, _) = link.packets_carried();
            let (drops, _) = link.drops();
            prop_assert_eq!(packets + drops, sizes.len() as u64);
            prop_assert_eq!(carried + dropped_bytes, offered_bytes);
            // The reverse direction was never touched.
            prop_assert_eq!(link.drops().1, 0);
            prop_assert_eq!(link.bytes_carried().1, 0);
        }
    }
}
