//! Per-node wall clocks with NTP-style offset and drift.
//!
//! The global performance analyzer correlates logs from different machines
//! using "NTP timestamps" (§2). Real NTP keeps clocks within a bounded
//! offset of true time but never perfectly aligned; reproducing that error
//! is essential for testing GPA correlation honestly.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Static description of a node clock's error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSpec {
    /// Constant offset from true (global simulation) time, in nanoseconds.
    /// May be negative (clock runs behind).
    pub offset_ns: i64,
    /// Drift rate in parts-per-million: the clock gains `drift_ppm`
    /// microseconds per second of true time. May be negative.
    pub drift_ppm: f64,
}

impl ClockSpec {
    /// A perfectly synchronized clock.
    pub const PERFECT: ClockSpec = ClockSpec {
        offset_ns: 0,
        drift_ppm: 0.0,
    };

    /// A typical LAN NTP-disciplined clock: offset within ±`bound_us`
    /// microseconds, drift within ±2 ppm, drawn deterministically from the
    /// node index.
    pub fn typical_ntp(node_index: u32, bound_us: i64) -> ClockSpec {
        // Cheap deterministic hash of the index; avoids needing an RNG here.
        let h = (node_index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17);
        let span = (bound_us.max(1) * 2_000) as u64; // ns range width
        let offset_ns = (h % span) as i64 - bound_us * 1_000;
        let drift_ppm = ((h >> 32) % 4_000) as f64 / 1_000.0 - 2.0;
        ClockSpec {
            offset_ns,
            drift_ppm,
        }
    }
}

/// A node's wall clock: converts between global simulation time and the
/// node-local timestamps that appear in monitoring records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NtpClock {
    spec: ClockSpec,
}

impl NtpClock {
    /// Creates a clock with the given error model.
    pub fn new(spec: ClockSpec) -> Self {
        NtpClock { spec }
    }

    /// The error model.
    pub fn spec(&self) -> &ClockSpec {
        &self.spec
    }

    /// The node-local wall-clock reading at global time `t`.
    ///
    /// Readings saturate at zero: a clock with a negative offset reads zero
    /// near simulation start rather than underflowing.
    pub fn wall(&self, t: SimTime) -> SimTime {
        let true_ns = t.as_nanos() as i128;
        let drift_ns = (true_ns as f64 * self.spec.drift_ppm / 1e6) as i128;
        let wall = true_ns + self.spec.offset_ns as i128 + drift_ns;
        SimTime::from_nanos(wall.clamp(0, u64::MAX as i128) as u64)
    }

    /// Inverts [`wall`](NtpClock::wall): estimates the global time at which
    /// this node's clock read `w`. Exact up to rounding of the drift term.
    pub fn true_time(&self, w: SimTime) -> SimTime {
        let wall_ns = w.as_nanos() as i128;
        let base = wall_ns - self.spec.offset_ns as i128;
        // wall = true * (1 + d) + offset  =>  true = (wall - offset)/(1 + d)
        let t = base as f64 / (1.0 + self.spec.drift_ppm / 1e6);
        SimTime::from_nanos(t.clamp(0.0, u64::MAX as f64) as u64)
    }

    /// The worst-case absolute error between wall and true time over a run
    /// of the given length — the bound GPA correlation windows must absorb.
    pub fn max_error(&self, run_length: SimDuration) -> SimDuration {
        let drift_ns = (run_length.as_nanos() as f64 * self.spec.drift_ppm.abs() / 1e6) as u64;
        SimDuration::from_nanos(self.spec.offset_ns.unsigned_abs() + drift_ns)
    }
}

impl Default for NtpClock {
    fn default() -> Self {
        NtpClock::new(ClockSpec::PERFECT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = NtpClock::default();
        let t = SimTime::from_secs(12);
        assert_eq!(c.wall(t), t);
        assert_eq!(c.true_time(t), t);
    }

    #[test]
    fn positive_offset_moves_wall_ahead() {
        let c = NtpClock::new(ClockSpec {
            offset_ns: 5_000,
            drift_ppm: 0.0,
        });
        assert_eq!(c.wall(SimTime::from_micros(1)).as_nanos(), 6_000);
    }

    #[test]
    fn negative_offset_saturates_at_zero() {
        let c = NtpClock::new(ClockSpec {
            offset_ns: -1_000_000,
            drift_ppm: 0.0,
        });
        assert_eq!(c.wall(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(c.wall(SimTime::from_millis(2)).as_nanos(), 1_000_000);
    }

    #[test]
    fn drift_accumulates() {
        let c = NtpClock::new(ClockSpec {
            offset_ns: 0,
            drift_ppm: 10.0,
        });
        // 10 ppm over 1 s = 10 µs fast.
        assert_eq!(c.wall(SimTime::from_secs(1)).as_nanos(), 1_000_010_000);
    }

    #[test]
    fn max_error_bounds_observed_error() {
        for idx in 0..50u32 {
            let spec = ClockSpec::typical_ntp(idx, 500);
            let c = NtpClock::new(spec);
            let run = SimDuration::from_secs(300);
            let bound = c.max_error(run);
            for s in [0u64, 10, 100, 300] {
                let t = SimTime::from_secs(s);
                let w = c.wall(t);
                let err = if w >= t { w - t } else { t - w };
                assert!(
                    err <= bound + SimDuration::from_nanos(1),
                    "node {idx}: err {err} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn typical_ntp_within_configured_bound() {
        for idx in 0..200u32 {
            let spec = ClockSpec::typical_ntp(idx, 500);
            assert!(spec.offset_ns.abs() <= 500_000, "offset {}", spec.offset_ns);
            assert!(spec.drift_ppm.abs() <= 2.0, "drift {}", spec.drift_ppm);
        }
    }

    #[test]
    fn zero_skew_spec_is_exactly_the_perfect_clock() {
        let explicit = NtpClock::new(ClockSpec {
            offset_ns: 0,
            drift_ppm: 0.0,
        });
        for s in [0u64, 1, 60, 86_400] {
            let t = SimTime::from_secs(s);
            assert_eq!(explicit.wall(t), t);
            assert_eq!(explicit.true_time(t), t);
        }
        assert_eq!(
            explicit.max_error(SimDuration::from_secs(3_600)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn max_error_with_zero_drift_is_the_offset_magnitude() {
        let c = NtpClock::new(ClockSpec {
            offset_ns: -73_000,
            drift_ppm: 0.0,
        });
        assert_eq!(
            c.max_error(SimDuration::from_secs(100)),
            SimDuration::from_nanos(73_000)
        );
    }

    #[test]
    fn negative_offset_true_time_of_early_wall_readings() {
        let c = NtpClock::new(ClockSpec {
            offset_ns: -500_000,
            drift_ppm: 0.0,
        });
        // A wall reading of w maps back to w + 500 µs of true time.
        assert_eq!(c.true_time(SimTime::from_millis(1)).as_nanos(), 1_500_000);
        // And the saturated region stays well-defined (never underflows).
        assert_eq!(c.true_time(SimTime::ZERO).as_nanos(), 500_000);
    }

    /// The cross-node guarantee GPA correlation relies on: a packet sent
    /// at sender-wall time `ws` and delivered `d` later reads receiver-wall
    /// time `wr` with `wr - ws` within `d ± (max_error_s + max_error_r)`.
    #[test]
    fn delivered_packet_timestamps_stay_within_documented_bound() {
        let run = SimDuration::from_secs(120);
        for si in 0..20u32 {
            for ri in 20..40u32 {
                let sender = NtpClock::new(ClockSpec::typical_ntp(si, 400));
                let receiver = NtpClock::new(ClockSpec::typical_ntp(ri, 400));
                let bound = sender.max_error(run) + receiver.max_error(run);
                for (send_s, flight_us) in [(1u64, 80u64), (30, 250), (119, 999)] {
                    let sent = SimTime::from_secs(send_s);
                    let flight = SimDuration::from_micros(flight_us);
                    let ws = sender.wall(sent).as_nanos() as i128;
                    let wr = receiver.wall(sent + flight).as_nanos() as i128;
                    let measured = wr - ws;
                    let err = (measured - flight.as_nanos() as i128).unsigned_abs() as u64;
                    assert!(
                        err <= bound.as_nanos() + 1,
                        "clocks {si}/{ri}: measured flight off by {err} ns > bound {bound}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_true_time_inverts_wall(offset in -1_000_000i64..1_000_000,
                                       drift in -50.0f64..50.0,
                                       secs in 1u64..10_000) {
            let c = NtpClock::new(ClockSpec { offset_ns: offset, drift_ppm: drift });
            let t = SimTime::from_secs(secs);
            let w = c.wall(t);
            // Skip the saturated-at-zero corner.
            prop_assume!(w > SimTime::ZERO);
            let back = c.true_time(w);
            let err = if back >= t { back - t } else { t - back };
            // f64 round-trip error stays under a microsecond for these ranges.
            prop_assert!(err < simcore::SimDuration::from_micros(1), "err {err}");
        }
    }
}
