//! Packet-level network simulation for the SysProf testbed.
//!
//! The paper evaluates SysProf on physical clusters (1 Gbps and 100 Mbps
//! Ethernet, NTP-synchronized nodes). This crate supplies the equivalent
//! substrate:
//!
//! * [`Ip`], [`Port`], [`EndPoint`], [`FlowKey`] — the addressing vocabulary
//!   the monitoring layer keys interactions on,
//! * [`Packet`] — what travels on the wire (the monitor may look only at
//!   headers: flow, size, direction — never at app payload tags),
//! * [`Link`] — a full-duplex link with bandwidth, propagation delay and a
//!   drop-tail transmission queue,
//! * [`Network`] — a topology of nodes and links that computes delivery
//!   schedules,
//! * [`NtpClock`] — per-node wall clocks with bounded offset and drift, so
//!   the global analyzer has to correlate timestamps the way real NTP-synced
//!   clusters force it to,
//! * [`FaultPlan`] / [`FaultInjector`] — deterministic, seeded fault
//!   injection (loss, jitter, duplication, reordering, timed partitions,
//!   crash schedules) applied after link serialization, so monitoring
//!   traffic experiences realistic silent loss.
//!
//! # Example
//!
//! ```
//! use simcore::{NodeId, SimTime};
//! use simnet::{LinkSpec, Network, NetworkBuilder};
//!
//! let mut net = NetworkBuilder::new()
//!     .node("client")
//!     .node("server")
//!     .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
//!     .build()?;
//! let verdict = net.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1500)?;
//! assert!(verdict.arrival_time().unwrap() > SimTime::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod clock;
mod fault;
mod link;
mod network;
mod packet;

pub use addr::{EndPoint, FlowKey, Ip, Port};
pub use clock::{ClockSpec, NtpClock};
pub use fault::{CrashSchedule, FaultInjector, FaultPlan, FaultStats, LinkFaults, Partition};
pub use link::{Link, LinkSpec, TransmitOutcome};
pub use network::{NetOutcome, Network, NetworkBuilder, NoRouteError, TopologyError};
pub use packet::{Packet, PacketDirection, PacketId, PayloadTag};
