//! Packets: the unit the wire carries and the monitor observes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::FlowKey;

/// Globally unique packet identifier (assigned by the sending stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// Which way a packet moved relative to an observing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketDirection {
    /// The packet arrived at the observing node.
    Inbound,
    /// The packet left the observing node.
    Outbound,
}

/// Application-level payload tag.
///
/// This is *application* state used to dispatch a delivered packet to the
/// right handler in the simulated programs. The monitoring layer must never
/// read it — SysProf is a black-box monitor. Keeping it as an opaque pair of
/// integers (message id + kind discriminant) makes accidental dependence
/// easy to audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PayloadTag {
    /// Application-chosen message identifier.
    pub msg_id: u64,
    /// Application-chosen message kind discriminant.
    pub kind: u32,
    /// Total payload bytes of the application message this packet is a
    /// segment of (application-protocol framing, like an RPC length field).
    pub total_bytes: u64,
}

impl PayloadTag {
    /// An empty tag for control traffic.
    pub const NONE: PayloadTag = PayloadTag {
        msg_id: 0,
        kind: 0,
        total_bytes: 0,
    };

    /// Creates a tag.
    pub const fn new(msg_id: u64, kind: u32, total_bytes: u64) -> Self {
        PayloadTag {
            msg_id,
            kind,
            total_bytes,
        }
    }
}

/// A packet on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id, for tracing a packet across stack layers.
    pub id: PacketId,
    /// Directed flow this packet belongs to.
    pub flow: FlowKey,
    /// Wire size in bytes, headers included.
    pub size: u32,
    /// Opaque application payload tag (invisible to the monitor).
    pub payload: PayloadTag,
}

impl Packet {
    /// Standard Ethernet MTU used when segmenting application messages.
    pub const MTU: u32 = 1500;
    /// Header overhead per packet (Ethernet+IP+TCP, rounded).
    pub const HEADER_BYTES: u32 = 66;
    /// Maximum payload bytes a single packet can carry.
    pub const MAX_PAYLOAD: u32 = Self::MTU - Self::HEADER_BYTES;

    /// Number of packets needed to carry `payload_bytes` of application
    /// data (minimum 1 — a zero-byte app message still sends one packet).
    pub fn count_for_payload(payload_bytes: u64) -> u64 {
        if payload_bytes == 0 {
            1
        } else {
            payload_bytes.div_ceil(Self::MAX_PAYLOAD as u64)
        }
    }

    /// Total wire bytes (payload + per-packet headers) for an application
    /// message of `payload_bytes`.
    pub fn wire_bytes_for_payload(payload_bytes: u64) -> u64 {
        payload_bytes + Self::count_for_payload(payload_bytes) * Self::HEADER_BYTES as u64
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{} {} ({}B)", self.id.0, self.flow, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn packet_count_rounds_up() {
        assert_eq!(Packet::count_for_payload(0), 1);
        assert_eq!(Packet::count_for_payload(1), 1);
        assert_eq!(Packet::count_for_payload(Packet::MAX_PAYLOAD as u64), 1);
        assert_eq!(Packet::count_for_payload(Packet::MAX_PAYLOAD as u64 + 1), 2);
        assert_eq!(
            Packet::count_for_payload(10 * Packet::MAX_PAYLOAD as u64),
            10
        );
    }

    #[test]
    fn wire_bytes_include_headers() {
        let one = Packet::wire_bytes_for_payload(100);
        assert_eq!(one, 100 + Packet::HEADER_BYTES as u64);
        let two = Packet::wire_bytes_for_payload(2 * Packet::MAX_PAYLOAD as u64);
        assert_eq!(two, 2 * Packet::MTU as u64);
    }

    proptest! {
        #[test]
        fn prop_segmentation_never_exceeds_mtu(bytes in 0u64..10_000_000) {
            let n = Packet::count_for_payload(bytes);
            let wire = Packet::wire_bytes_for_payload(bytes);
            prop_assert!(wire <= n * Packet::MTU as u64);
            prop_assert!(n >= 1);
        }
    }
}
