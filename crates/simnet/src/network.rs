//! Topologies: named nodes, addressed interfaces, and the link fabric.

use std::collections::HashMap;
use std::fmt;

use simcore::{NodeId, SimRng, SimTime};

use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use crate::{ClockSpec, Ip, Link, LinkSpec, NtpClock, TransmitOutcome};

/// Outcome of a fault-aware transmit ([`Network::transmit_with_faults`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetOutcome {
    /// The packet was serialized onto the wire. `arrivals` holds the
    /// arrival time of every copy actually delivered: empty means it was
    /// lost in flight (injected loss or partition — the sender still paid
    /// for serialization and gets no signal), more than one means it was
    /// duplicated.
    Sent {
        /// When the sender's NIC finishes serializing the packet.
        departure: SimTime,
        /// Arrival time of each delivered copy, possibly perturbed by
        /// jitter or reordering.
        arrivals: Vec<SimTime>,
    },
    /// Dropped at the sender's drop-tail queue; never serialized.
    QueueDrop,
}

/// Error building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link referenced a node index that does not exist.
    UnknownNode(NodeId),
    /// Two link declarations covered the same node pair.
    DuplicateLink(NodeId, NodeId),
    /// A link connected a node to itself.
    SelfLink(NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "link references unknown {n}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link between {a} and {b}"),
            TopologyError::SelfLink(n) => write!(f, "self-link on {n}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Error returned when transmitting between unconnected nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoRouteError {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
}

impl fmt::Display for NoRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no route from {} to {}", self.from, self.to)
    }
}

impl std::error::Error for NoRouteError {}

struct NodeInfo {
    name: String,
    ip: Ip,
    clock: NtpClock,
}

/// Builder for [`Network`] topologies.
///
/// # Example
///
/// ```
/// use simcore::NodeId;
/// use simnet::{LinkSpec, NetworkBuilder};
///
/// let net = NetworkBuilder::new()
///     .node("a")
///     .node("b")
///     .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
///     .build()?;
/// assert_eq!(net.node_count(), 2);
/// # Ok::<(), simnet::TopologyError>(())
/// ```
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<(String, ClockSpec)>,
    // Named distinctly from `Network::links` (a HashMap): this is the
    // ordered declaration list, safe to iterate as-is.
    link_list: Vec<(NodeId, NodeId, LinkSpec)>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Adds a node with a perfect clock; returns the builder. Nodes get ids
    /// in declaration order and IPs `10.0.0.(index+1)`.
    pub fn node(mut self, name: &str) -> Self {
        self.nodes.push((name.to_owned(), ClockSpec::PERFECT));
        self
    }

    /// Adds a node with an explicit clock error model.
    pub fn node_with_clock(mut self, name: &str, clock: ClockSpec) -> Self {
        self.nodes.push((name.to_owned(), clock));
        self
    }

    /// Connects two nodes with a link.
    pub fn link(mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> Self {
        self.link_list.push((a, b, spec));
        self
    }

    /// Connects every distinct node pair with the same link spec.
    pub fn full_mesh(mut self, spec: LinkSpec) -> Self {
        let n = self.nodes.len() as u32;
        for i in 0..n {
            for j in (i + 1)..n {
                self.link_list.push((NodeId(i), NodeId(j), spec));
            }
        }
        self
    }

    /// Validates and builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] on dangling node references, self-links or
    /// duplicate links.
    pub fn build(self) -> Result<Network, TopologyError> {
        let n = self.nodes.len() as u32;
        let mut link_map = HashMap::new();
        for (a, b, spec) in self.link_list {
            if a == b {
                return Err(TopologyError::SelfLink(a));
            }
            if a.0 >= n {
                return Err(TopologyError::UnknownNode(a));
            }
            if b.0 >= n {
                return Err(TopologyError::UnknownNode(b));
            }
            let key = if a < b { (a, b) } else { (b, a) };
            if link_map.insert(key, Link::new(spec)).is_some() {
                return Err(TopologyError::DuplicateLink(key.0, key.1));
            }
        }
        let nodes = self
            .nodes
            .into_iter()
            .enumerate()
            .map(|(i, (name, clock))| NodeInfo {
                name,
                ip: Ip::for_node_index(i as u32),
                clock: NtpClock::new(clock),
            })
            .collect();
        Ok(Network {
            nodes,
            links: link_map,
            injector: None,
        })
    }
}

/// A built topology: the link fabric plus per-node addressing and clocks.
pub struct Network {
    nodes: Vec<NodeInfo>,
    links: HashMap<(NodeId, NodeId), Link>,
    injector: Option<FaultInjector>,
}

impl Network {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's display name.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// A node's IP address.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_ip(&self, node: NodeId) -> Ip {
        self.nodes[node.0 as usize].ip
    }

    /// Looks up a node by IP address.
    pub fn node_by_ip(&self, ip: Ip) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|ni| ni.ip == ip)
            .map(|i| NodeId(i as u32))
    }

    /// A node's wall clock.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn clock(&self, node: NodeId) -> &NtpClock {
        &self.nodes[node.0 as usize].clock
    }

    /// Transmits `bytes` from `from` to `to` at time `now`, returning the
    /// delivery schedule (or drop verdict).
    ///
    /// # Errors
    ///
    /// Returns [`NoRouteError`] if the nodes are not directly linked.
    pub fn transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Result<TransmitOutcome, NoRouteError> {
        let key = if from < to { (from, to) } else { (to, from) };
        let link = self.links.get_mut(&key).ok_or(NoRouteError { from, to })?;
        Ok(if from < to {
            link.transmit_forward(now, bytes)
        } else {
            link.transmit_reverse(now, bytes)
        })
    }

    /// Like [`transmit`](Network::transmit), but runs the outcome through
    /// the installed [`FaultInjector`] (if any): the result distinguishes
    /// queue drops (sender-visible) from in-flight losses, duplication and
    /// delay perturbations (sender-invisible). Without an injector this is
    /// exactly `transmit` and consumes no randomness.
    ///
    /// # Errors
    ///
    /// Returns [`NoRouteError`] if the nodes are not directly linked.
    pub fn transmit_with_faults(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Result<NetOutcome, NoRouteError> {
        let outcome = self.transmit(now, from, to, bytes)?;
        Ok(match outcome {
            TransmitOutcome::Dropped => NetOutcome::QueueDrop,
            TransmitOutcome::Sent { departure, arrival } => {
                let arrivals = match &mut self.injector {
                    Some(inj) => inj.deliveries(now, from, to, arrival),
                    None => vec![arrival],
                };
                NetOutcome::Sent {
                    departure,
                    arrivals,
                }
            }
        })
    }

    /// Installs a fault injector driven by the given (forked) RNG. All
    /// subsequent [`transmit_with_faults`](Network::transmit_with_faults)
    /// calls run through it. Replaces any previous injector.
    pub fn install_faults(&mut self, plan: FaultPlan, rng: SimRng) {
        self.injector = Some(FaultInjector::new(plan, rng));
    }

    /// Counters from the installed fault injector (all zero when none is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(|inj| inj.stats())
            .unwrap_or_default()
    }

    /// Immutable access to the link between two nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.links.get(&key)
    }

    /// Round-trip propagation + single-MTU serialization estimate between
    /// two directly linked nodes (the "network RTT" the paper reports as
    /// < 0.3 ms).
    pub fn estimated_rtt(&self, a: NodeId, b: NodeId) -> Option<simcore::SimDuration> {
        self.link_between(a, b).map(|l| {
            let one_way = l.spec().propagation + l.spec().serialization_delay(1500);
            one_way * 2
        })
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn two_node_net() -> Network {
        NetworkBuilder::new()
            .node("a")
            .node("b")
            .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_ips_and_names() {
        let net = two_node_net();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.node_name(NodeId(0)), "a");
        assert_eq!(net.node_ip(NodeId(1)), Ip::for_node_index(1));
        assert_eq!(net.node_by_ip(Ip::for_node_index(0)), Some(NodeId(0)));
        assert_eq!(net.node_by_ip(Ip(0xDEADBEEF)), None);
    }

    #[test]
    fn transmit_uses_link_both_directions() {
        let mut net = two_node_net();
        let t0 = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1500)
            .unwrap()
            .arrival_time()
            .unwrap();
        let t1 = net
            .transmit(SimTime::ZERO, NodeId(1), NodeId(0), 1500)
            .unwrap()
            .arrival_time()
            .unwrap();
        assert_eq!(t0, t1, "independent directions");
    }

    #[test]
    fn no_route_between_unlinked_nodes() {
        let mut net = NetworkBuilder::new().node("a").node("b").build().unwrap();
        let err = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 100)
            .unwrap_err();
        assert_eq!(
            err,
            NoRouteError {
                from: NodeId(0),
                to: NodeId(1)
            }
        );
    }

    #[test]
    fn full_mesh_links_all_pairs() {
        let net = NetworkBuilder::new()
            .node("a")
            .node("b")
            .node("c")
            .node("d")
            .full_mesh(LinkSpec::gigabit_lan())
            .build()
            .unwrap();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    assert!(net.link_between(NodeId(i), NodeId(j)).is_some());
                }
            }
        }
    }

    #[test]
    fn build_rejects_self_link() {
        let err = NetworkBuilder::new()
            .node("a")
            .link(NodeId(0), NodeId(0), LinkSpec::gigabit_lan())
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::SelfLink(NodeId(0)));
    }

    #[test]
    fn build_rejects_unknown_node() {
        let err = NetworkBuilder::new()
            .node("a")
            .link(NodeId(0), NodeId(7), LinkSpec::gigabit_lan())
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::UnknownNode(NodeId(7)));
    }

    #[test]
    fn build_rejects_duplicate_links_even_reversed() {
        let err = NetworkBuilder::new()
            .node("a")
            .node("b")
            .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
            .link(NodeId(1), NodeId(0), LinkSpec::fast_ethernet())
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::DuplicateLink(NodeId(0), NodeId(1)));
    }

    #[test]
    fn rtt_estimate_is_sub_millisecond_on_lan() {
        let net = two_node_net();
        let rtt = net.estimated_rtt(NodeId(0), NodeId(1)).unwrap();
        // The paper reports network RTT < 0.3 ms on its testbed.
        assert!(rtt < SimDuration::from_micros(300), "rtt {rtt}");
    }

    #[test]
    fn transmit_with_faults_without_injector_matches_raw_transmit() {
        let mut net = two_node_net();
        let raw = {
            let mut probe = two_node_net();
            probe
                .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1500)
                .unwrap()
                .arrival_time()
                .unwrap()
        };
        match net
            .transmit_with_faults(SimTime::ZERO, NodeId(0), NodeId(1), 1500)
            .unwrap()
        {
            NetOutcome::Sent { arrivals, .. } => assert_eq!(arrivals, vec![raw]),
            NetOutcome::QueueDrop => panic!("unexpected drop"),
        }
        assert_eq!(net.fault_stats(), FaultStats::default());
    }

    #[test]
    fn installed_loss_plan_loses_in_flight_not_at_queue() {
        let mut net = two_node_net();
        net.install_faults(
            FaultPlan::new().with_default_link(crate::LinkFaults::lossy(1.0)),
            SimRng::seed(1),
        );
        match net
            .transmit_with_faults(SimTime::ZERO, NodeId(0), NodeId(1), 1500)
            .unwrap()
        {
            NetOutcome::Sent { arrivals, .. } => {
                assert!(arrivals.is_empty(), "lost in flight");
            }
            NetOutcome::QueueDrop => panic!("loss must not look like a queue drop"),
        }
        // The sender still paid: the link carried the bytes.
        let link = net.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(link.bytes_carried(), (1500, 0));
        assert_eq!(net.fault_stats().injected_losses, 1);
    }

    #[test]
    fn clock_defaults_to_perfect_and_can_be_set() {
        let net = NetworkBuilder::new()
            .node("sync")
            .node_with_clock(
                "skewed",
                ClockSpec {
                    offset_ns: 250_000,
                    drift_ppm: 1.0,
                },
            )
            .build()
            .unwrap();
        let t = SimTime::from_secs(1);
        assert_eq!(net.clock(NodeId(0)).wall(t), t);
        assert!(net.clock(NodeId(1)).wall(t) > t);
    }
}
