//! Deterministic network fault injection.
//!
//! Real dissemination channels lose, delay, duplicate and reorder
//! packets, and whole machines crash mid-run. This module describes
//! those degradations as data — a [`FaultPlan`] — and applies them
//! through a [`FaultInjector`] driven by a forked [`simcore::SimRng`],
//! so a faulty run replays bit-identically from the same seed.
//!
//! Faults are applied *after* link serialization: the sender still pays
//! queueing and bandwidth for a packet that is then lost in flight, and
//! gets no signal that it died — exactly the silent-loss regime the
//! reliability protocol in the `sysprof` crate must survive.
//!
//! Node crash/restart schedules also live in the plan; they are consumed
//! by the host kernel (`simos`), not by the network itself.

use simcore::{NodeId, SimDuration, SimRng, SimTime};

/// Per-link fault probabilities and delay perturbations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability that a serialized packet is lost in flight.
    pub loss: f64,
    /// Probability that a delivered packet arrives twice.
    pub duplicate: f64,
    /// Probability that a delivered packet is held back by
    /// [`reorder_delay`](LinkFaults::reorder_delay), letting later
    /// packets overtake it.
    pub reorder: f64,
    /// Extra latency drawn uniformly from `[0, jitter]` for every
    /// delivered copy.
    pub jitter: SimDuration,
    /// Hold-back applied to packets selected for reordering.
    pub reorder_delay: SimDuration,
}

impl LinkFaults {
    /// A fault-free link: the injector passes packets through untouched
    /// without consuming any randomness.
    pub const NONE: LinkFaults = LinkFaults {
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        jitter: SimDuration::from_nanos(0),
        reorder_delay: SimDuration::from_nanos(0),
    };

    /// Pure packet loss with the given probability.
    pub const fn lossy(loss: f64) -> LinkFaults {
        LinkFaults {
            loss,
            ..LinkFaults::NONE
        }
    }

    /// Whether this spec perturbs anything at all.
    pub fn is_none(&self) -> bool {
        self.loss <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0 && self.jitter.is_zero()
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// A timed network partition: while active, packets between the two node
/// groups are lost in flight (in both directions). Traffic within a
/// group is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub a: Vec<NodeId>,
    /// The other side.
    pub b: Vec<NodeId>,
    /// When the partition starts (inclusive).
    pub from: SimTime,
    /// When the partition heals (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// Whether the partition is in force at `now` and severs the pair
    /// `(x, y)` — i.e. one endpoint is in each group.
    pub fn severs(&self, now: SimTime, x: NodeId, y: NodeId) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let in_a = |n: NodeId| self.a.contains(&n);
        let in_b = |n: NodeId| self.b.contains(&n);
        (in_a(x) && in_b(y)) || (in_b(x) && in_a(y))
    }
}

/// A scheduled fail-stop crash of one node, with an optional restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// The node that fails.
    pub node: NodeId,
    /// When it crashes.
    pub crash_at: SimTime,
    /// When it comes back up, if ever.
    pub restart_at: Option<SimTime>,
}

/// A complete, declarative description of every fault a run injects.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Faults applied to links with no per-link override.
    pub default_link: LinkFaults,
    /// Per-link overrides, keyed by unordered node pair.
    pub per_link: Vec<((NodeId, NodeId), LinkFaults)>,
    /// Timed partitions.
    pub partitions: Vec<Partition>,
    /// Node crash/restart schedules (consumed by the kernel layer).
    pub crashes: Vec<CrashSchedule>,
}

impl FaultPlan {
    /// An empty plan: no faults anywhere.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sets the fault spec applied to every link without an override.
    pub fn with_default_link(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Overrides the fault spec on one link (either node order).
    pub fn with_link(mut self, a: NodeId, b: NodeId, faults: LinkFaults) -> Self {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.per_link.push((key, faults));
        self
    }

    /// Adds a timed partition between two node groups.
    pub fn with_partition(
        mut self,
        a: Vec<NodeId>,
        b: Vec<NodeId>,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Schedules a crash (and optional restart) for a node.
    pub fn with_crash(
        mut self,
        node: NodeId,
        crash_at: SimTime,
        restart_at: Option<SimTime>,
    ) -> Self {
        self.crashes.push(CrashSchedule {
            node,
            crash_at,
            restart_at,
        });
        self
    }

    /// Whether the plan perturbs the network at all (crash schedules are
    /// kernel-level and do not count).
    pub fn perturbs_network(&self) -> bool {
        !self.default_link.is_none()
            || self.per_link.iter().any(|(_, f)| !f.is_none())
            || !self.partitions.is_empty()
    }

    /// The fault spec in force on the link between `a` and `b`.
    pub fn faults_between(&self, a: NodeId, b: NodeId) -> LinkFaults {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.per_link
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }
}

/// Counters of what the injector actually did, for test assertions and
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets offered to the injector (successful link transmits).
    pub packets_offered: u64,
    /// Arrival copies the injector actually scheduled (a duplicated
    /// packet contributes two, a lost one zero).
    pub delivered_copies: u64,
    /// Packets lost to per-link loss probability.
    pub injected_losses: u64,
    /// Packets lost to an active partition.
    pub partition_drops: u64,
    /// Extra copies delivered by duplication.
    pub duplicates: u64,
    /// Packets held back for reordering.
    pub reorders: u64,
    /// Packets whose arrival was perturbed by jitter.
    pub jittered: u64,
}

impl FaultStats {
    /// Total packets the injector removed from flight.
    pub fn total_losses(&self) -> u64 {
        self.injected_losses + self.partition_drops
    }

    /// Whether the injector's books balance exactly: every offered packet
    /// is accounted for as lost, delivered, or delivered twice
    /// (`offered = losses + delivered - duplicates`). A run whose stats
    /// do not balance has leaked or invented packets.
    pub fn balances(&self) -> bool {
        self.packets_offered + self.duplicates == self.total_losses() + self.delivered_copies
    }
}

/// Minimum spacing between a packet and its injected duplicate.
const DUPLICATE_GAP: SimDuration = SimDuration::from_micros(10);

/// Applies a [`FaultPlan`] to in-flight packets, deterministically.
///
/// All randomness comes from the injector's own forked [`SimRng`], and a
/// fault-free link consumes none of it — so installing an injector with
/// an empty plan leaves a run bit-identical to one without.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for the plan. `rng` should be forked from the
    /// simulation's root RNG so fault draws never perturb other
    /// subsystems' random streams.
    pub fn new(plan: FaultPlan, rng: SimRng) -> FaultInjector {
        FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether an active partition severs `from`/`to` at `now`.
    pub fn partitioned(&self, now: SimTime, from: NodeId, to: NodeId) -> bool {
        self.plan.partitions.iter().any(|p| p.severs(now, from, to))
    }

    /// Maps one successful link transmit to the arrival times of the
    /// copies actually delivered: empty means lost in flight, two means
    /// duplicated, and jitter/reorder perturb (and may swap) arrivals.
    pub fn deliveries(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        arrival: SimTime,
    ) -> Vec<SimTime> {
        self.stats.packets_offered += 1;
        if self.partitioned(now, from, to) {
            self.stats.partition_drops += 1;
            return Vec::new();
        }
        let f = self.plan.faults_between(from, to);
        if f.is_none() {
            // No draws at all: fault-free links replay identically to a
            // run with no injector installed.
            self.stats.delivered_copies += 1;
            return vec![arrival];
        }
        if f.loss > 0.0 && self.rng.chance(f.loss) {
            self.stats.injected_losses += 1;
            return Vec::new();
        }
        let mut first = arrival + self.draw_jitter(f.jitter);
        if f.reorder > 0.0 && self.rng.chance(f.reorder) {
            first += f.reorder_delay;
            self.stats.reorders += 1;
        }
        let mut out = vec![first];
        if f.duplicate > 0.0 && self.rng.chance(f.duplicate) {
            let dup = first + DUPLICATE_GAP + self.draw_jitter(f.jitter);
            out.push(dup);
            self.stats.duplicates += 1;
        }
        self.stats.delivered_copies += out.len() as u64;
        out
    }

    fn draw_jitter(&mut self, jitter: SimDuration) -> SimDuration {
        if jitter.is_zero() {
            return SimDuration::from_nanos(0);
        }
        self.stats.jittered += 1;
        SimDuration::from_nanos(self.rng.uniform_u64(0, jitter.as_nanos() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_plan_passes_through_without_randomness() {
        let mut a = FaultInjector::new(FaultPlan::new(), SimRng::seed(7));
        let mut b = FaultInjector::new(FaultPlan::new(), SimRng::seed(999));
        for i in 0..50 {
            let arr = t(i);
            assert_eq!(a.deliveries(t(i), NodeId(0), NodeId(1), arr), vec![arr]);
            assert_eq!(b.deliveries(t(i), NodeId(0), NodeId(1), arr), vec![arr]);
        }
        assert_eq!(
            a.stats(),
            FaultStats {
                packets_offered: 50,
                delivered_copies: 50,
                ..FaultStats::default()
            },
            "pass-through only counts traffic, never perturbs it"
        );
        assert!(a.stats().balances());
    }

    #[test]
    fn accounting_balances_under_every_fault_mix() {
        let plan = FaultPlan::new()
            .with_default_link(LinkFaults {
                loss: 0.25,
                duplicate: 0.2,
                reorder: 0.15,
                jitter: SimDuration::from_micros(40),
                reorder_delay: SimDuration::from_micros(500),
            })
            .with_partition(vec![NodeId(0)], vec![NodeId(1)], t(100), t(300));
        let mut inj = FaultInjector::new(plan, SimRng::seed(11));
        let mut copies = 0u64;
        for i in 0..5_000 {
            copies += inj.deliveries(t(i), NodeId(0), NodeId(1), t(i)).len() as u64;
        }
        let s = inj.stats();
        assert_eq!(s.packets_offered, 5_000);
        assert_eq!(s.delivered_copies, copies, "every scheduled copy counted");
        assert!(
            s.total_losses() > 0 && s.duplicates > 0,
            "mix exercised: {s:?}"
        );
        assert!(
            s.balances(),
            "offered + duplicates == losses + delivered: {s:?}"
        );
    }

    #[test]
    fn loss_rate_is_roughly_honored_and_counted() {
        let plan = FaultPlan::new().with_default_link(LinkFaults::lossy(0.3));
        let mut inj = FaultInjector::new(plan, SimRng::seed(1));
        let mut lost = 0;
        for i in 0..10_000 {
            if inj.deliveries(t(i), NodeId(0), NodeId(1), t(i)).is_empty() {
                lost += 1;
            }
        }
        assert_eq!(inj.stats().injected_losses, lost);
        assert!((2_500..3_500).contains(&lost), "lost {lost}/10000 at p=0.3");
    }

    #[test]
    fn partition_severs_only_cross_group_pairs_while_active() {
        let plan = FaultPlan::new().with_partition(vec![NodeId(0)], vec![NodeId(1)], t(10), t(20));
        let mut inj = FaultInjector::new(plan, SimRng::seed(2));
        // Before, cross-group flows fine.
        assert_eq!(inj.deliveries(t(5), NodeId(0), NodeId(1), t(5)).len(), 1);
        // During, both directions are cut…
        assert!(inj
            .deliveries(t(10), NodeId(0), NodeId(1), t(10))
            .is_empty());
        assert!(inj
            .deliveries(t(15), NodeId(1), NodeId(0), t(15))
            .is_empty());
        // …but unrelated pairs are not.
        assert_eq!(inj.deliveries(t(15), NodeId(1), NodeId(2), t(15)).len(), 1);
        // After healing, traffic resumes.
        assert_eq!(inj.deliveries(t(20), NodeId(0), NodeId(1), t(20)).len(), 1);
        assert_eq!(inj.stats().partition_drops, 2);
    }

    #[test]
    fn duplication_yields_two_ordered_arrivals() {
        let plan = FaultPlan::new().with_default_link(LinkFaults {
            duplicate: 1.0,
            ..LinkFaults::NONE
        });
        let mut inj = FaultInjector::new(plan, SimRng::seed(3));
        let out = inj.deliveries(t(1), NodeId(0), NodeId(1), t(1));
        assert_eq!(out.len(), 2);
        assert!(out[1] >= out[0] + DUPLICATE_GAP);
        assert_eq!(inj.stats().duplicates, 1);
    }

    #[test]
    fn jitter_stays_within_bound_and_reorder_adds_delay() {
        let jitter = SimDuration::from_micros(50);
        let plan = FaultPlan::new().with_default_link(LinkFaults {
            jitter,
            reorder: 1.0,
            reorder_delay: SimDuration::from_millis(1),
            ..LinkFaults::NONE
        });
        let mut inj = FaultInjector::new(plan, SimRng::seed(4));
        for i in 0..100 {
            let arr = t(i);
            let out = inj.deliveries(t(i), NodeId(0), NodeId(1), arr);
            assert_eq!(out.len(), 1);
            let lo = arr + SimDuration::from_millis(1);
            assert!(
                out[0] >= lo && out[0] <= lo + jitter,
                "arrival {:?}",
                out[0]
            );
        }
        assert_eq!(inj.stats().reorders, 100);
    }

    #[test]
    fn per_link_override_beats_default() {
        let plan = FaultPlan::new()
            .with_default_link(LinkFaults::lossy(1.0))
            .with_link(NodeId(1), NodeId(0), LinkFaults::NONE);
        let mut inj = FaultInjector::new(plan, SimRng::seed(5));
        // Overridden link (looked up in either order) never loses.
        assert_eq!(inj.deliveries(t(1), NodeId(0), NodeId(1), t(1)).len(), 1);
        // Other links always lose.
        assert!(inj.deliveries(t(1), NodeId(0), NodeId(2), t(1)).is_empty());
    }

    #[test]
    fn same_seed_same_plan_replays_identically() {
        let plan = FaultPlan::new().with_default_link(LinkFaults {
            loss: 0.2,
            duplicate: 0.1,
            reorder: 0.1,
            jitter: SimDuration::from_micros(30),
            reorder_delay: SimDuration::from_micros(200),
        });
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(plan.clone(), SimRng::seed(seed));
            let mut all = Vec::new();
            for i in 0..500 {
                all.push(inj.deliveries(t(i), NodeId(0), NodeId(1), t(i)));
            }
            (all, inj.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "different seeds diverge");
    }
}
