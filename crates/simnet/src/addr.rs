//! Addressing vocabulary: IPs, ports, endpoints and flow keys.
//!
//! The paper identifies communicating parties by `{IP, port}` pairs and keys
//! all interaction extraction on them (§2, "Messages and Interactions").

use std::fmt;

use serde::{Deserialize, Serialize};

/// An IPv4-style address. The topology builder assigns one per simulated
/// node (10.0.0.x by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ip(pub u32);

impl Ip {
    /// The conventional address for the node with the given topology index.
    pub const fn for_node_index(idx: u32) -> Ip {
        // 10.0.0.0/8 with the index in the low bits.
        Ip(0x0A00_0000 | (idx + 1))
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// A transport-layer port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u16);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An `{IP, port}` pair — how the paper names a communication party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndPoint {
    /// The node's address.
    pub ip: Ip,
    /// The transport port.
    pub port: Port,
}

impl EndPoint {
    /// Creates an endpoint.
    pub const fn new(ip: Ip, port: Port) -> Self {
        EndPoint { ip, port }
    }
}

impl fmt::Display for EndPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// A directed flow between two endpoints: packets from `src` to `dst`.
///
/// [`FlowKey::canonical`] folds both directions onto one key so that a
/// request flow and its response flow can be recognized as the same
/// conversation — exactly what the LPA's interaction extraction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Sending endpoint.
    pub src: EndPoint,
    /// Receiving endpoint.
    pub dst: EndPoint,
}

impl FlowKey {
    /// Creates a directed flow key.
    pub const fn new(src: EndPoint, dst: EndPoint) -> Self {
        FlowKey { src, dst }
    }

    /// The same flow viewed in the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
        }
    }

    /// A direction-independent key: the lexicographically smaller endpoint
    /// first. Both directions of a conversation map to the same canonical
    /// key.
    pub fn canonical(&self) -> FlowKey {
        if self.src <= self.dst {
            *self
        } else {
            self.reversed()
        }
    }

    /// Whether this key is already in canonical orientation.
    pub fn is_canonical(&self) -> bool {
        self.src <= self.dst
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ep(ip: u32, port: u16) -> EndPoint {
        EndPoint::new(Ip(ip), Port(port))
    }

    #[test]
    fn ip_display_dotted_quad() {
        assert_eq!(Ip::for_node_index(0).to_string(), "10.0.0.1");
        assert_eq!(Ip::for_node_index(254).to_string(), "10.0.0.255");
        assert_eq!(Ip(0xC0A80101).to_string(), "192.168.1.1");
    }

    #[test]
    fn node_ips_are_distinct() {
        let ips: Vec<Ip> = (0..100).map(Ip::for_node_index).collect();
        let mut dedup = ips.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ips.len(), dedup.len());
    }

    #[test]
    fn flow_reversal_round_trips() {
        let k = FlowKey::new(ep(1, 80), ep(2, 5000));
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn canonical_folds_directions() {
        let k = FlowKey::new(ep(9, 80), ep(2, 5000));
        assert_eq!(k.canonical(), k.reversed().canonical());
        assert!(k.canonical().is_canonical());
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(ep(0x0A000001, 2049).to_string(), "10.0.0.1:2049");
    }

    proptest! {
        #[test]
        fn prop_canonical_is_idempotent(a in any::<u32>(), ap in any::<u16>(),
                                        b in any::<u32>(), bp in any::<u16>()) {
            let k = FlowKey::new(ep(a, ap), ep(b, bp));
            let c = k.canonical();
            prop_assert_eq!(c.canonical(), c);
            prop_assert_eq!(k.reversed().canonical(), c);
        }
    }
}
