//! Discrete-event simulation core used by every SysProf substrate.
//!
//! This crate provides the foundation the rest of the workspace is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock,
//! * [`EventQueue`] — a deterministic event calendar with FIFO tie-breaking,
//! * [`SimRng`] — seeded randomness with the distributions the workloads need
//!   (exponential, normal, Pareto, Zipf) implemented from first principles,
//! * [`stats`] — online statistics (Welford mean/variance, log-scale
//!   histograms with percentile queries, time-weighted averages),
//! * [`BoundedQueue`] — a capacity-limited FIFO with drop accounting, used to
//!   model kernel socket buffers and device queues.
//!
//! Everything here is deterministic given a seed: two runs of the same
//! experiment produce bit-identical results, which is what makes the
//! paper-reproduction harness in `sysprof-bench` trustworthy.
//!
//! # Example
//!
//! ```
//! use simcore::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), "second");
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t.as_nanos(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded_queue;
mod event_queue;
mod rng;
pub mod stats;
mod time;

pub use bounded_queue::{BoundedQueue, EnqueueError};
pub use event_queue::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

/// Identifier of a simulated machine in a topology.
///
/// Node ids are dense small integers assigned by the topology builder; they
/// index per-node state tables throughout the workspace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}
