//! The event calendar: a priority queue of `(SimTime, event)` pairs with
//! deterministic FIFO ordering for simultaneous events and support for
//! cancellation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// Handle returned by [`EventQueue::schedule`]; can be used to cancel the
/// event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO, which keeps runs deterministic.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), so a simulation driven by this queue is fully
/// reproducible.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.schedule(SimTime::from_micros(10), "a");
/// q.schedule(SimTime::from_micros(10), "b");
/// q.cancel(h);
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    // Seq numbers still live in the heap. Cancellation removes a seq from
    // here; pop lazily discards heap entries whose seq is no longer pending.
    pending: std::collections::HashSet<u64>,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a simulation bug; this panics in debug
    /// builds and clamps to `now` in release builds.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time} < now {}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry { time, seq, event });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired (cancellation took effect), `false` if it already fired
    /// or was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled
            }
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let entry = self.heap.peek()?;
            if !self.pending.contains(&entry.seq) {
                self.heap.pop();
                continue;
            }
            return Some(entry.time);
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), ());
        q.schedule(SimTime::from_micros(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(5));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(9), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, regardless
        /// of the insertion order.
        #[test]
        fn prop_pop_order_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// FIFO among equal timestamps: events with the same time pop in
        /// insertion order.
        #[test]
        fn prop_fifo_ties(times in proptest::collection::vec(0u64..10, 1..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last_seen: std::collections::HashMap<u64, usize> = Default::default();
            while let Some((t, i)) = q.pop() {
                if let Some(&prev) = last_seen.get(&t.as_nanos()) {
                    prop_assert!(i > prev, "tie broken out of FIFO order");
                }
                last_seen.insert(t.as_nanos(), i);
            }
        }
    }
}
