//! Nanosecond-resolution virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the global simulation clock, in nanoseconds since the start
/// of the simulation.
///
/// `SimTime` is totally ordered and supports the arithmetic a simulator
/// needs: `SimTime + SimDuration -> SimTime`, `SimTime - SimTime ->
/// SimDuration`.
///
/// # Example
///
/// ```
/// use simcore::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use simcore::SimDuration;
/// let d = SimDuration::from_micros(2) * 3;
/// assert_eq!(d.as_nanos(), 6_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future (saturating).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction: `None` if `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds (rounds to nearest ns).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a float factor (rounds to nearest ns; saturates at MAX).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && !factor.is_nan(),
            "factor must be non-negative, got {factor}"
        );
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; saturates to
    /// zero in release builds.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(
            self >= rhs,
            "SimDuration subtraction underflow: {self} - {rhs}"
        );
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_micros(10);
        let b = a + SimDuration::from_micros(5);
        assert_eq!(b - a, SimDuration::from_micros(5));
        assert_eq!(b.saturating_since(a).as_micros(), 5);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_micros(5)));
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let d = SimDuration::MAX;
        assert_eq!(d + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(d * 2, SimDuration::MAX);
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 150);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "factor must be non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_nanos(1).mul_f64(-1.0);
    }

    #[test]
    fn from_secs_f64() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }
}
