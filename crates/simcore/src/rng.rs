//! Seeded randomness for deterministic simulations.
//!
//! Only `rand`'s uniform primitives are used; the shaped distributions
//! (exponential, normal, Pareto, Zipf) are implemented here so the workspace
//! does not need `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SimDuration;

/// A seeded random source with the distributions SysProf's workload
/// generators require.
///
/// All experiments take a seed so results are reproducible; independent
/// subsystems should [`fork`](SimRng::fork) their own streams so adding
/// draws to one does not perturb another.
///
/// # Example
///
/// ```
/// use simcore::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream. The child is a deterministic
    /// function of the parent state and `salt`.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_u64 requires lo < hi, got [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean (inverse rate),
    /// via inversion sampling.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // 1 - U is in (0, 1], so ln never sees zero.
        -mean * (1.0 - self.unit_f64()).ln()
    }

    /// Exponentially distributed duration with the given mean. Used for
    /// Poisson arrival processes (inter-arrival times).
    pub fn exponential_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Normally distributed value (Box–Muller transform).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "bad normal parameters mean={mean} std_dev={std_dev}"
        );
        let u1 = (1.0 - self.unit_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.unit_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Normally distributed duration, truncated below at zero.
    pub fn normal_duration(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let v = self.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
        SimDuration::from_secs_f64(v.max(0.0))
    }

    /// Pareto-distributed value with scale `x_min` and shape `alpha`
    /// (heavy-tailed; used for file-size and think-time models).
    ///
    /// # Panics
    ///
    /// Panics if `x_min` or `alpha` is not positive and finite.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min.is_finite() && x_min > 0.0 && alpha.is_finite() && alpha > 0.0,
            "bad pareto parameters x_min={x_min} alpha={alpha}"
        );
        let u = (1.0 - self.unit_f64()).max(f64::MIN_POSITIVE);
        x_min / u.powf(1.0 / alpha)
    }

    /// Zipf-distributed rank in `[0, n)` with skew `s`, via rejection-free
    /// inversion on the precomputed harmonic weights is overkill for the
    /// sizes we use, so this computes the CDF walk directly. `O(n)` worst
    /// case; intended for small `n` (request-class and item popularity).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/not finite.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf requires n > 0");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf skew must be non-negative, got {s}"
        );
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut target = self.unit_f64() * norm;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::seed(1);
        let mut parent2 = SimRng::seed(1);
        let mut c1 = parent1.fork(9);
        let mut c2 = parent2.fork(9);
        assert_eq!(c1.uniform_u64(0, 1 << 60), c2.uniform_u64(0, 1 << 60));
        // Different salts give different streams (overwhelmingly likely).
        let mut parent3 = SimRng::seed(1);
        let mut c3 = parent3.fork(10);
        let draws1: Vec<u64> = (0..8).map(|_| c1.uniform_u64(0, 1 << 60)).collect();
        let draws3: Vec<u64> = (0..8).map(|_| c3.uniform_u64(0, 1 << 60)).collect();
        assert_ne!(draws1, draws3);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed(7);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.15, "observed mean {observed}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = SimRng::seed(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed(9);
        for _ in 0..1000 {
            assert!(rng.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let mut rng = SimRng::seed(10);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.zipf(5, 1.0)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    }

    #[test]
    fn zipf_zero_skew_is_uniformish() {
        let mut rng = SimRng::seed(11);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[rng.zipf(4, 0.0)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 2000).abs() < 300, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed(12);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_empty_range() {
        SimRng::seed(0).uniform_u64(5, 5);
    }

    proptest! {
        #[test]
        fn prop_exponential_nonnegative(seed in any::<u64>(), mean in 0.001f64..1e6) {
            let mut rng = SimRng::seed(seed);
            let v = rng.exponential(mean);
            prop_assert!(v.is_finite() && v >= 0.0);
        }

        #[test]
        fn prop_zipf_in_range(seed in any::<u64>(), n in 1usize..200, s in 0.0f64..3.0) {
            let mut rng = SimRng::seed(seed);
            prop_assert!(rng.zipf(n, s) < n);
        }

        #[test]
        fn prop_chance_extremes(seed in any::<u64>()) {
            let mut rng = SimRng::seed(seed);
            prop_assert!(!rng.chance(0.0));
            prop_assert!(rng.chance(1.0));
        }
    }
}
