//! A capacity-limited FIFO with drop accounting, used throughout the
//! simulated kernel for socket buffers, NIC rings and device queues.

use std::collections::VecDeque;

/// Error returned by [`BoundedQueue::enqueue`] when the queue is full; hands
/// the rejected item back to the caller (C-INTERMEDIATE: the caller decides
/// whether to retry, drop, or back-pressure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnqueueError<T>(pub T);

impl<T> std::fmt::Display for EnqueueError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue is at capacity")
    }
}

impl<T: std::fmt::Debug> std::error::Error for EnqueueError<T> {}

/// A FIFO bounded either by item count, by a caller-supplied "size" total
/// (e.g. bytes), or both. Tracks high-water mark and cumulative drops so
/// analyzers can report queue pressure.
///
/// # Example
///
/// ```
/// use simcore::BoundedQueue;
/// let mut q = BoundedQueue::with_capacity(2);
/// q.enqueue("a", 1).unwrap();
/// q.enqueue("b", 1).unwrap();
/// assert!(q.enqueue("c", 1).is_err());
/// assert_eq!(q.dequeue(), Some(("a", 1)));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<(T, u64)>,
    max_items: usize,
    max_size: u64,
    cur_size: u64,
    high_water_items: usize,
    high_water_size: u64,
    dropped: u64,
    total_enqueued: u64,
}

impl<T> BoundedQueue<T> {
    /// A queue bounded by item count only.
    pub fn with_capacity(max_items: usize) -> Self {
        Self::with_limits(max_items, u64::MAX)
    }

    /// A queue bounded by total size only (each item carries a size).
    pub fn with_size_limit(max_size: u64) -> Self {
        Self::with_limits(usize::MAX, max_size)
    }

    /// A queue bounded by both item count and total size.
    ///
    /// # Panics
    ///
    /// Panics if both limits are zero-capacity in a way that admits nothing
    /// (`max_items == 0` or `max_size == 0`).
    pub fn with_limits(max_items: usize, max_size: u64) -> Self {
        assert!(
            max_items > 0 && max_size > 0,
            "queue must admit at least one item"
        );
        BoundedQueue {
            items: VecDeque::new(),
            max_items,
            max_size,
            cur_size: 0,
            high_water_items: 0,
            high_water_size: 0,
            dropped: 0,
            total_enqueued: 0,
        }
    }

    /// Appends an item of the given `size`. On overflow the item is returned
    /// in the error and the drop counter is incremented.
    pub fn enqueue(&mut self, item: T, size: u64) -> Result<(), EnqueueError<T>> {
        if self.items.len() >= self.max_items || self.cur_size.saturating_add(size) > self.max_size
        {
            self.dropped += 1;
            return Err(EnqueueError(item));
        }
        self.cur_size += size;
        self.items.push_back((item, size));
        self.total_enqueued += 1;
        self.high_water_items = self.high_water_items.max(self.items.len());
        self.high_water_size = self.high_water_size.max(self.cur_size);
        Ok(())
    }

    /// Removes the oldest item, returning it with its size.
    pub fn dequeue(&mut self) -> Option<(T, u64)> {
        let (item, size) = self.items.pop_front()?;
        self.cur_size -= size;
        Some((item, size))
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front().map(|(t, _)| t)
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sum of the sizes of queued items.
    pub fn size(&self) -> u64 {
        self.cur_size
    }

    /// Items dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total items ever successfully enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Largest item count ever held.
    pub fn high_water_items(&self) -> usize {
        self.high_water_items
    }

    /// Largest total size ever held.
    pub fn high_water_size(&self) -> u64 {
        self.high_water_size
    }

    /// Remaining size headroom.
    pub fn remaining_size(&self) -> u64 {
        self.max_size - self.cur_size
    }

    /// Iterates over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::with_capacity(10);
        for i in 0..5 {
            q.enqueue(i, 1).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().0, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn item_limit_enforced() {
        let mut q = BoundedQueue::with_capacity(2);
        q.enqueue('a', 1).unwrap();
        q.enqueue('b', 1).unwrap();
        let err = q.enqueue('c', 1).unwrap_err();
        assert_eq!(err.0, 'c');
        assert_eq!(q.dropped(), 1);
        q.dequeue();
        q.enqueue('c', 1).unwrap();
    }

    #[test]
    fn size_limit_enforced() {
        let mut q = BoundedQueue::with_size_limit(100);
        q.enqueue("x", 60).unwrap();
        assert!(q.enqueue("y", 50).is_err());
        q.enqueue("z", 40).unwrap();
        assert_eq!(q.size(), 100);
        assert_eq!(q.remaining_size(), 0);
    }

    #[test]
    fn high_water_marks() {
        let mut q = BoundedQueue::with_limits(10, 1000);
        q.enqueue(1, 100).unwrap();
        q.enqueue(2, 200).unwrap();
        q.dequeue();
        q.dequeue();
        assert_eq!(q.high_water_items(), 2);
        assert_eq!(q.high_water_size(), 300);
        assert_eq!(q.size(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<()>::with_capacity(0);
    }

    proptest! {
        /// Invariant: size() always equals the sum of sizes of queued items,
        /// under any interleaving of enqueues and dequeues.
        #[test]
        fn prop_size_invariant(ops in proptest::collection::vec((any::<bool>(), 1u64..50), 1..200)) {
            let mut q = BoundedQueue::with_limits(16, 400);
            let mut model: std::collections::VecDeque<u64> = Default::default();
            for (is_push, size) in ops {
                if is_push {
                    if q.enqueue((), size).is_ok() {
                        model.push_back(size);
                    }
                } else {
                    let got = q.dequeue().map(|(_, s)| s);
                    prop_assert_eq!(got, model.pop_front());
                }
                prop_assert_eq!(q.size(), model.iter().sum::<u64>());
                prop_assert_eq!(q.len(), model.len());
                prop_assert!(q.len() <= 16);
                prop_assert!(q.size() <= 400);
            }
        }
    }
}
