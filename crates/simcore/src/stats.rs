//! Online statistics used by analyzers and the benchmark harness.
//!
//! The local and global performance analyzers must summarize metric streams
//! without storing every sample (they run "in the kernel" where buffers are
//! scarce), so everything here is O(1) or O(bins) per observation:
//! [`OnlineStats`] (Welford), [`Histogram`] (log-scale bins with percentile
//! queries), [`TimeWeighted`] (time-weighted averages for gauge-style
//! metrics like queue depth) and [`RateMeter`] (windowed event rates).

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime};

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Example
///
/// ```
/// use simcore::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0] { s.record(v); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored (and counted
    /// nowhere); analyzers must never poison their summaries.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds a duration observation in milliseconds.
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A log-scale histogram of non-negative values with percentile queries.
///
/// Bins are powers of `2^(1/4)` (four bins per octave), giving ≤ ~19%
/// relative error on percentile estimates over a huge dynamic range with a
/// few hundred bins — the same trick HdrHistogram-style recorders use.
///
/// # Example
///
/// ```
/// use simcore::stats::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000 { h.record(v as f64); }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 > 350.0 && p50 < 700.0, "p50 was {p50}");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    /// bins[i] counts values in [bound(i-1), bound(i)); bin 0 is [0, 1).
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

const BINS_PER_OCTAVE: f64 = 4.0;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bin_index(value: f64) -> usize {
        if value < 1.0 {
            0
        } else {
            1 + (value.log2() * BINS_PER_OCTAVE).floor() as usize
        }
    }

    fn bin_upper_bound(index: usize) -> f64 {
        if index == 0 {
            1.0
        } else {
            2f64.powf(index as f64 / BINS_PER_OCTAVE)
        }
    }

    /// Adds one observation. Negative and non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        let idx = Self::bin_index(value);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `p`-th percentile (0–100). Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must be in [0,100], got {p}"
        );
        if self.count == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Midpoint of the bin, geometric-ish.
                let hi = Self::bin_upper_bound(i);
                let lo = if i == 0 {
                    0.0
                } else {
                    Self::bin_upper_bound(i - 1)
                };
                return Some((lo + hi) / 2.0);
            }
        }
        Some(Self::bin_upper_bound(self.bins.len().saturating_sub(1)))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Time-weighted average of a gauge (queue depth, outstanding requests).
///
/// Call [`update`](TimeWeighted::update) every time the gauge changes; the
/// average weights each value by how long it was held.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial gauge `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            weighted_sum: 0.0,
            total_time: 0.0,
            max: value,
        }
    }

    /// Records that the gauge changed to `value` at time `now`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_since(self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.total_time += dt;
        self.last_time = now;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// The time-weighted average up to the last update.
    pub fn average(&self) -> f64 {
        if self.total_time == 0.0 {
            self.last_value
        } else {
            self.weighted_sum / self.total_time
        }
    }

    /// Largest gauge value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The gauge value as of the last update.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Windowed event-rate meter: counts events per fixed window and reports
/// the completed-window series (used for the throughput-over-time figures).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    window: SimDuration,
    window_start: SimTime,
    current_count: u64,
    /// Completed windows: (window start, events in window).
    series: Vec<(SimTime, u64)>,
}

impl RateMeter {
    /// Creates a meter with the given window length, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(start: SimTime, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "RateMeter window must be non-zero");
        RateMeter {
            window,
            window_start: start,
            current_count: 0,
            series: Vec::new(),
        }
    }

    /// Records one event at time `now`, closing any windows that have
    /// elapsed since the last event.
    pub fn record(&mut self, now: SimTime) {
        self.roll_to(now);
        self.current_count += 1;
    }

    /// Closes all windows ending at or before `now` (recording zero-count
    /// windows for idle gaps).
    pub fn roll_to(&mut self, now: SimTime) {
        while now >= self.window_start + self.window {
            self.series.push((self.window_start, self.current_count));
            self.current_count = 0;
            self.window_start += self.window;
        }
    }

    /// Completed windows as `(window_start, count)` pairs.
    pub fn series(&self) -> &[(SimTime, u64)] {
        &self.series
    }

    /// Completed windows as events-per-second rates.
    pub fn rates_per_sec(&self) -> Vec<(SimTime, f64)> {
        let w = self.window.as_secs_f64();
        self.series
            .iter()
            .map(|&(t, c)| (t, c as f64 / w))
            .collect()
    }

    /// Overall mean rate across completed windows (events/sec).
    pub fn mean_rate(&self) -> f64 {
        if self.series.is_empty() {
            return 0.0;
        }
        let total: u64 = self.series.iter().map(|&(_, c)| c).sum();
        total as f64 / (self.series.len() as f64 * self.window.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = OnlineStats::new();
        for &v in &data {
            whole.record(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &data[..37] {
            left.record(v);
        }
        for &v in &data[37..] {
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn histogram_percentiles_bracket_truth() {
        let mut h = Histogram::new();
        for v in 1..=10_000u32 {
            h.record(v as f64);
        }
        for (p, truth) in [(50.0, 5000.0), (90.0, 9000.0), (99.0, 9900.0)] {
            let est = h.percentile(p).unwrap();
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.25, "p{p}: est {est} truth {truth} rel {rel}");
        }
    }

    #[test]
    fn histogram_handles_zero_and_subunit() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.5);
        h.record(0.9);
        assert_eq!(h.count(), 3);
        let p = h.percentile(50.0).unwrap();
        assert!(p <= 1.0);
    }

    #[test]
    fn histogram_empty_percentile_none() {
        assert_eq!(Histogram::new().percentile(50.0), None);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10.0);
        b.record(1000.0);
        b.record(2000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.mean() > 500.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        // 0 for 1s, then 10 for 1s => average 5.
        tw.update(SimTime::from_secs(1), 10.0);
        tw.update(SimTime::from_secs(2), 0.0);
        assert!((tw.average() - 5.0).abs() < 1e-12);
        assert_eq!(tw.max(), 10.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn rate_meter_windows() {
        let mut m = RateMeter::new(SimTime::ZERO, SimDuration::from_secs(1));
        for i in 0..10 {
            m.record(SimTime::from_millis(i * 100)); // all within first second
        }
        m.record(SimTime::from_millis(1500)); // second window
        m.roll_to(SimTime::from_secs(4));
        let series = m.series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].1, 10);
        assert_eq!(series[1].1, 1);
        assert_eq!(series[2].1, 0);
        assert_eq!(series[3].1, 0);
        let rates = m.rates_per_sec();
        assert_eq!(rates[0].1, 10.0);
    }

    proptest! {
        #[test]
        fn prop_histogram_percentile_monotone(values in proptest::collection::vec(0.0f64..1e6, 1..500)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let p10 = h.percentile(10.0).unwrap();
            let p50 = h.percentile(50.0).unwrap();
            let p99 = h.percentile(99.0).unwrap();
            prop_assert!(p10 <= p50 && p50 <= p99);
        }

        #[test]
        fn prop_online_stats_mean_bounded(values in proptest::collection::vec(-1e9f64..1e9, 1..500)) {
            let mut s = OnlineStats::new();
            for v in &values {
                s.record(*v);
            }
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.mean() >= lo - 1e-6 && s.mean() <= hi + 1e-6);
        }

        #[test]
        fn prop_merge_commutative_count(xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
                                        ys in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            for x in &xs { a.record(*x); }
            for y in &ys { b.record(*y); }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
        }
    }
}
