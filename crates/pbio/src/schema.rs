//! Schemas: the out-of-band record descriptions, and the registry that
//! assigns them wire ids and serializes them for dynamic discovery.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut};

use crate::varint::{read_u64, write_u64};
use crate::PbioError;

/// Wire types a field may have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Unsigned integer, varint-encoded.
    U64,
    /// Signed integer, zigzag-varint-encoded.
    I64,
    /// IEEE-754 double, 8 bytes little-endian.
    F64,
    /// Boolean, one byte.
    Bool,
    /// UTF-8 string, length-prefixed.
    Str,
    /// Opaque bytes, length-prefixed.
    Bytes,
}

impl FieldType {
    fn code(self) -> u8 {
        match self {
            FieldType::U64 => 0,
            FieldType::I64 => 1,
            FieldType::F64 => 2,
            FieldType::Bool => 3,
            FieldType::Str => 4,
            FieldType::Bytes => 5,
        }
    }

    fn from_code(c: u8) -> Option<FieldType> {
        Some(match c {
            0 => FieldType::U64,
            1 => FieldType::I64,
            2 => FieldType::F64,
            3 => FieldType::Bool,
            4 => FieldType::Str,
            5 => FieldType::Bytes,
            _ => return None,
        })
    }
}

/// One named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Wire type.
    pub ty: FieldType,
}

/// An ordered record description. Cheap to clone (fields are shared).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: Arc<str>,
    fields: Arc<[Field]>,
}

impl Schema {
    /// Starts building a schema with the given record-type name.
    pub fn build(name: &str) -> SchemaBuilder {
        SchemaBuilder {
            name: name.to_owned(),
            fields: Vec::new(),
        }
    }

    /// The record-type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields in wire order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Always false: schemas have at least one field.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Serializes the schema description (for the registry handshake).
    pub fn encode(&self, buf: &mut impl BufMut) {
        write_u64(buf, self.name.len() as u64);
        buf.put_slice(self.name.as_bytes());
        write_u64(buf, self.fields.len() as u64);
        for f in self.fields.iter() {
            write_u64(buf, f.name.len() as u64);
            buf.put_slice(f.name.as_bytes());
            buf.put_u8(f.ty.code());
        }
    }

    /// Decodes a schema description.
    ///
    /// # Errors
    ///
    /// [`PbioError::BadSchemaEncoding`] on malformed input.
    pub fn decode(buf: &mut impl Buf) -> Result<Schema, PbioError> {
        fn read_string(buf: &mut impl Buf) -> Result<String, PbioError> {
            let len = read_u64(buf)? as usize;
            if buf.remaining() < len {
                return Err(PbioError::BadSchemaEncoding);
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            String::from_utf8(bytes).map_err(|_| PbioError::BadSchemaEncoding)
        }
        let name = read_string(buf)?;
        let nfields = read_u64(buf)? as usize;
        if nfields == 0 || nfields > 10_000 {
            return Err(PbioError::BadSchemaEncoding);
        }
        let mut builder = Schema::build(&name);
        for _ in 0..nfields {
            let fname = read_string(buf)?;
            if !buf.has_remaining() {
                return Err(PbioError::BadSchemaEncoding);
            }
            let ty = FieldType::from_code(buf.get_u8()).ok_or(PbioError::BadSchemaEncoding)?;
            builder = builder.field(&fname, ty);
        }
        builder.finish().map_err(|_| PbioError::BadSchemaEncoding)
    }
}

/// Builder returned by [`Schema::build`].
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    fields: Vec<Field>,
}

impl SchemaBuilder {
    /// Appends a field.
    #[must_use]
    pub fn field(mut self, name: &str, ty: FieldType) -> Self {
        self.fields.push(Field {
            name: name.to_owned(),
            ty,
        });
        self
    }

    /// Validates and produces the schema.
    ///
    /// # Errors
    ///
    /// [`PbioError::BadSchema`] if the schema has no fields or duplicate
    /// field names.
    pub fn finish(self) -> Result<Schema, PbioError> {
        if self.fields.is_empty() {
            return Err(PbioError::BadSchema("no fields".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for f in &self.fields {
            if !seen.insert(f.name.as_str()) {
                return Err(PbioError::BadSchema(format!(
                    "duplicate field {:?}",
                    f.name
                )));
            }
        }
        Ok(Schema {
            name: self.name.into(),
            fields: self.fields.into(),
        })
    }
}

/// A stable wire id for a registered schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemaId(pub u32);

/// Assigns wire ids to schemas and resolves them on receipt. Both ends of
/// a monitoring channel keep one; the sender transmits a schema
/// description (once) before the first record of that type.
#[derive(Debug, Default)]
pub struct SchemaRegistry {
    by_id: HashMap<u32, Schema>,
    by_name: HashMap<String, SchemaId>,
    next: u32,
}

impl SchemaRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemaRegistry::default()
    }

    /// Registers a schema, returning its id. Re-registering the same name
    /// returns the existing id (schemas are append-only per name).
    pub fn register(&mut self, schema: &Schema) -> SchemaId {
        if let Some(&id) = self.by_name.get(schema.name()) {
            return id;
        }
        let id = SchemaId(self.next);
        self.next += 1;
        self.by_id.insert(id.0, schema.clone());
        self.by_name.insert(schema.name().to_owned(), id);
        id
    }

    /// Installs a schema received from a peer under the peer-chosen id.
    pub fn install(&mut self, id: SchemaId, schema: Schema) {
        self.by_name.insert(schema.name().to_owned(), id);
        self.by_id.insert(id.0, schema);
        self.next = self.next.max(id.0 + 1);
    }

    /// Looks up a schema by id.
    ///
    /// # Errors
    ///
    /// [`PbioError::UnknownSchema`] if the id was never registered.
    pub fn get(&self, id: SchemaId) -> Result<&Schema, PbioError> {
        self.by_id.get(&id.0).ok_or(PbioError::UnknownSchema(id.0))
    }

    /// Looks up a schema id by record-type name.
    pub fn id_of(&self, name: &str) -> Option<SchemaId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if no schemas are registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::build("iact")
            .field("latency", FieldType::U64)
            .field("node", FieldType::Str)
            .field("user_frac", FieldType::F64)
            .field("ok", FieldType::Bool)
            .finish()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            Schema::build("x").finish(),
            Err(PbioError::BadSchema(_))
        ));
        assert!(matches!(
            Schema::build("x")
                .field("a", FieldType::U64)
                .field("a", FieldType::I64)
                .finish(),
            Err(PbioError::BadSchema(_))
        ));
    }

    #[test]
    fn index_of_finds_fields() {
        let s = sample();
        assert_eq!(s.index_of("latency"), Some(0));
        assert_eq!(s.index_of("ok"), Some(3));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.len(), 4);
        assert_eq!(s.name(), "iact");
    }

    #[test]
    fn schema_encode_decode_round_trip() {
        let s = sample();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let decoded = Schema::decode(&mut &buf[..]).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn schema_decode_rejects_garbage() {
        let garbage = [0xFFu8; 4];
        assert!(Schema::decode(&mut &garbage[..]).is_err());
        let empty: [u8; 0] = [];
        assert!(Schema::decode(&mut &empty[..]).is_err());
    }

    #[test]
    fn registry_assigns_stable_ids() {
        let mut reg = SchemaRegistry::new();
        let s = sample();
        let id1 = reg.register(&s);
        let id2 = reg.register(&s);
        assert_eq!(id1, id2);
        assert_eq!(reg.get(id1).unwrap(), &s);
        assert_eq!(reg.id_of("iact"), Some(id1));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_unknown_id_errors() {
        let reg = SchemaRegistry::new();
        assert_eq!(reg.get(SchemaId(9)), Err(PbioError::UnknownSchema(9)));
    }

    #[test]
    fn registry_install_respects_peer_ids() {
        let mut reg = SchemaRegistry::new();
        reg.install(SchemaId(7), sample());
        assert!(reg.get(SchemaId(7)).is_ok());
        // Next locally assigned id does not collide.
        let other = Schema::build("other")
            .field("x", FieldType::U64)
            .finish()
            .unwrap();
        let id = reg.register(&other);
        assert!(id.0 > 7);
    }
}
