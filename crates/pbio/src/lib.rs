//! A self-describing binary record format — the stand-in for Georgia
//! Tech's PBIO library, which SysProf's dissemination daemon uses for
//! "binary encodings for monitoring data".
//!
//! The design follows PBIO's key idea: records travel as raw binary close
//! to the in-memory layout; the *schema* (field names, types, order)
//! travels once, out of band, so a stream of thousands of monitoring
//! records pays the description cost once instead of per record (unlike
//! XML-based formats such as the Common Base Event standard the paper
//! contrasts against).
//!
//! * [`Schema`] — an ordered list of named, typed fields,
//! * [`SchemaRegistry`] — assigns stable ids; encodes/decodes schemas
//!   themselves so receivers can learn formats dynamically,
//! * [`RecordWriter`] / [`RecordReader`] — fast, compact record codecs
//!   (varint-compressed integers, fixed-width floats),
//! * [`Value`] — the dynamic decoded form.
//!
//! # Example
//!
//! ```
//! use pbio::{FieldType, Schema, RecordWriter, RecordReader, Value};
//!
//! let schema = Schema::build("interaction")
//!     .field("latency_us", FieldType::U64)
//!     .field("node", FieldType::Str)
//!     .finish()?;
//! let mut w = RecordWriter::new(&schema);
//! w.push_u64(1500)?.push_str("proxy")?;
//! let bytes = w.finish()?;
//!
//! let mut r = RecordReader::new(&schema, &bytes);
//! assert_eq!(r.next_value()?, Some(Value::U64(1500)));
//! assert_eq!(r.next_value()?, Some(Value::Str("proxy".into())));
//! # Ok::<(), pbio::PbioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod record;
mod schema;
mod varint;

pub use batch::{encode_batch_into, BatchEncoder};
pub use record::{RecordReader, RecordWriter, Value};
pub use schema::{Field, FieldType, Schema, SchemaBuilder, SchemaId, SchemaRegistry};
pub use varint::{read_u64, write_u64, zigzag_decode, zigzag_encode};

use std::fmt;

/// Errors from encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbioError {
    /// A record field did not match the schema's type at that position.
    TypeMismatch {
        /// Field index in the schema.
        index: usize,
        /// What the schema expects.
        expected: FieldType,
    },
    /// More fields were pushed than the schema declares.
    TooManyFields,
    /// The writer finished before all schema fields were pushed.
    MissingFields {
        /// How many fields were provided.
        got: usize,
        /// How many the schema declares.
        want: usize,
    },
    /// Decoding ran off the end of the buffer.
    UnexpectedEof,
    /// A varint was malformed (continuation past 10 bytes).
    BadVarint,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A schema had no fields or a duplicate field name.
    BadSchema(String),
    /// An unknown schema id was referenced.
    UnknownSchema(u32),
    /// A schema description could not be decoded.
    BadSchemaEncoding,
}

impl fmt::Display for PbioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbioError::TypeMismatch { index, expected } => {
                write!(f, "field {index} expects {expected:?}")
            }
            PbioError::TooManyFields => f.write_str("more fields than the schema declares"),
            PbioError::MissingFields { got, want } => {
                write!(f, "record has {got} of {want} fields")
            }
            PbioError::UnexpectedEof => f.write_str("unexpected end of buffer"),
            PbioError::BadVarint => f.write_str("malformed varint"),
            PbioError::BadUtf8 => f.write_str("string field is not valid utf-8"),
            PbioError::BadSchema(why) => write!(f, "invalid schema: {why}"),
            PbioError::UnknownSchema(id) => write!(f, "unknown schema id {id}"),
            PbioError::BadSchemaEncoding => f.write_str("malformed schema description"),
        }
    }
}

impl std::error::Error for PbioError {}
