//! LEB128 varints and zigzag mapping for signed integers.

use bytes::{Buf, BufMut};

use crate::PbioError;

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn write_u64(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an LEB128 varint.
///
/// # Errors
///
/// [`PbioError::UnexpectedEof`] if the buffer ends mid-varint;
/// [`PbioError::BadVarint`] if the encoding exceeds 10 bytes.
pub fn read_u64(buf: &mut impl Buf) -> Result<u64, PbioError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(PbioError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(PbioError::BadVarint);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed integer onto an unsigned one so small magnitudes encode
/// small (…-2,-1,0,1,2… → …3,1,0,2,4…).
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_encode_in_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(read_u64(&mut &buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn max_value_round_trips() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        assert_eq!(read_u64(&mut &buf[..]).unwrap(), u64::MAX);
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        assert_eq!(read_u64(&mut &buf[..]), Err(PbioError::UnexpectedEof));
    }

    #[test]
    fn overlong_varint_errors() {
        let buf = [0xFFu8; 11];
        assert_eq!(read_u64(&mut &buf[..]), Err(PbioError::BadVarint));
    }

    #[test]
    fn zigzag_examples() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_decode(4294967294), 2147483647);
    }

    proptest! {
        #[test]
        fn prop_varint_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            prop_assert_eq!(read_u64(&mut &buf[..]).unwrap(), v);
        }

        #[test]
        fn prop_zigzag_round_trip(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn prop_zigzag_small_magnitude_small_encoding(v in -64i64..64) {
            let mut buf = Vec::new();
            write_u64(&mut buf, zigzag_encode(v));
            prop_assert_eq!(buf.len(), 1);
        }
    }
}
