//! Vectorized batch encoding for numeric record streams.
//!
//! The per-record [`RecordWriter`](crate::RecordWriter) pays, for every
//! record: a fresh output `Vec`, a schema type check per field, a
//! dynamic [`Value`](crate::Value) match per field, and a grow check per
//! byte written. Monitoring hot paths (a dissemination daemon draining
//! thousands of interaction records per wake) encode the *same*
//! all-numeric schema over and over, so all of that is loop-invariant:
//!
//! * [`BatchEncoder::new`] validates the schema **once** and freezes the
//!   per-field wire kinds — the encode loop has no type checks left.
//! * [`encode_batch_into`] reserves worst-case capacity for the whole
//!   batch up front, hoisting every grow/bounds check out of the
//!   per-value loop, and encodes row-major raw values (the same `i64`
//!   bit convention as digest raw rows) straight into one reusable
//!   output buffer.
//! * All-`U64` schemas — the interaction-record hot case — take a
//!   monomorphic inner loop with no per-field kind dispatch at all.
//!
//! Output bytes are **identical** to a `RecordWriter` run per row (the
//! tests pin this), so receivers cannot tell which path encoded a
//! record; the batch form is purely a producer-side optimization.

use crate::schema::{FieldType, Schema};
use crate::PbioError;

/// Per-field wire kind with the schema validation already spent.
/// `repr(u8)` and kind-only (no names) so the encode loop's dispatch
/// table is a dense byte array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    U64,
    I64,
    F64,
    Bool,
}

/// A schema compiled for batch encoding: field kinds frozen, type
/// checks hoisted out of the encode loop. Build once per schema, reuse
/// for every batch.
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    kinds: Box<[Kind]>,
    /// Every field is `U64` — the interaction-record hot case, which
    /// takes a dispatch-free inner loop.
    all_u64: bool,
}

impl BatchEncoder {
    /// Compiles `schema` for batch encoding.
    ///
    /// # Errors
    ///
    /// [`PbioError::BadSchema`] if the schema has `Str`/`Bytes` fields —
    /// variable-length payloads have no raw-row form; such records keep
    /// using [`RecordWriter`](crate::RecordWriter).
    pub fn new(schema: &Schema) -> Result<BatchEncoder, PbioError> {
        let kinds = schema
            .fields()
            .iter()
            .map(|f| match f.ty {
                FieldType::U64 => Ok(Kind::U64),
                FieldType::I64 => Ok(Kind::I64),
                FieldType::F64 => Ok(Kind::F64),
                FieldType::Bool => Ok(Kind::Bool),
                FieldType::Str | FieldType::Bytes => Err(PbioError::BadSchema(format!(
                    "batch encoding requires numeric/bool fields; `{}` is {:?}",
                    f.name, f.ty
                ))),
            })
            .collect::<Result<Box<[Kind]>, PbioError>>()?;
        let all_u64 = kinds.iter().all(|&k| k == Kind::U64);
        Ok(BatchEncoder { kinds, all_u64 })
    }

    /// Raw values per row (= schema field count).
    pub fn stride(&self) -> usize {
        self.kinds.len()
    }

    /// Encodes one raw row (see [`encode_batch_into`] for the bit
    /// convention), appending to `out`. The single-record form the
    /// publish hot path uses; byte-identical to a `RecordWriter`.
    ///
    /// # Errors
    ///
    /// [`PbioError::MissingFields`] if `row` is not exactly one stride.
    pub fn encode_row_into(&self, row: &[i64], out: &mut Vec<u8>) -> Result<(), PbioError> {
        if row.len() != self.stride() {
            return Err(PbioError::MissingFields {
                got: row.len(),
                want: self.stride(),
            });
        }
        out.reserve(row.len() * MAX_VALUE_BYTES);
        encode_row(&self.kinds, self.all_u64, row, out);
        Ok(())
    }
}

/// Worst-case encoded bytes per value (a 10-byte varint dominates the
/// 8-byte fixed double and 1-byte bool).
const MAX_VALUE_BYTES: usize = 10;

/// Encodes `rows` — row-major raw values, [`BatchEncoder::stride`] per
/// record — into `out`, appending each record's **end offset** (within
/// `out`) to `offsets` so callers can frame records individually.
///
/// The raw-value bit convention matches E-Code digest raw rows: a `U64`
/// or `I64` field holds the integer itself (width-extended), an `F64`
/// field holds `f64::to_bits` reinterpreted as `i64`, a `Bool` field is
/// nonzero-for-true. Bytes appended to `out` are identical to running a
/// [`RecordWriter`](crate::RecordWriter) per row.
///
/// `out` and `offsets` are *appended to*, not cleared — callers reuse
/// them across batches and drain at their own pace.
///
/// # Errors
///
/// [`PbioError::MissingFields`] if `rows` is not a whole number of
/// records. Nothing is written on error.
pub fn encode_batch_into(
    enc: &BatchEncoder,
    rows: &[i64],
    out: &mut Vec<u8>,
    offsets: &mut Vec<usize>,
) -> Result<(), PbioError> {
    let stride = enc.stride();
    if stride == 0 || !rows.len().is_multiple_of(stride) {
        return Err(PbioError::MissingFields {
            got: rows.len() % stride.max(1),
            want: stride,
        });
    }
    // One reservation for the whole batch: every grow check inside the
    // per-value loop below is dead (capacity is proven sufficient), so
    // the loop body is pure compute + append.
    out.reserve(rows.len() * MAX_VALUE_BYTES);
    offsets.reserve(rows.len() / stride);

    if enc.all_u64 {
        // Monomorphic hot loop: no kind dispatch, just varints.
        for row in rows.chunks_exact(stride) {
            for &v in row {
                put_varint(out, v as u64);
            }
            offsets.push(out.len());
        }
    } else {
        for row in rows.chunks_exact(stride) {
            encode_row(&enc.kinds, false, row, out);
            offsets.push(out.len());
        }
    }
    Ok(())
}

/// Encodes one row; `row.len() == kinds.len()` is the caller's
/// invariant, and capacity for the worst case is already reserved.
#[inline]
fn encode_row(kinds: &[Kind], all_u64: bool, row: &[i64], out: &mut Vec<u8>) {
    if all_u64 {
        for &v in row {
            put_varint(out, v as u64);
        }
        return;
    }
    for (&k, &v) in kinds.iter().zip(row) {
        match k {
            Kind::U64 => put_varint(out, v as u64),
            Kind::I64 => put_varint(out, crate::varint::zigzag_encode(v)),
            // Raw bits are already `f64::to_bits`; LE bytes match
            // `RecordWriter::push_f64`'s `put_f64_le`.
            Kind::F64 => out.extend_from_slice(&(v as u64).to_le_bytes()),
            Kind::Bool => out.push((v != 0) as u8),
        }
    }
}

/// LEB128 append tuned for the batch loop: one-byte values (the common
/// case for monitoring metrics) short-circuit; longer ones fill a stack
/// scratch and land in a single `extend_from_slice` instead of a
/// checked push per byte. Byte output is identical to
/// [`write_u64`](crate::varint::write_u64).
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    if v < 0x80 {
        out.push(v as u8);
        return;
    }
    let mut scratch = [0u8; MAX_VALUE_BYTES];
    let mut i = 0usize;
    while v >= 0x80 {
        scratch[i] = (v as u8) | 0x80;
        v >>= 7;
        i += 1;
    }
    scratch[i] = v as u8;
    out.extend_from_slice(&scratch[..=i]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordWriter;
    use crate::varint::write_u64;
    use proptest::prelude::*;

    fn numeric_schema() -> Schema {
        Schema::build("mix")
            .field("a", FieldType::U64)
            .field("b", FieldType::I64)
            .field("c", FieldType::F64)
            .field("d", FieldType::Bool)
            .finish()
            .unwrap()
    }

    /// Reference encoding: one RecordWriter per row.
    fn reference(schema: &Schema, rows: &[i64]) -> (Vec<u8>, Vec<usize>) {
        let (mut out, mut offsets) = (Vec::new(), Vec::new());
        for row in rows.chunks_exact(schema.len()) {
            let mut w = RecordWriter::new(schema);
            for (f, &v) in schema.fields().iter().zip(row) {
                match f.ty {
                    FieldType::U64 => w.push_u64(v as u64).map(|_| ()).unwrap(),
                    FieldType::I64 => w.push_i64(v).map(|_| ()).unwrap(),
                    FieldType::F64 => w.push_f64(f64::from_bits(v as u64)).map(|_| ()).unwrap(),
                    FieldType::Bool => w.push_bool(v != 0).map(|_| ()).unwrap(),
                    _ => unreachable!(),
                }
            }
            out.extend_from_slice(&w.finish().unwrap());
            offsets.push(out.len());
        }
        (out, offsets)
    }

    #[test]
    fn batch_bytes_identical_to_record_writer() {
        let schema = numeric_schema();
        let enc = BatchEncoder::new(&schema).unwrap();
        let mut rows = Vec::new();
        for i in 0..257i64 {
            rows.extend_from_slice(&[
                i * 1_000_003,                     // U64 spanning several varint lengths
                -i * 7 + 3,                        // I64 both signs
                (0.5 + i as f64).to_bits() as i64, // F64 raw bits
                i % 3,                             // Bool, non-canonical truthiness
            ]);
        }
        let (mut out, mut offsets) = (Vec::new(), Vec::new());
        encode_batch_into(&enc, &rows, &mut out, &mut offsets).unwrap();
        let (want, want_offsets) = reference(&schema, &rows);
        assert_eq!(out, want);
        assert_eq!(offsets, want_offsets);
    }

    #[test]
    fn all_u64_fast_path_identical_too() {
        let schema = Schema::build("u")
            .field("a", FieldType::U64)
            .field("b", FieldType::U64)
            .field("c", FieldType::U64)
            .finish()
            .unwrap();
        let enc = BatchEncoder::new(&schema).unwrap();
        let rows: Vec<i64> = (0..300)
            .map(|i| (i as i64).wrapping_mul(0x9e37_79b9_7f4a_7c15_u64 as i64))
            .collect();
        let (mut out, mut offsets) = (Vec::new(), Vec::new());
        encode_batch_into(&enc, &rows, &mut out, &mut offsets).unwrap();
        let (want, want_offsets) = reference(&schema, &rows);
        assert_eq!(out, want);
        assert_eq!(offsets, want_offsets);
    }

    #[test]
    fn appends_without_clearing() {
        let schema = numeric_schema();
        let enc = BatchEncoder::new(&schema).unwrap();
        let mut out = vec![0xEE];
        let mut offsets = vec![1usize];
        encode_batch_into(&enc, &[1, -1, 0, 1], &mut out, &mut offsets).unwrap();
        assert_eq!(out[0], 0xEE);
        assert_eq!(offsets[0], 1);
        assert_eq!(*offsets.last().unwrap(), out.len());
    }

    #[test]
    fn ragged_batch_rejected() {
        let schema = numeric_schema();
        let enc = BatchEncoder::new(&schema).unwrap();
        let (mut out, mut offsets) = (Vec::new(), Vec::new());
        assert_eq!(
            encode_batch_into(&enc, &[1, 2, 3], &mut out, &mut offsets),
            Err(PbioError::MissingFields { got: 3, want: 4 })
        );
        assert!(out.is_empty() && offsets.is_empty());
    }

    #[test]
    fn string_schema_rejected_at_build() {
        let schema = Schema::build("s")
            .field("a", FieldType::U64)
            .field("s", FieldType::Str)
            .finish()
            .unwrap();
        assert!(matches!(
            BatchEncoder::new(&schema),
            Err(PbioError::BadSchema(_))
        ));
    }

    #[test]
    fn single_row_form_matches_batch() {
        let schema = numeric_schema();
        let enc = BatchEncoder::new(&schema).unwrap();
        let row = [77, -5, 1.25f64.to_bits() as i64, 0];
        let mut single = Vec::new();
        enc.encode_row_into(&row, &mut single).unwrap();
        let (mut batch, mut offsets) = (Vec::new(), Vec::new());
        encode_batch_into(&enc, &row, &mut batch, &mut offsets).unwrap();
        assert_eq!(single, batch);
        assert_eq!(
            enc.encode_row_into(&row[..2], &mut single),
            Err(PbioError::MissingFields { got: 2, want: 4 })
        );
    }

    #[test]
    fn put_varint_matches_write_u64_at_length_edges() {
        // Every varint length boundary: 7-bit steps plus the extremes.
        let mut probes = vec![0u64, 1, 0x7F, 0x80, u64::MAX];
        for shift in 1..10u32 {
            probes.push((1u64 << (7 * shift)) - 1);
            probes.push(1u64 << (7 * shift));
        }
        for v in probes {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            put_varint(&mut a, v);
            write_u64(&mut b, v);
            assert_eq!(a, b, "divergence at {v}");
        }
    }

    proptest! {
        /// Batch encoding is byte-identical to per-record RecordWriter
        /// encoding for arbitrary numeric rows.
        #[test]
        fn prop_batch_matches_record_writer(
            raw in proptest::collection::vec(any::<i64>(), 0..25 * 4)
        ) {
            let rows = &raw[..raw.len() - raw.len() % 4];
            let schema = numeric_schema();
            let enc = BatchEncoder::new(&schema).unwrap();
            let (mut out, mut offsets) = (Vec::new(), Vec::new());
            encode_batch_into(&enc, rows, &mut out, &mut offsets).unwrap();
            let (want, want_offsets) = reference(&schema, rows);
            prop_assert_eq!(out, want);
            prop_assert_eq!(offsets, want_offsets);
        }
    }
}
