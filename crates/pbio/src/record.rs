//! Record encoding and decoding against a schema.

use bytes::{Buf, BufMut};

use crate::schema::{FieldType, Schema};
use crate::varint::{read_u64, write_u64, zigzag_decode, zigzag_encode};
use crate::PbioError;

/// A decoded field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Double.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Opaque bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// The wire type of this value.
    pub fn field_type(&self) -> FieldType {
        match self {
            Value::U64(_) => FieldType::U64,
            Value::I64(_) => FieldType::I64,
            Value::F64(_) => FieldType::F64,
            Value::Bool(_) => FieldType::Bool,
            Value::Str(_) => FieldType::Str,
            Value::Bytes(_) => FieldType::Bytes,
        }
    }

    /// The value as u64, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as f64, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Encodes one record against a schema, field by field, in order.
#[derive(Debug)]
pub struct RecordWriter<'s> {
    schema: &'s Schema,
    buf: Vec<u8>,
    next_field: usize,
}

impl<'s> RecordWriter<'s> {
    /// Starts a record of the given schema.
    pub fn new(schema: &'s Schema) -> Self {
        RecordWriter {
            schema,
            buf: Vec::with_capacity(32),
            next_field: 0,
        }
    }

    fn expect(&mut self, ty: FieldType) -> Result<(), PbioError> {
        let Some(field) = self.schema.fields().get(self.next_field) else {
            return Err(PbioError::TooManyFields);
        };
        if field.ty != ty {
            return Err(PbioError::TypeMismatch {
                index: self.next_field,
                expected: field.ty,
            });
        }
        self.next_field += 1;
        Ok(())
    }

    /// Appends a u64 field.
    ///
    /// # Errors
    ///
    /// Type mismatch or too many fields.
    pub fn push_u64(&mut self, v: u64) -> Result<&mut Self, PbioError> {
        self.expect(FieldType::U64)?;
        write_u64(&mut self.buf, v);
        Ok(self)
    }

    /// Appends an i64 field.
    ///
    /// # Errors
    ///
    /// Type mismatch or too many fields.
    pub fn push_i64(&mut self, v: i64) -> Result<&mut Self, PbioError> {
        self.expect(FieldType::I64)?;
        write_u64(&mut self.buf, zigzag_encode(v));
        Ok(self)
    }

    /// Appends an f64 field.
    ///
    /// # Errors
    ///
    /// Type mismatch or too many fields.
    pub fn push_f64(&mut self, v: f64) -> Result<&mut Self, PbioError> {
        self.expect(FieldType::F64)?;
        self.buf.put_f64_le(v);
        Ok(self)
    }

    /// Appends a bool field.
    ///
    /// # Errors
    ///
    /// Type mismatch or too many fields.
    pub fn push_bool(&mut self, v: bool) -> Result<&mut Self, PbioError> {
        self.expect(FieldType::Bool)?;
        self.buf.put_u8(v as u8);
        Ok(self)
    }

    /// Appends a string field.
    ///
    /// # Errors
    ///
    /// Type mismatch or too many fields.
    pub fn push_str(&mut self, v: &str) -> Result<&mut Self, PbioError> {
        self.expect(FieldType::Str)?;
        write_u64(&mut self.buf, v.len() as u64);
        self.buf.put_slice(v.as_bytes());
        Ok(self)
    }

    /// Appends a bytes field.
    ///
    /// # Errors
    ///
    /// Type mismatch or too many fields.
    pub fn push_bytes(&mut self, v: &[u8]) -> Result<&mut Self, PbioError> {
        self.expect(FieldType::Bytes)?;
        write_u64(&mut self.buf, v.len() as u64);
        self.buf.put_slice(v);
        Ok(self)
    }

    /// Appends a dynamic [`Value`].
    ///
    /// # Errors
    ///
    /// Type mismatch or too many fields.
    pub fn push_value(&mut self, v: &Value) -> Result<&mut Self, PbioError> {
        match v {
            Value::U64(x) => self.push_u64(*x),
            Value::I64(x) => self.push_i64(*x),
            Value::F64(x) => self.push_f64(*x),
            Value::Bool(x) => self.push_bool(*x),
            Value::Str(x) => self.push_str(x),
            Value::Bytes(x) => self.push_bytes(x),
        }
    }

    /// Finishes the record, returning the encoded bytes.
    ///
    /// # Errors
    ///
    /// [`PbioError::MissingFields`] if fewer fields were pushed than the
    /// schema declares.
    pub fn finish(self) -> Result<Vec<u8>, PbioError> {
        if self.next_field != self.schema.len() {
            return Err(PbioError::MissingFields {
                got: self.next_field,
                want: self.schema.len(),
            });
        }
        Ok(self.buf)
    }
}

/// Decodes a record encoded by [`RecordWriter`] with the same schema.
#[derive(Debug)]
pub struct RecordReader<'s, 'b> {
    schema: &'s Schema,
    buf: &'b [u8],
    next_field: usize,
}

impl<'s, 'b> RecordReader<'s, 'b> {
    /// Starts decoding `buf` against `schema`.
    pub fn new(schema: &'s Schema, buf: &'b [u8]) -> Self {
        RecordReader {
            schema,
            buf,
            next_field: 0,
        }
    }

    /// Decodes the next field, or `None` when all fields are read.
    ///
    /// # Errors
    ///
    /// EOF / malformed data errors.
    pub fn next_value(&mut self) -> Result<Option<Value>, PbioError> {
        let Some(field) = self.schema.fields().get(self.next_field) else {
            return Ok(None);
        };
        self.next_field += 1;
        let buf = &mut self.buf;
        let v = match field.ty {
            FieldType::U64 => Value::U64(read_u64(buf)?),
            FieldType::I64 => Value::I64(zigzag_decode(read_u64(buf)?)),
            FieldType::F64 => {
                if buf.remaining() < 8 {
                    return Err(PbioError::UnexpectedEof);
                }
                Value::F64(buf.get_f64_le())
            }
            FieldType::Bool => {
                if !buf.has_remaining() {
                    return Err(PbioError::UnexpectedEof);
                }
                Value::Bool(buf.get_u8() != 0)
            }
            FieldType::Str => {
                let len = read_u64(buf)? as usize;
                if buf.remaining() < len {
                    return Err(PbioError::UnexpectedEof);
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                Value::Str(String::from_utf8(bytes).map_err(|_| PbioError::BadUtf8)?)
            }
            FieldType::Bytes => {
                let len = read_u64(buf)? as usize;
                if buf.remaining() < len {
                    return Err(PbioError::UnexpectedEof);
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                Value::Bytes(bytes)
            }
        };
        Ok(Some(v))
    }

    /// Decodes the whole record into a vector of values.
    ///
    /// # Errors
    ///
    /// EOF / malformed data errors.
    pub fn read_all(mut self) -> Result<Vec<Value>, PbioError> {
        let mut out = Vec::with_capacity(self.schema.len());
        while let Some(v) = self.next_value()? {
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::build("t")
            .field("a", FieldType::U64)
            .field("b", FieldType::I64)
            .field("c", FieldType::F64)
            .field("d", FieldType::Bool)
            .field("e", FieldType::Str)
            .field("f", FieldType::Bytes)
            .finish()
            .unwrap()
    }

    #[test]
    fn full_round_trip() {
        let s = schema();
        let mut w = RecordWriter::new(&s);
        w.push_u64(7)
            .unwrap()
            .push_i64(-99)
            .unwrap()
            .push_f64(2.5)
            .unwrap()
            .push_bool(true)
            .unwrap()
            .push_str("proxy")
            .unwrap()
            .push_bytes(&[1, 2, 3])
            .unwrap();
        let bytes = w.finish().unwrap();
        let values = RecordReader::new(&s, &bytes).read_all().unwrap();
        assert_eq!(
            values,
            vec![
                Value::U64(7),
                Value::I64(-99),
                Value::F64(2.5),
                Value::Bool(true),
                Value::Str("proxy".into()),
                Value::Bytes(vec![1, 2, 3]),
            ]
        );
    }

    #[test]
    fn type_mismatch_detected() {
        let s = schema();
        let mut w = RecordWriter::new(&s);
        assert_eq!(
            w.push_i64(1).unwrap_err(),
            PbioError::TypeMismatch {
                index: 0,
                expected: FieldType::U64
            }
        );
    }

    #[test]
    fn missing_fields_detected() {
        let s = schema();
        let mut w = RecordWriter::new(&s);
        w.push_u64(1).unwrap();
        assert_eq!(
            w.finish().unwrap_err(),
            PbioError::MissingFields { got: 1, want: 6 }
        );
    }

    #[test]
    fn too_many_fields_detected() {
        let s = Schema::build("one")
            .field("a", FieldType::U64)
            .finish()
            .unwrap();
        let mut w = RecordWriter::new(&s);
        w.push_u64(1).unwrap();
        assert_eq!(w.push_u64(2).unwrap_err(), PbioError::TooManyFields);
    }

    #[test]
    fn truncated_record_errors() {
        let s = Schema::build("s")
            .field("e", FieldType::Str)
            .finish()
            .unwrap();
        let mut w = RecordWriter::new(&s);
        w.push_str("hello").unwrap();
        let bytes = w.finish().unwrap();
        let truncated = &bytes[..bytes.len() - 2];
        assert_eq!(
            RecordReader::new(&s, truncated).read_all().unwrap_err(),
            PbioError::UnexpectedEof
        );
    }

    #[test]
    fn compactness_beats_text() {
        // A typical interaction record: 6 small integers. The binary form
        // must be far smaller than any plausible XML/JSON rendering
        // (the paper's argument against CBE-style formats).
        let s = Schema::build("iact")
            .field("start_us", FieldType::U64)
            .field("kernel_us", FieldType::U64)
            .field("user_us", FieldType::U64)
            .field("pkts", FieldType::U64)
            .field("bytes", FieldType::U64)
            .field("blocked_us", FieldType::U64)
            .finish()
            .unwrap();
        let mut w = RecordWriter::new(&s);
        w.push_u64(1_000_000)
            .unwrap()
            .push_u64(1500)
            .unwrap()
            .push_u64(300)
            .unwrap()
            .push_u64(12)
            .unwrap()
            .push_u64(17_000)
            .unwrap()
            .push_u64(0)
            .unwrap();
        let bytes = w.finish().unwrap();
        assert!(bytes.len() <= 16, "encoded {} bytes", bytes.len());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U64(3).as_u64(), Some(3));
        assert_eq!(Value::U64(3).as_f64(), None);
        assert_eq!(Value::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).field_type(), FieldType::Bool);
    }

    proptest! {
        #[test]
        fn prop_round_trip_numeric(a in any::<u64>(), b in any::<i64>(), c in any::<f64>()) {
            let s = Schema::build("n")
                .field("a", FieldType::U64)
                .field("b", FieldType::I64)
                .field("c", FieldType::F64)
                .finish()
                .unwrap();
            let mut w = RecordWriter::new(&s);
            w.push_u64(a).unwrap().push_i64(b).unwrap().push_f64(c).unwrap();
            let bytes = w.finish().unwrap();
            let vals = RecordReader::new(&s, &bytes).read_all().unwrap();
            prop_assert_eq!(vals[0].clone(), Value::U64(a));
            prop_assert_eq!(vals[1].clone(), Value::I64(b));
            match (vals[2].clone(), c) {
                (Value::F64(x), c) if c.is_nan() => prop_assert!(x.is_nan()),
                (Value::F64(x), c) => prop_assert_eq!(x, c),
                _ => prop_assert!(false),
            }
        }

        #[test]
        fn prop_round_trip_strings(s1 in ".*", raw in proptest::collection::vec(any::<u8>(), 0..256)) {
            let s = Schema::build("sb")
                .field("s", FieldType::Str)
                .field("b", FieldType::Bytes)
                .finish()
                .unwrap();
            let mut w = RecordWriter::new(&s);
            w.push_str(&s1).unwrap().push_bytes(&raw).unwrap();
            let bytes = w.finish().unwrap();
            let vals = RecordReader::new(&s, &bytes).read_all().unwrap();
            prop_assert_eq!(vals[0].clone(), Value::Str(s1));
            prop_assert_eq!(vals[1].clone(), Value::Bytes(raw));
        }
    }
}

#[cfg(test)]
#[allow(unused)] // a typecheck-only proptest elides macro bodies, orphaning these imports
mod decode_fuzz {
    use super::*;
    use crate::{FieldType, Schema};
    use proptest::prelude::*;

    proptest! {
        /// Decoding arbitrary bytes against any schema never panics: it
        /// returns values or a typed error. (The GPA decodes data received
        /// from the network; a malformed record must not take it down.)
        #[test]
        fn prop_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let schema = Schema::build("fuzz")
                .field("a", FieldType::U64)
                .field("b", FieldType::I64)
                .field("c", FieldType::F64)
                .field("d", FieldType::Bool)
                .field("e", FieldType::Str)
                .field("f", FieldType::Bytes)
                .finish()
                .unwrap();
            let _ = RecordReader::new(&schema, &bytes).read_all();
        }

        /// Schema descriptions decode totally as well.
        #[test]
        fn prop_schema_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Schema::decode(&mut &bytes[..]);
        }
    }
}
