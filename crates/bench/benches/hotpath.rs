//! Criterion hot-path suite: events/sec through the emit → dispatch →
//! E-Code VM → encode pipeline, plus E1/E2/F6 end-to-end wall-clock.
//!
//! The `hotpath` binary drives the same [`sysprof_bench::hotpath`]
//! pipeline and records the committed `BENCH_hotpath.json` baseline; this
//! suite is for statistically careful local comparisons (`cargo bench
//! --bench hotpath`).

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::SimDuration;
use sysprof_bench::hotpath::HotPipeline;
use sysprof_bench::{exp_e1_linpack, exp_e2_iperf, exp_f6_dwcs};

const BLOCK: u64 = 4096;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("emit_dispatch_vm_encode", |b| {
        let mut pipe = HotPipeline::new();
        b.iter(|| pipe.pump(BLOCK));
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("e1_linpack", |b| b.iter(|| exp_e1_linpack(42)));
    g.bench_function("e2_iperf_200ms", |b| {
        b.iter(|| exp_e2_iperf(SimDuration::from_millis(200), 42))
    });
    g.bench_function("f6_dwcs_2s", |b| {
        b.iter(|| exp_f6_dwcs(SimDuration::from_secs(2), 42))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_end_to_end);
criterion_main!(benches);
