//! Criterion hot-path suite: events/sec through the emit → dispatch →
//! E-Code VM → encode pipeline, plus E1/E2/F6 end-to-end wall-clock.
//!
//! The `hotpath` binary drives the same [`sysprof_bench::hotpath`]
//! pipeline and records the committed `BENCH_hotpath.json` baseline; this
//! suite is for statistically careful local comparisons (`cargo bench
//! --bench hotpath`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simcore::SimDuration;
use sysprof_bench::hotpath::{
    cpa_eval_instance, pump_cpa, synth_record, CpaEventStream, HotPipeline, CPA_EVAL_SET,
};
use sysprof_bench::{exp_e1_linpack, exp_e2_iperf, exp_f6_dwcs};

const BLOCK: u64 = 4096;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("emit_dispatch_vm_encode", |b| {
        let mut pipe = HotPipeline::new();
        b.iter(|| pipe.pump(BLOCK));
    });
    g.finish();
}

/// Fused VM vs closure-compiled tier over the representative CPA set —
/// the statistically careful companion to the `cpa_eval` arm of the
/// `hotpath` binary (which records the committed baseline and gate).
fn bench_cpa_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpa_eval");
    g.throughput(Throughput::Elements(BLOCK));
    let stream = CpaEventStream::generate(0, BLOCK);
    for (name, src) in CPA_EVAL_SET {
        for tier in [ecode::ExecTier::Fused, ecode::ExecTier::Compiled] {
            let label = match tier {
                ecode::ExecTier::Fused => format!("{name}/fused"),
                ecode::ExecTier::Compiled => format!("{name}/compiled"),
            };
            g.bench_function(&label, |b| {
                let (mut inst, fuel) = cpa_eval_instance(src, tier);
                b.iter(|| pump_cpa(&mut inst, &stream, fuel, 1).flagged);
            });
        }
    }
    g.finish();
}

/// Per-record `RecordWriter` vs the vectorized batch encoder over the
/// all-U64 interaction schema — the `pbio_encode` win the vectorized
/// hot loop exists for (identical output bytes, pinned by pbio's
/// tests).
fn bench_pbio_encode(c: &mut Criterion) {
    const RECORDS: usize = 1024;
    let schema = sysprof::InteractionRecord::schema();
    let stride = schema.len();
    let mut rows = Vec::with_capacity(RECORDS * stride);
    let mut row = Vec::with_capacity(stride);
    for i in 0..RECORDS as u64 {
        synth_record(i).to_raw_row(&mut row);
        rows.extend_from_slice(&row);
    }

    let mut g = c.benchmark_group("pbio_encode");
    g.throughput(Throughput::Elements(RECORDS as u64));
    g.bench_function("record_writer_per_row", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            for row in rows.chunks_exact(stride) {
                let mut w = pbio::RecordWriter::new(&schema);
                for &v in row {
                    w.push_u64(v as u64).unwrap();
                }
                out.extend_from_slice(&w.finish().unwrap());
            }
            out.len()
        });
    });
    g.bench_function("encode_batch_into", |b| {
        let enc = pbio::BatchEncoder::new(&schema).unwrap();
        let mut out = Vec::new();
        let mut offsets = Vec::new();
        b.iter(|| {
            out.clear();
            offsets.clear();
            pbio::encode_batch_into(&enc, &rows, &mut out, &mut offsets).unwrap();
            out.len()
        });
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("e1_linpack", |b| b.iter(|| exp_e1_linpack(42)));
    g.bench_function("e2_iperf_200ms", |b| {
        b.iter(|| exp_e2_iperf(SimDuration::from_millis(200), 42))
    });
    g.bench_function("f6_dwcs_2s", |b| {
        b.iter(|| exp_f6_dwcs(SimDuration::from_secs(2), 42))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_cpa_eval,
    bench_pbio_encode,
    bench_end_to_end
);
criterion_main!(benches);
