//! Microbenchmarks of SysProf's hot paths — the real-time cost of each
//! stage the paper's low-overhead claims rest on: event dispatch, LPA
//! analysis, E-Code filters, PBIO encoding, channel fan-out.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kprof::{CountingAnalyzer, EventMask, EventPayload, Kprof, NetPoint, Pid};
use pbio::{RecordReader, RecordWriter};
use simcore::{NodeId, SimTime};
use simnet::{EndPoint, FlowKey, Ip, PacketId, Port};
use sysprof::{InteractionRecord, Lpa, LpaConfig};

fn net_payload(i: u64) -> EventPayload {
    EventPayload::Net {
        point: NetPoint::RxNic,
        flow: FlowKey::new(
            EndPoint::new(Ip(0x0A000001), Port(40000)),
            EndPoint::new(Ip(0x0A000002), Port(2049)),
        ),
        packet: PacketId(i),
        size: 1500,
        pid: Some(Pid(7)),
        arm: None,
    }
}

fn bench_kprof_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("kprof");

    g.bench_function("emit_suppressed", |b| {
        let mut kprof = Kprof::new(NodeId(0));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ev = kprof.make_event(SimTime::from_nanos(i), 0, net_payload(i));
            std::hint::black_box(kprof.emit(&ev));
        });
    });

    g.bench_function("emit_counting_subscriber", |b| {
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(CountingAnalyzer::new(EventMask::ALL)));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ev = kprof.make_event(SimTime::from_nanos(i), 0, net_payload(i));
            std::hint::black_box(kprof.emit(&ev));
        });
    });

    g.finish();
}

fn bench_lpa(c: &mut Criterion) {
    let mut g = c.benchmark_group("lpa");
    g.bench_function("net_event", |b| {
        let mut lpa = Lpa::new(NodeId(0), Ip(0x0A000002), LpaConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            use kprof::Analyzer;
            i += 1;
            let ev = kprof::Event {
                seq: i,
                node: NodeId(0),
                cpu: 0,
                wall: SimTime::from_nanos(i * 1000),
                payload: net_payload(i),
            };
            std::hint::black_box(lpa.on_event(&ev));
        });
    });
    g.finish();
}

fn bench_ecode(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecode");
    let src = r#"
        static int count = 0;
        static double total = 0.0;
        if (kind == 7 && size > 1000) {
            count = count + 1;
            total = total + size;
            out(0, total / count);
        }
        return count % 100 == 0;
    "#;
    g.bench_function("compile", |b| {
        b.iter(|| {
            std::hint::black_box(
                ecode::Program::compile(src, &sysprof::EVENT_INPUTS).expect("compiles"),
            )
        });
    });
    g.bench_function("run_per_event", |b| {
        let program = ecode::Program::compile(src, &sysprof::EVENT_INPUTS).expect("compiles");
        let mut inst = ecode::Instance::new(&program);
        use ecode::Value::Int;
        let inputs = [
            Int(7),
            Int(7),
            Int(1_000_000),
            Int(1500),
            Int(0),
            Int(40000),
            Int(2049),
        ];
        b.iter(|| std::hint::black_box(inst.run(&inputs, 10_000).expect("runs").fuel_used));
    });
    g.finish();
}

fn bench_pbio(c: &mut Criterion) {
    let mut g = c.benchmark_group("pbio");
    let schema = InteractionRecord::schema();
    let record = InteractionRecord {
        node: NodeId(1),
        flow: FlowKey::new(
            EndPoint::new(Ip(0x0A000001), Port(40000)),
            EndPoint::new(Ip(0x0A000002), Port(2049)),
        ),
        class_port: Port(2049),
        pid: 17,
        start_us: 1_000_000,
        end_us: 1_002_500,
        req_packets: 6,
        req_bytes: 8_400,
        resp_packets: 1,
        resp_bytes: 190,
        kernel_in_us: 700,
        user_us: 120,
        kernel_out_us: 80,
        blocked_us: 1_500,
        blocked_io_us: 1_400,
    };
    g.bench_function("encode_interaction", |b| {
        b.iter(|| {
            let mut w = RecordWriter::new(&schema);
            for v in record.to_values() {
                w.push_value(&v).expect("schema matches");
            }
            std::hint::black_box(w.finish().expect("complete"))
        });
    });
    let encoded = {
        let mut w = RecordWriter::new(&schema);
        for v in record.to_values() {
            w.push_value(&v).expect("schema matches");
        }
        w.finish().expect("complete")
    };
    g.bench_function("decode_interaction", |b| {
        b.iter(|| {
            std::hint::black_box(
                RecordReader::new(&schema, &encoded)
                    .read_all()
                    .expect("decodes"),
            )
        });
    });
    g.finish();
}

fn bench_pubsub(c: &mut Criterion) {
    let mut g = c.benchmark_group("pubsub");
    let schema = InteractionRecord::schema();
    let values = InteractionRecord {
        node: NodeId(1),
        flow: FlowKey::new(
            EndPoint::new(Ip(1), Port(1)),
            EndPoint::new(Ip(2), Port(2049)),
        ),
        class_port: Port(2049),
        pid: 1,
        start_us: 0,
        end_us: 100,
        req_packets: 1,
        req_bytes: 100,
        resp_packets: 1,
        resp_bytes: 100,
        kernel_in_us: 10,
        user_us: 5,
        kernel_out_us: 2,
        blocked_us: 0,
        blocked_io_us: 0,
    }
    .to_values();

    g.bench_function("publish_filtered_4_subscribers", |b| {
        b.iter_batched(
            || {
                let mut hub = pubsub::Hub::new();
                let t = hub.topic("interactions");
                for i in 0..4u32 {
                    hub.subscribe_with_schema(
                        t,
                        EndPoint::new(Ip(i + 10), Port(9999)),
                        Some("return kernel_in_us > 5;"),
                        &schema,
                    )
                    .expect("subscribes");
                }
                (hub, t)
            },
            |(mut hub, t)| {
                std::hint::black_box(hub.publish(t, &schema, &values).expect("publishes"))
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// Ablations called out in DESIGN.md: what each design choice buys.
fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");

    // LPA with vs without scheduling attribution (the Full vs
    // Interactions controller levels).
    g.bench_function("lpa_full_vs_no_sched/full", |b| {
        let mut lpa = Lpa::new(NodeId(0), Ip(0x0A000002), LpaConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            use kprof::Analyzer;
            i += 1;
            let ev = kprof::Event {
                seq: i,
                node: NodeId(0),
                cpu: 0,
                wall: SimTime::from_nanos(i * 1000),
                payload: net_payload(i),
            };
            std::hint::black_box(lpa.on_event(&ev));
        });
    });
    g.bench_function("lpa_full_vs_no_sched/no_sched", |b| {
        let cfg = LpaConfig {
            track_scheduling: false,
            ..LpaConfig::default()
        };
        let mut lpa = Lpa::new(NodeId(0), Ip(0x0A000002), cfg);
        let mut i = 0u64;
        b.iter(|| {
            use kprof::Analyzer;
            i += 1;
            let ev = kprof::Event {
                seq: i,
                node: NodeId(0),
                cpu: 0,
                wall: SimTime::from_nanos(i * 1000),
                payload: net_payload(i),
            };
            std::hint::black_box(lpa.on_event(&ev));
        });
    });

    // Binary records vs a text rendering (the anti-CBE/XML argument).
    let record = InteractionRecord {
        node: NodeId(1),
        flow: FlowKey::new(
            EndPoint::new(Ip(0x0A000001), Port(40000)),
            EndPoint::new(Ip(0x0A000002), Port(2049)),
        ),
        class_port: Port(2049),
        pid: 17,
        start_us: 1_000_000,
        end_us: 1_002_500,
        req_packets: 6,
        req_bytes: 8_400,
        resp_packets: 1,
        resp_bytes: 190,
        kernel_in_us: 700,
        user_us: 120,
        kernel_out_us: 80,
        blocked_us: 1_500,
        blocked_io_us: 1_400,
    };
    let schema = InteractionRecord::schema();
    g.bench_function("encoding/pbio_binary", |b| {
        b.iter(|| {
            let mut w = RecordWriter::new(&schema);
            for v in record.to_values() {
                w.push_value(&v).expect("matches");
            }
            std::hint::black_box(w.finish().expect("complete"))
        });
    });
    g.bench_function("encoding/json_text", |b| {
        b.iter(|| std::hint::black_box(serde_json::to_vec(&record).expect("serializes")));
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_kprof_emit,
    bench_lpa,
    bench_ecode,
    bench_pbio,
    bench_pubsub,
    bench_ablations
);
criterion_main!(benches);
