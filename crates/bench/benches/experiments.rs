//! End-to-end experiment benchmarks: each paper table/figure as one
//! Criterion measurement (wall time of the whole reproduced experiment at
//! reduced duration), so regressions in simulator performance show up in
//! CI. The experiment *results* are produced by the `figures` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::SimDuration;
use simnet::LinkSpec;
use sysprof_apps::rubis::{run_rubis, RubisConfig};
use sysprof_apps::storage::{run_storage, StorageConfig};
use sysprof_apps::{run_iperf, run_linpack};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("e1_linpack_monitored", |b| {
        b.iter(|| std::hint::black_box(run_linpack(true, 1)));
    });

    g.bench_function("e2_iperf_gigabit_monitored_500ms", |b| {
        b.iter(|| {
            std::hint::black_box(run_iperf(
                LinkSpec::gigabit_lan(),
                true,
                SimDuration::from_millis(500),
                1,
            ))
        });
    });

    g.bench_function("f4_storage_4threads_3s", |b| {
        b.iter(|| {
            std::hint::black_box(run_storage(StorageConfig {
                threads_per_client: 4,
                duration: SimDuration::from_secs(3),
                ..StorageConfig::default()
            }))
        });
    });

    g.bench_function("f7_rubis_ra_5s", |b| {
        b.iter(|| {
            std::hint::black_box(run_rubis(RubisConfig {
                resource_aware: true,
                monitored: true,
                duration: SimDuration::from_secs(5),
                ..RubisConfig::default()
            }))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
