//! Criterion scenario suite: whole-simulation wall-clock for each
//! workload scenario in the library, run monitored and fault-free at
//! the shortened (smoke) durations the test matrix uses.
//!
//! The `scenarios` binary drives the same specs and records the
//! committed `BENCH_scenarios.json` baseline; this suite is for
//! statistically careful local comparisons (`cargo bench --bench
//! scenarios`).

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::SimDuration;
use sysprof_apps::{AllreduceScenario, CdnScenario, FanoutScenario, KvStoreScenario, ScenarioSpec};

const SEED: u64 = 7;
const QUICK: SimDuration = SimDuration::from_millis(300);

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenarios");
    g.sample_size(10);
    g.bench_function("kvstore_300ms", |b| {
        b.iter(|| {
            KvStoreScenario {
                duration: QUICK,
                ..KvStoreScenario::default()
            }
            .run(SEED)
        })
    });
    g.bench_function("fanout_300ms", |b| {
        b.iter(|| {
            FanoutScenario {
                duration: QUICK,
                ..FanoutScenario::default()
            }
            .run(SEED)
        })
    });
    g.bench_function("allreduce_3iter", |b| {
        b.iter(|| {
            AllreduceScenario {
                iterations: 3,
                ..AllreduceScenario::default()
            }
            .run(SEED)
        })
    });
    g.bench_function("cdn_300ms", |b| {
        b.iter(|| {
            CdnScenario {
                duration: QUICK,
                ..CdnScenario::default()
            }
            .run(SEED)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
