//! Experiment drivers shared by the `figures` binary and the Criterion
//! benches: one function per paper table/figure, each returning a typed,
//! serializable result.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | E1 | §3.1 linpack overhead | [`exp_e1_linpack`] |
//! | E2 | §3.1 Iperf overhead (1 Gbps and 100 Mbps) | [`exp_e2_iperf`] |
//! | T0 | §3.1 "<1% … >10%" granularity sweep | [`exp_t0_granularity`] |
//! | F4 | Figure 4: proxy user/kernel time vs Iozone threads | [`exp_f4_f5_storage`] |
//! | F5 | Figure 5: back-end kernel time vs Iozone threads | [`exp_f4_f5_storage`] |
//! | F6 | Figure 6: plain DWCS throughput | [`exp_f6_dwcs`] |
//! | F7 | Figure 7: RA-DWCS throughput | [`exp_f7_ra_dwcs`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotpath;

use kprof::EventMask;
use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{LinkSpec, Port};
use simos::WorldBuilder;
use sysprof::{Controller, MonitorConfig, SysProf};
use sysprof_apps::iperf::{IperfClient, IperfServer};
use sysprof_apps::rubis::{run_rubis, RubisConfig, RubisResult};
use sysprof_apps::storage::{run_storage, StorageConfig, StorageResult};
use sysprof_apps::{run_iperf, run_linpack, IperfResult, LinpackResult};

/// E1: linpack with and without SysProf.
#[derive(Debug, Serialize)]
pub struct E1Result {
    /// SysProf disabled.
    pub off: LinpackResult,
    /// SysProf enabled (default configuration).
    pub on: LinpackResult,
}

/// Runs E1.
pub fn exp_e1_linpack(seed: u64) -> E1Result {
    E1Result {
        off: run_linpack(false, seed),
        on: run_linpack(true, seed),
    }
}

/// E2: Iperf at both link speeds, with and without SysProf.
#[derive(Debug, Serialize)]
pub struct E2Result {
    /// 1 Gbps, SysProf off.
    pub gigabit_off: IperfResult,
    /// 1 Gbps, SysProf on.
    pub gigabit_on: IperfResult,
    /// 100 Mbps, SysProf off.
    pub fast_ethernet_off: IperfResult,
    /// 100 Mbps, SysProf on.
    pub fast_ethernet_on: IperfResult,
}

impl E2Result {
    /// Relative goodput reduction at 1 Gbps.
    pub fn gigabit_overhead(&self) -> f64 {
        1.0 - self.gigabit_on.goodput_mbps / self.gigabit_off.goodput_mbps
    }

    /// Relative goodput reduction at 100 Mbps.
    pub fn fast_ethernet_overhead(&self) -> f64 {
        1.0 - self.fast_ethernet_on.goodput_mbps / self.fast_ethernet_off.goodput_mbps
    }
}

/// Runs E2.
pub fn exp_e2_iperf(duration: SimDuration, seed: u64) -> E2Result {
    E2Result {
        gigabit_off: run_iperf(LinkSpec::gigabit_lan(), false, duration, seed),
        gigabit_on: run_iperf(LinkSpec::gigabit_lan(), true, duration, seed),
        fast_ethernet_off: run_iperf(LinkSpec::fast_ethernet(), false, duration, seed),
        fast_ethernet_on: run_iperf(LinkSpec::fast_ethernet(), true, duration, seed),
    }
}

/// One row of the granularity sweep.
#[derive(Debug, Serialize)]
pub struct GranularityRow {
    /// Human-readable configuration name.
    pub level: String,
    /// Receiver goodput under this monitoring level, Mbps.
    pub goodput_mbps: f64,
    /// Monitoring CPU fraction on the receiver.
    pub overhead_fraction: f64,
    /// Events generated on the receiver.
    pub events: u64,
}

/// T0: the controller's selective-enabling knob under Iperf load —
/// reproducing "the overhead of SysProf can be varied ranging from less
/// than 1% of the system resource to more than 10%". Each row enables one
/// more event class through the controller's global gate mask.
pub fn exp_t0_granularity(duration: SimDuration, seed: u64) -> Vec<GranularityRow> {
    let levels = [
        ("off", EventMask::NONE),
        ("scheduling", EventMask::SCHEDULING),
        ("+syscall", EventMask::SCHEDULING | EventMask::SYSCALL),
        (
            "+filesystem",
            EventMask::SCHEDULING | EventMask::SYSCALL | EventMask::FILESYSTEM,
        ),
        ("+network (all)", EventMask::ALL),
    ];
    let mut rows = Vec::new();
    for (name, mask) in levels {
        let mut world = WorldBuilder::new(seed)
            .node("sender")
            .node("receiver")
            .node("gpa")
            .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
            .link(NodeId(0), NodeId(2), LinkSpec::gigabit_lan())
            .link(NodeId(1), NodeId(2), LinkSpec::gigabit_lan())
            .build()
            .expect("topology");
        let _sysprof = SysProf::deploy(
            &mut world,
            &[NodeId(1)],
            NodeId(2),
            MonitorConfig::default(),
        );
        // A raw event subscriber interested in everything, so the sweep
        // measures true per-class event volume (the LPA itself only wants
        // Network + Scheduling).
        world
            .kprof_mut(NodeId(1))
            .register(Box::new(kprof::CountingAnalyzer::new(EventMask::ALL)));
        Controller::new().set_global_mask(&mut world, NodeId(1), mask);

        world.spawn(
            NodeId(1),
            "iperf-server",
            Box::new(IperfServer::new(Port(5001))),
        );
        world.spawn(
            NodeId(0),
            "iperf-client",
            Box::new(IperfClient::new(
                NodeId(1),
                Port(5001),
                64 * 1024,
                8,
                duration,
            )),
        );
        world.run_until(SimTime::ZERO + duration + SimDuration::from_secs(1));

        let stats = world.node_stats(NodeId(1));
        rows.push(GranularityRow {
            level: name.to_owned(),
            goodput_mbps: stats.bytes_received as f64 * 8.0 / duration.as_secs_f64() / 1e6,
            overhead_fraction: stats.cpu.monitor.as_secs_f64() / world.now().as_secs_f64(),
            events: world.kprof(NodeId(1)).stats().events_generated,
        });
    }
    rows
}

/// One row of the Figure 4 / Figure 5 thread sweep.
#[derive(Debug, Serialize)]
pub struct StorageRow {
    /// Iozone threads per client.
    pub threads: usize,
    /// The measured result.
    pub result: StorageResult,
}

/// Runs the F4/F5 sweep over Iozone thread counts.
pub fn exp_f4_f5_storage(duration: SimDuration, seed: u64) -> Vec<StorageRow> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|threads| StorageRow {
            threads,
            result: run_storage(StorageConfig {
                threads_per_client: threads,
                duration,
                seed,
                ..StorageConfig::default()
            }),
        })
        .collect()
}

/// Runs F6 (plain DWCS).
pub fn exp_f6_dwcs(duration: SimDuration, seed: u64) -> RubisResult {
    run_rubis(RubisConfig {
        resource_aware: false,
        monitored: false,
        duration,
        seed,
        ..RubisConfig::default()
    })
}

/// Runs F7 (RA-DWCS; SysProf deployed).
pub fn exp_f7_ra_dwcs(duration: SimDuration, seed: u64) -> RubisResult {
    run_rubis(RubisConfig {
        resource_aware: true,
        monitored: true,
        duration,
        seed,
        ..RubisConfig::default()
    })
}

/// F7's companion measurement: plain DWCS *with* SysProf deployed, to
/// quantify the "<2% application performance decrease" claim.
pub fn exp_monitoring_cost_on_rubis(
    duration: SimDuration,
    seed: u64,
) -> (RubisResult, RubisResult) {
    let unmonitored = run_rubis(RubisConfig {
        resource_aware: false,
        monitored: false,
        duration,
        seed,
        ..RubisConfig::default()
    });
    let monitored = run_rubis(RubisConfig {
        resource_aware: false,
        monitored: true,
        duration,
        seed,
        ..RubisConfig::default()
    });
    (unmonitored, monitored)
}
