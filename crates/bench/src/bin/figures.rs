//! Regenerates every table and figure of the SysProf paper's evaluation
//! (§3) and prints paper-style tables. Results are also written as JSON
//! under `results/`.
//!
//! ```text
//! figures [--exp e1|e2|t0|f4|f5|f6|f7|cost|all] [--quick] [--seed N]
//! ```
//!
//! `--quick` shortens run durations ~4× (for CI); default durations match
//! the experiment configs used in EXPERIMENTS.md.

use std::io::Write;

use simcore::SimDuration;
use sysprof_bench::*;

struct Opts {
    exp: String,
    quick: bool,
    seed: u64,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        exp: "all".to_owned(),
        quick: false,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--exp" => opts.exp = args.next().unwrap_or_else(|| "all".into()),
            "--quick" => opts.quick = true,
            "--seed" => opts.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: figures [--exp e1|e2|t0|f4|f5|f6|f7|cost|all] [--quick] [--seed N]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

fn save_json(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(
            serde_json::to_string_pretty(value)
                .expect("serializes")
                .as_bytes(),
        );
        println!("  -> wrote {}", path.display());
    }
}

fn main() {
    let opts = parse_args();
    let q = |full_s: u64, quick_s: u64| {
        SimDuration::from_secs(if opts.quick { quick_s } else { full_s })
    };
    let want = |id: &str| opts.exp == "all" || opts.exp == id || (id == "f4" && opts.exp == "f5");

    if want("e1") {
        println!("== E1: linpack microbenchmark (§3.1) ==");
        println!("paper: no change in MFLOPS with SysProf enabled");
        let r = exp_e1_linpack(opts.seed);
        println!(
            "  SysProf off: {:>8.1} MFLOPS   (events on node: {})",
            r.off.mflops, r.off.events_generated
        );
        println!(
            "  SysProf on : {:>8.1} MFLOPS   (events on node: {}, overhead {:.3}%)",
            r.on.mflops,
            r.on.events_generated,
            r.on.overhead_fraction * 100.0
        );
        println!(
            "  change: {:+.3}%",
            (r.on.mflops / r.off.mflops - 1.0) * 100.0
        );
        save_json("e1_linpack", &r);
        println!();
    }

    if want("e2") {
        println!("== E2: Iperf bandwidth microbenchmark (§3.1) ==");
        println!("paper: 1 Gbps 930 -> 810 Mbps (~13%); 100 Mbps: ~3%");
        let r = exp_e2_iperf(q(10, 2), opts.seed);
        println!(
            "  1 Gbps  : off {:>6.1} Mbps  on {:>6.1} Mbps  overhead {:>5.1}%  (receiver cpu {:.0}%, monitoring traffic {} B)",
            r.gigabit_off.goodput_mbps,
            r.gigabit_on.goodput_mbps,
            r.gigabit_overhead() * 100.0,
            r.gigabit_off.receiver_cpu_utilization * 100.0,
            r.gigabit_on.monitor_bytes_sent
        );
        println!(
            "  100 Mbps: off {:>6.1} Mbps  on {:>6.1} Mbps  overhead {:>5.1}%",
            r.fast_ethernet_off.goodput_mbps,
            r.fast_ethernet_on.goodput_mbps,
            r.fast_ethernet_overhead() * 100.0
        );
        save_json("e2_iperf", &r);
        println!();
    }

    if want("t0") {
        println!("== T0: monitoring-granularity sweep (§3.1 '<1% … >10%') ==");
        let rows = exp_t0_granularity(q(5, 2), opts.seed);
        println!(
            "  {:<18} {:>10} {:>10} {:>12}",
            "level", "Mbps", "overhead", "events"
        );
        for row in &rows {
            println!(
                "  {:<18} {:>10.1} {:>9.2}% {:>12}",
                row.level,
                row.goodput_mbps,
                row.overhead_fraction * 100.0,
                row.events
            );
        }
        save_json("t0_granularity", &rows);
        println!();
    }

    if want("f4") || want("f5") {
        println!("== Figures 4 & 5: virtual storage service (§3.2) ==");
        println!(
            "paper: proxy user flat, proxy kernel grows; back-end kernel >10x proxy; RTT < 0.3 ms"
        );
        let rows = exp_f4_f5_storage(q(20, 5), opts.seed);
        println!(
            "  {:>7} | {:>14} {:>16} | {:>18} | {:>8} {:>9}",
            "threads", "proxy user ms", "proxy kernel ms", "backend kernel ms", "reqs", "rtt ms"
        );
        for row in &rows {
            let r = &row.result;
            println!(
                "  {:>7} | {:>14.3} {:>16.3} | {:>18.2} | {:>8} {:>9.3}",
                row.threads,
                r.proxy_user_ms,
                r.proxy_kernel_ms,
                r.backend_kernel_ms,
                r.requests_completed,
                r.network_rtt_ms
            );
        }
        save_json("f4_f5_storage", &rows);
        println!();
    }

    if want("f6") {
        println!("== Figure 6: plain DWCS on RUBiS (§3.3) ==");
        println!("paper: bidding avg 145/s, comment avg 134/s of 150/s offered; degradation after mid-run load");
        let r = exp_f6_dwcs(q(60, 20), opts.seed);
        print_rubis("plain DWCS", &r);
        save_json("f6_dwcs", &r);
        println!();
    }

    if want("f7") {
        println!("== Figure 7: RA-DWCS on RUBiS (§3.3) ==");
        println!("paper: bidding class nearly unaffected; >14% aggregate gain over plain DWCS");
        let plain = exp_f6_dwcs(q(60, 20), opts.seed);
        let ra = exp_f7_ra_dwcs(q(60, 20), opts.seed);
        print_rubis("plain DWCS", &plain);
        print_rubis("RA-DWCS", &ra);
        println!(
            "  aggregate gain: {:+.1}%  (plain {:.1} -> RA {:.1} responses/s)",
            (ra.total_rps / plain.total_rps - 1.0) * 100.0,
            plain.total_rps,
            ra.total_rps
        );
        println!(
            "  SysProf overhead on servlet servers: {:.2}%",
            ra.server_overhead_fraction * 100.0
        );
        save_json("f7_ra_dwcs", &ra);
        println!();
    }

    if want("cost") {
        println!("== Monitoring cost on RUBiS (§3.3 '<2%') ==");
        let (off, on) = exp_monitoring_cost_on_rubis(q(60, 20), opts.seed);
        println!(
            "  unmonitored total: {:.1}/s   monitored total: {:.1}/s   decrease {:.2}%",
            off.total_rps,
            on.total_rps,
            (1.0 - on.total_rps / off.total_rps) * 100.0
        );
        println!(
            "  monitoring CPU on servers: {:.2}%",
            on.server_overhead_fraction * 100.0
        );
        save_json("cost_rubis", &(off, on));
        println!();
    }
}

fn print_rubis(name: &str, r: &sysprof_apps::RubisResult) {
    println!(
        "  {:<11} bidding: {:>5.1}/s avg ({:>5.1} before, {:>5.1} after disturbance, {} dropped)",
        name, r.bid.mean_rps, r.bid.first_half_rps, r.bid.second_half_rps, r.bid.dropped
    );
    println!(
        "  {:<11} comment: {:>5.1}/s avg ({:>5.1} before, {:>5.1} after disturbance, {} dropped)",
        "",
        r.comment.mean_rps,
        r.comment.first_half_rps,
        r.comment.second_half_rps,
        r.comment.dropped
    );
}
