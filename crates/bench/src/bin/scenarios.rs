//! Runs every workload scenario in the library end-to-end (monitored,
//! fault-free), times each whole simulation, and writes
//! `BENCH_scenarios.json` at the repo root.
//!
//! ```text
//! scenarios [--smoke] [--seed N] [--out PATH]
//! ```
//!
//! `--smoke` shortens every scenario for CI (`ci.sh` bench smoke); the
//! default run is what the committed baseline was produced with. Besides
//! wall-clock, each entry records the scenario's headline completion
//! count, its tail-latency figure, and the GPA diagnosis verdict — so
//! the baseline doubles as a coarse regression net over attribution.
//! Like the hotpath binary, it re-reads and validates the JSON it wrote.

use std::io::Write as _;
use std::time::Instant;

use serde::Serialize;
use simcore::SimDuration;
use sysprof_apps::{AllreduceScenario, CdnScenario, FanoutScenario, KvStoreScenario, ScenarioSpec};

#[derive(Serialize)]
struct ScenarioEntry {
    scenario: &'static str,
    wall_ms: f64,
    /// Headline throughput counter: ops / requests / iterations completed.
    completed: u64,
    /// Headline tail figure: p95 (kv, cdn), p99 (fanout), or mean
    /// iteration time (allreduce) — all in simulated microseconds.
    tail_us: u64,
    verdict: String,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    mode: &'static str,
    seed: u64,
    scenarios: Vec<ScenarioEntry>,
}

struct Opts {
    smoke: bool,
    seed: u64,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        seed: 7,
        out: "BENCH_scenarios.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--seed" => opts.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(7),
            "--out" => opts.out = args.next().unwrap_or_else(|| "BENCH_scenarios.json".into()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: scenarios [--smoke] [--seed N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn run_one<S: ScenarioSpec>(
    spec: S,
    seed: u64,
    extract: impl Fn(&S::Output) -> (u64, u64),
) -> ScenarioEntry {
    let t = Instant::now();
    let run = spec.run(seed);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let (completed, tail_us) = extract(&run.output);
    let verdict = spec.diagnose(&run).verdict;
    println!(
        "  {:<10} {wall_ms:>7.0} ms  completed={completed:<6} tail={tail_us}µs  {verdict}",
        spec.name()
    );
    ScenarioEntry {
        scenario: spec.name(),
        wall_ms,
        completed,
        tail_us,
        verdict,
    }
}

fn main() {
    let opts = parse_args();
    // Full mode runs the default specs — the same runs the golden
    // diagnosis tests pin — so the committed baseline's verdicts match
    // those tests verbatim. Smoke mode mirrors the quick_* variants the
    // chaos matrix uses.
    let mut kv = KvStoreScenario::default();
    let mut fanout = FanoutScenario::default();
    let mut allreduce = AllreduceScenario::default();
    let mut cdn = CdnScenario::default();
    if opts.smoke {
        let quick = SimDuration::from_millis(300);
        kv.duration = quick;
        fanout.duration = quick;
        allreduce.iterations = 3;
        cdn.duration = quick;
    }

    println!(
        "scenario suite ({} mode, seed {}):",
        if opts.smoke { "smoke" } else { "full" },
        opts.seed
    );
    let scenarios = vec![
        run_one(kv, opts.seed, |o| (o.ops_completed, o.p95_us)),
        run_one(fanout, opts.seed, |o| (o.requests_completed, o.p99_us)),
        run_one(allreduce, opts.seed, |o| {
            (o.iterations_completed, o.mean_iteration_us)
        }),
        run_one(cdn, opts.seed, |o| (o.requests_completed, o.p95_us)),
    ];

    let report = BenchReport {
        bench: "scenarios",
        mode: if opts.smoke { "smoke" } else { "full" },
        seed: opts.seed,
        scenarios,
    };
    let pretty = serde_json::to_string_pretty(&report).expect("serializes");
    let mut f = std::fs::File::create(&opts.out).expect("create output file");
    f.write_all(pretty.as_bytes()).expect("write output file");
    f.write_all(b"\n").expect("write output file");
    drop(f);

    // Validate what we wrote: re-read, parse, and check that every
    // scenario entry carries the keys downstream tooling depends on.
    let back = std::fs::read_to_string(&opts.out).expect("re-read output file");
    let parsed: serde_json::Value = serde_json::from_str(&back).expect("output file is valid JSON");
    for key in ["bench", "mode", "seed", "scenarios"] {
        assert!(
            parsed.get(key).is_some(),
            "{} is missing key {key}",
            opts.out
        );
    }
    let entries = parsed
        .get("scenarios")
        .and_then(|v| v.as_array())
        .expect("scenarios is an array");
    assert_eq!(entries.len(), 4, "one entry per scenario");
    for e in entries {
        for key in ["scenario", "wall_ms", "completed", "tail_us", "verdict"] {
            assert!(e.get(key).is_some(), "scenario entry missing key {key}");
        }
    }
    println!("wrote {}", opts.out);
}
