//! Measures the per-event hot path (emit → dispatch → E-Code VM → PBIO
//! encode → batch seal) plus E1/E2/F6 end-to-end wall-clock, and writes
//! `BENCH_hotpath.json` at the repo root.
//!
//! ```text
//! hotpath [--smoke] [--events N] [--seed N] [--out PATH]
//! ```
//!
//! `--smoke` shortens everything ~10× for CI (`ci.sh bench-smoke`); the
//! default run is what the committed baseline was produced with. The
//! binary re-reads and validates the JSON it wrote, so a malformed file
//! fails the process (and therefore CI).

use std::io::Write as _;
use std::time::Instant;

use serde::Serialize;
use simcore::SimDuration;
use sysprof_bench::hotpath::{
    compile_digest, cpa_eval_instance, pump_cpa, pump_digest, pump_digest_stream, CpaEventStream,
    CpaFingerprint, DigestStream, HotPipeline, HotpathCounters, BASELINE_EVENTS_PER_SEC,
    CPA_EVAL_SET, CPA_RING_EVENTS, DIGEST_GLOBALS,
};
use sysprof_bench::{exp_e1_linpack, exp_e2_iperf, exp_f6_dwcs};

#[derive(Serialize)]
struct EndToEndWallMs {
    e1_linpack: f64,
    e2_iperf: f64,
    f6_dwcs: f64,
}

#[derive(Serialize)]
struct ShardedGpaBench {
    shards: usize,
    records: u64,
    seq_records_per_sec: f64,
    sharded_records_per_sec: f64,
    sharded_vs_seq: f64,
    merged_bit_identical: bool,
}

#[derive(Serialize)]
struct CpaEvalBench {
    /// Events pumped through each program per rep.
    events: u64,
    /// Program names of the representative set, report order.
    programs: Vec<&'static str>,
    /// Committed reference for `compiled_vs_fused` (the ≥2.0× gate).
    baseline_compiled_vs_fused: f64,
    fused_events_per_sec: f64,
    compiled_events_per_sec: f64,
    /// Aggregate speedup over the set: total fused time / total
    /// compiled time (best-of-5 per arm).
    compiled_vs_fused: f64,
    /// Every rep's fingerprint (flags, out() fold, fuel, statics)
    /// matched between tiers.
    bit_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    mode: &'static str,
    seed: u64,
    events: u64,
    events_per_sec: f64,
    ns_per_event: f64,
    baseline_events_per_sec: f64,
    speedup_vs_baseline: f64,
    end_to_end_wall_ms: EndToEndWallMs,
    sharded_gpa: ShardedGpaBench,
    cpa_eval: CpaEvalBench,
    counters: HotpathCounters,
}

/// Committed floor for `cpa_eval.compiled_vs_fused` on the
/// representative CPA set (full mode gates on it; measured full runs
/// land well above).
const CPA_EVAL_BASELINE: f64 = 2.0;

struct Opts {
    smoke: bool,
    events: Option<u64>,
    seed: u64,
    out: String,
    /// Fail unless `speedup_vs_baseline` reaches this floor.
    min_speedup: Option<f64>,
    /// Fail unless `sharded_gpa.sharded_vs_seq` reaches this floor.
    /// Defaults to 1.5 for full runs (the headline number this repo
    /// gates on); smoke runs gate only when asked.
    min_sharded: Option<f64>,
    /// Fail unless `cpa_eval.compiled_vs_fused` reaches this floor.
    /// Defaults to [`CPA_EVAL_BASELINE`] for full runs; smoke runs gate
    /// only when asked.
    min_cpa: Option<f64>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        events: None,
        seed: 42,
        out: "BENCH_hotpath.json".to_owned(),
        min_speedup: None,
        min_sharded: None,
        min_cpa: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--events" => opts.events = args.next().and_then(|s| s.parse().ok()),
            "--seed" => opts.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--out" => opts.out = args.next().unwrap_or_else(|| "BENCH_hotpath.json".into()),
            "--min-speedup" => opts.min_speedup = args.next().and_then(|s| s.parse().ok()),
            "--min-sharded" => opts.min_sharded = args.next().and_then(|s| s.parse().ok()),
            "--min-cpa" => opts.min_cpa = args.next().and_then(|s| s.parse().ok()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: hotpath [--smoke] [--events N] [--seed N] [--out PATH] \
                     [--min-speedup F] [--min-sharded F] [--min-cpa F]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.min_sharded.is_none() && !opts.smoke {
        opts.min_sharded = Some(1.5);
    }
    if opts.min_cpa.is_none() && !opts.smoke {
        opts.min_cpa = Some(CPA_EVAL_BASELINE);
    }
    opts
}

fn main() {
    let opts = parse_args();
    let events = opts
        .events
        .unwrap_or(if opts.smoke { 400_000 } else { 4_000_000 });

    // Warm up a throwaway pipeline (fills allocator pools, JITs nothing —
    // this is Rust — but stabilizes caches), then measure a fresh one.
    let mut warm = HotPipeline::new();
    warm.pump(events / 10);

    let mut pipe = HotPipeline::new();
    let t0 = Instant::now();
    pipe.pump(events);
    let elapsed = t0.elapsed();
    let counters = pipe.counters();
    let events_per_sec = events as f64 / elapsed.as_secs_f64();
    let ns_per_event = elapsed.as_nanos() as f64 / events as f64;

    println!(
        "hot path: {events} events in {:.3} s -> {:.0} events/sec ({:.1} ns/event)",
        elapsed.as_secs_f64(),
        events_per_sec,
        ns_per_event
    );
    println!(
        "  vs committed baseline {BASELINE_EVENTS_PER_SEC:.0} events/sec: {:.2}x",
        events_per_sec / BASELINE_EVENTS_PER_SEC
    );

    // End-to-end wall-clock: the paper experiments, timed as whole
    // simulations (simulated durations fixed per mode, so the simulated
    // results are seed-deterministic while wall-clock tracks our speed).
    let wall = |label: &str, f: &dyn Fn()| {
        let t = Instant::now();
        f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("  e2e {label}: {ms:.0} ms");
        ms
    };
    let seed = opts.seed;
    let e1_ms = wall("e1_linpack", &|| {
        let _ = exp_e1_linpack(seed);
    });
    let e2_dur = SimDuration::from_millis(if opts.smoke { 200 } else { 2_000 });
    let e2_ms = wall("e2_iperf", &|| {
        let _ = exp_e2_iperf(e2_dur, seed);
    });
    let f6_dur = SimDuration::from_secs(if opts.smoke { 2 } else { 20 });
    let f6_ms = wall("f6_dwcs", &|| {
        let _ = exp_f6_dwcs(f6_dur, seed);
    });

    // Sharded-GPA digest: one pre-generated record stream (flow keys +
    // raw rows) fed to a 1-replica digest and an 8-replica parallel
    // digest plane through the identical `ingest_raw` entry point. Both
    // timed arms end with the merge barrier, so the sharded arm pays
    // its flush + drain + fold inside the measurement. The correctness
    // claim (merged statics bit-identical to sequential) is asserted,
    // not trusted. A cross-check against the full GPA ingest path keeps
    // the direct arms honest about what they feed the digest.
    let digest_records = events / 4;
    let shards = 8usize;
    let stream = DigestStream::generate(digest_records);

    // Warm both engines once (thread spawn, allocator pools) before the
    // timed arms.
    let mut warm = compile_digest(shards);
    pump_digest_stream(&mut warm, &DigestStream::generate(digest_records / 10));
    drop(warm);

    // Best of five timed repetitions per arm: a single ~50 ms sample
    // on a shared box is hostage to scheduler mood, and the fastest rep
    // is the least-perturbed measurement of the engine itself. The arms
    // alternate so slow drift (thermal, co-tenants) lands on both
    // equally. Every rep starts from a fresh engine, and every rep's
    // fold must be bit-identical to the previous ones — repetition for
    // variance must not hide nondeterminism.
    let mut seq_s = f64::INFINITY;
    let mut sharded_s = f64::INFINITY;
    let mut seq_globals: Vec<i64> = Vec::new();
    let mut sharded_globals: Vec<i64> = Vec::new();
    for _ in 0..5 {
        let mut seq_digest = compile_digest(1);
        let t = Instant::now();
        let g = pump_digest_stream(&mut seq_digest, &stream);
        seq_s = seq_s.min(t.elapsed().as_secs_f64());
        assert!(
            seq_globals.is_empty() || seq_globals == g,
            "sequential digest replay diverged"
        );
        seq_globals = g;

        let mut sharded_digest = compile_digest(shards);
        let t = Instant::now();
        let g = pump_digest_stream(&mut sharded_digest, &stream);
        sharded_s = sharded_s.min(t.elapsed().as_secs_f64());
        assert!(
            sharded_globals.is_empty() || sharded_globals == g,
            "sharded digest replay diverged"
        );
        sharded_globals = g;
        let stats = sharded_digest.stats();
        assert!(stats.sharded && stats.shards == shards, "{stats:?}");
        assert_eq!(stats.events, digest_records, "{stats:?}");
    }

    let merged_bit_identical = seq_globals == sharded_globals;
    assert!(
        merged_bit_identical,
        "sharded digest fold diverged from sequential evaluation"
    );

    // Cross-check: the GPA-level ingest path (records through
    // `Gpa::ingest_record`) folds to the same statics the direct arms
    // produced, on a slice of the stream.
    let gpa = pump_digest(shards, digest_records.min(100_000));
    let gpa_seq = pump_digest(1, digest_records.min(100_000));
    for name in DIGEST_GLOBALS {
        assert_eq!(
            gpa.digest_global(name),
            gpa_seq.digest_global(name),
            "GPA ingest path diverged on {name}"
        );
    }

    let sharded_gpa = ShardedGpaBench {
        shards,
        records: digest_records,
        seq_records_per_sec: digest_records as f64 / seq_s,
        sharded_records_per_sec: digest_records as f64 / sharded_s,
        sharded_vs_seq: seq_s / sharded_s,
        merged_bit_identical,
    };
    println!(
        "  sharded gpa: {digest_records} records, seq {:.0}/s vs {shards}-shard {:.0}/s ({:.2}x), merged bit-identical",
        sharded_gpa.seq_records_per_sec, sharded_gpa.sharded_records_per_sec, sharded_gpa.sharded_vs_seq
    );
    if let Some(floor) = opts.min_sharded {
        assert!(
            sharded_gpa.sharded_vs_seq >= floor,
            "sharded digest speedup {:.2}x is below the {floor:.2}x floor",
            sharded_gpa.sharded_vs_seq
        );
    }
    if let Some(floor) = opts.min_speedup {
        assert!(
            events_per_sec / BASELINE_EVENTS_PER_SEC >= floor,
            "hot-path speedup {:.2}x vs baseline is below the {floor:.2}x floor",
            events_per_sec / BASELINE_EVENTS_PER_SEC
        );
    }

    // Compiled-tier CPA evaluation: the representative CPA set run on
    // the fused VM and on the closure-compiled tier over identical
    // event windows. Instance creation (which includes the jit
    // lowering) and event-row synthesis both stay outside the timer —
    // installs are rare, rows come off the ring pre-formed, runs are
    // the hot path. The window is ring-buffer sized and replayed to
    // cover the event budget: the deployment drains a bounded
    // cache-resident ring in place, and a one-shot multi-hundred-MB
    // array would floor both tiers at DRAM bandwidth instead of
    // measuring evaluation. Best-of-5 alternating reps per arm; every
    // rep's fingerprint (flags, out() fold, fuel, statics) must match
    // across tiers *and* across reps — repetition for variance must
    // not hide nondeterminism.
    let ring_events = CPA_RING_EVENTS.min(events / 2).max(1);
    let cpa_reps = (events / 2 / ring_events).max(1);
    let cpa_events = ring_events * cpa_reps;
    let cpa_stream = CpaEventStream::generate(0, ring_events);
    let run_set = |tier: ecode::ExecTier| -> (f64, Vec<CpaFingerprint>) {
        let mut total = 0.0;
        let mut fps = Vec::new();
        for (_, src) in CPA_EVAL_SET {
            let (mut inst, fuel) = cpa_eval_instance(src, tier);
            let t = Instant::now();
            let fp = pump_cpa(&mut inst, &cpa_stream, fuel, cpa_reps);
            total += t.elapsed().as_secs_f64();
            fps.push(fp);
        }
        (total, fps)
    };
    // Warm both tiers once before the timed reps.
    let _ = run_set(ecode::ExecTier::Fused);
    let _ = run_set(ecode::ExecTier::Compiled);
    let mut fused_s = f64::INFINITY;
    let mut compiled_s = f64::INFINITY;
    let mut pinned: Option<Vec<CpaFingerprint>> = None;
    for _ in 0..5 {
        let (fs, ffp) = run_set(ecode::ExecTier::Fused);
        let (cs, cfp) = run_set(ecode::ExecTier::Compiled);
        assert_eq!(ffp, cfp, "compiled tier fingerprint diverged from fused");
        if let Some(p) = &pinned {
            assert_eq!(p, &ffp, "cpa_eval replay diverged across reps");
        }
        pinned = Some(ffp);
        fused_s = fused_s.min(fs);
        compiled_s = compiled_s.min(cs);
    }
    let set_events = cpa_events * CPA_EVAL_SET.len() as u64;
    let cpa_eval = CpaEvalBench {
        events: cpa_events,
        programs: CPA_EVAL_SET.iter().map(|(name, _)| *name).collect(),
        baseline_compiled_vs_fused: CPA_EVAL_BASELINE,
        fused_events_per_sec: set_events as f64 / fused_s,
        compiled_events_per_sec: set_events as f64 / compiled_s,
        compiled_vs_fused: fused_s / compiled_s,
        bit_identical: true, // asserted above; a divergence aborts the run
    };
    println!(
        "  cpa eval: {} events x {} programs, fused {:.0}/s vs compiled {:.0}/s ({:.2}x), bit-identical",
        cpa_eval.events,
        CPA_EVAL_SET.len(),
        cpa_eval.fused_events_per_sec,
        cpa_eval.compiled_events_per_sec,
        cpa_eval.compiled_vs_fused
    );
    if let Some(floor) = opts.min_cpa {
        assert!(
            cpa_eval.compiled_vs_fused >= floor,
            "compiled-tier speedup {:.2}x over fused is below the {floor:.2}x floor",
            cpa_eval.compiled_vs_fused
        );
    }

    let report = BenchReport {
        bench: "hotpath",
        mode: if opts.smoke { "smoke" } else { "full" },
        seed: opts.seed,
        events,
        events_per_sec,
        ns_per_event,
        baseline_events_per_sec: BASELINE_EVENTS_PER_SEC,
        speedup_vs_baseline: events_per_sec / BASELINE_EVENTS_PER_SEC,
        end_to_end_wall_ms: EndToEndWallMs {
            e1_linpack: e1_ms,
            e2_iperf: e2_ms,
            f6_dwcs: f6_ms,
        },
        sharded_gpa,
        cpa_eval,
        counters,
    };
    let pretty = serde_json::to_string_pretty(&report).expect("serializes");
    let mut f = std::fs::File::create(&opts.out).expect("create output file");
    f.write_all(pretty.as_bytes()).expect("write output file");
    f.write_all(b"\n").expect("write output file");
    drop(f);

    // Validate what we wrote: re-read, parse, and check the keys CI (and
    // future PRs comparing against the baseline) depend on.
    let back = std::fs::read_to_string(&opts.out).expect("re-read output file");
    let parsed: serde_json::Value = serde_json::from_str(&back).expect("output file is valid JSON");
    for key in [
        "events_per_sec",
        "baseline_events_per_sec",
        "speedup_vs_baseline",
        "sharded_gpa",
        "cpa_eval",
        "counters",
    ] {
        assert!(
            parsed.get(key).is_some(),
            "{} is missing key {key}",
            opts.out
        );
    }
    println!("wrote {}", opts.out);
}
