//! Measures the per-event hot path (emit → dispatch → E-Code VM → PBIO
//! encode → batch seal) plus E1/E2/F6 end-to-end wall-clock, and writes
//! `BENCH_hotpath.json` at the repo root.
//!
//! ```text
//! hotpath [--smoke] [--events N] [--seed N] [--out PATH]
//! ```
//!
//! `--smoke` shortens everything ~10× for CI (`ci.sh bench-smoke`); the
//! default run is what the committed baseline was produced with. The
//! binary re-reads and validates the JSON it wrote, so a malformed file
//! fails the process (and therefore CI).

use std::io::Write as _;
use std::time::Instant;

use serde::Serialize;
use simcore::SimDuration;
use sysprof_bench::hotpath::{
    pump_digest, HotPipeline, HotpathCounters, BASELINE_EVENTS_PER_SEC, DIGEST_GLOBALS,
};
use sysprof_bench::{exp_e1_linpack, exp_e2_iperf, exp_f6_dwcs};

#[derive(Serialize)]
struct EndToEndWallMs {
    e1_linpack: f64,
    e2_iperf: f64,
    f6_dwcs: f64,
}

#[derive(Serialize)]
struct ShardedGpaBench {
    shards: usize,
    records: u64,
    seq_records_per_sec: f64,
    sharded_records_per_sec: f64,
    sharded_vs_seq: f64,
    merged_bit_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    mode: &'static str,
    seed: u64,
    events: u64,
    events_per_sec: f64,
    ns_per_event: f64,
    baseline_events_per_sec: f64,
    speedup_vs_baseline: f64,
    end_to_end_wall_ms: EndToEndWallMs,
    sharded_gpa: ShardedGpaBench,
    counters: HotpathCounters,
}

struct Opts {
    smoke: bool,
    events: Option<u64>,
    seed: u64,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        events: None,
        seed: 42,
        out: "BENCH_hotpath.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--events" => opts.events = args.next().and_then(|s| s.parse().ok()),
            "--seed" => opts.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--out" => opts.out = args.next().unwrap_or_else(|| "BENCH_hotpath.json".into()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: hotpath [--smoke] [--events N] [--seed N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let events = opts
        .events
        .unwrap_or(if opts.smoke { 400_000 } else { 4_000_000 });

    // Warm up a throwaway pipeline (fills allocator pools, JITs nothing —
    // this is Rust — but stabilizes caches), then measure a fresh one.
    let mut warm = HotPipeline::new();
    warm.pump(events / 10);

    let mut pipe = HotPipeline::new();
    let t0 = Instant::now();
    pipe.pump(events);
    let elapsed = t0.elapsed();
    let counters = pipe.counters();
    let events_per_sec = events as f64 / elapsed.as_secs_f64();
    let ns_per_event = elapsed.as_nanos() as f64 / events as f64;

    println!(
        "hot path: {events} events in {:.3} s -> {:.0} events/sec ({:.1} ns/event)",
        elapsed.as_secs_f64(),
        events_per_sec,
        ns_per_event
    );
    println!(
        "  vs committed baseline {BASELINE_EVENTS_PER_SEC:.0} events/sec: {:.2}x",
        events_per_sec / BASELINE_EVENTS_PER_SEC
    );

    // End-to-end wall-clock: the paper experiments, timed as whole
    // simulations (simulated durations fixed per mode, so the simulated
    // results are seed-deterministic while wall-clock tracks our speed).
    let wall = |label: &str, f: &dyn Fn()| {
        let t = Instant::now();
        f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("  e2e {label}: {ms:.0} ms");
        ms
    };
    let seed = opts.seed;
    let e1_ms = wall("e1_linpack", &|| {
        let _ = exp_e1_linpack(seed);
    });
    let e2_dur = SimDuration::from_millis(if opts.smoke { 200 } else { 2_000 });
    let e2_ms = wall("e2_iperf", &|| {
        let _ = exp_e2_iperf(e2_dur, seed);
    });
    let f6_dur = SimDuration::from_secs(if opts.smoke { 2 } else { 20 });
    let f6_ms = wall("f6_dwcs", &|| {
        let _ = exp_f6_dwcs(f6_dur, seed);
    });

    // Sharded-GPA digest: the same record stream through a 1-replica
    // and an 8-replica digest GPA. Single-threaded, so "sharded" mostly
    // measures the dispatch + fold overhead the shard-safety analysis
    // buys its parallelizability with; the correctness claim (merged
    // statics bit-identical to sequential) is asserted, not trusted.
    let digest_records = events / 8;
    let shards = 8usize;
    let t = Instant::now();
    let seq_gpa = pump_digest(1, digest_records);
    let seq_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let sharded_gpa_run = pump_digest(shards, digest_records);
    let sharded_s = t.elapsed().as_secs_f64();
    let merged_bit_identical = DIGEST_GLOBALS
        .iter()
        .all(|name| seq_gpa.digest_global(name) == sharded_gpa_run.digest_global(name));
    assert!(
        merged_bit_identical,
        "sharded digest fold diverged from sequential evaluation"
    );
    let stats = sharded_gpa_run.digest_stats().expect("digest installed");
    assert!(stats.sharded && stats.shards == shards, "{stats:?}");
    let sharded_gpa = ShardedGpaBench {
        shards,
        records: digest_records,
        seq_records_per_sec: digest_records as f64 / seq_s,
        sharded_records_per_sec: digest_records as f64 / sharded_s,
        sharded_vs_seq: seq_s / sharded_s,
        merged_bit_identical,
    };
    println!(
        "  sharded gpa: {digest_records} records, seq {:.0}/s vs {shards}-shard {:.0}/s ({:.2}x), merged bit-identical",
        sharded_gpa.seq_records_per_sec, sharded_gpa.sharded_records_per_sec, sharded_gpa.sharded_vs_seq
    );

    let report = BenchReport {
        bench: "hotpath",
        mode: if opts.smoke { "smoke" } else { "full" },
        seed: opts.seed,
        events,
        events_per_sec,
        ns_per_event,
        baseline_events_per_sec: BASELINE_EVENTS_PER_SEC,
        speedup_vs_baseline: events_per_sec / BASELINE_EVENTS_PER_SEC,
        end_to_end_wall_ms: EndToEndWallMs {
            e1_linpack: e1_ms,
            e2_iperf: e2_ms,
            f6_dwcs: f6_ms,
        },
        sharded_gpa,
        counters,
    };
    let pretty = serde_json::to_string_pretty(&report).expect("serializes");
    let mut f = std::fs::File::create(&opts.out).expect("create output file");
    f.write_all(pretty.as_bytes()).expect("write output file");
    f.write_all(b"\n").expect("write output file");
    drop(f);

    // Validate what we wrote: re-read, parse, and check the keys CI (and
    // future PRs comparing against the baseline) depend on.
    let back = std::fs::read_to_string(&opts.out).expect("re-read output file");
    let parsed: serde_json::Value = serde_json::from_str(&back).expect("output file is valid JSON");
    for key in [
        "events_per_sec",
        "baseline_events_per_sec",
        "speedup_vs_baseline",
        "sharded_gpa",
        "counters",
    ] {
        assert!(
            parsed.get(key).is_some(),
            "{} is missing key {key}",
            opts.out
        );
    }
    println!("wrote {}", opts.out);
}
