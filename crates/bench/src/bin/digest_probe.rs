//! Micro-probe for the digest plane's cost components. Not part of CI;
//! a scratch tool for tuning the sharded digest (see `hotpath` for the
//! tracked numbers).

use std::time::Instant;

use sysprof_bench::hotpath::{compile_digest, pump_digest_stream, DigestStream};

/// Total (voluntary, involuntary) context switches across all threads.
fn ctx_switches() -> (u64, u64) {
    let mut v = 0;
    let mut iv = 0;
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for t in tasks.flatten() {
            if let Ok(s) = std::fs::read_to_string(t.path().join("status")) {
                for line in s.lines() {
                    let num = || {
                        line.split_whitespace()
                            .nth(1)
                            .and_then(|x| x.parse::<u64>().ok())
                            .unwrap_or(0)
                    };
                    if line.starts_with("voluntary_ctxt_switches") {
                        v += num();
                    } else if line.starts_with("nonvoluntary_ctxt_switches") {
                        iv += num();
                    }
                }
            }
        }
    }
    (v, iv)
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let stream = DigestStream::generate(n);

    // Hash-only loop: how much of the budget is FNV-1a + dispatch math.
    let t = Instant::now();
    let mut acc = 0u64;
    for &k in &stream.keys {
        acc = acc.wrapping_add(k.wrapping_mul(0x100000001b3));
    }
    println!(
        "key loop: {:.1} ns/rec (acc {acc})",
        t.elapsed().as_nanos() as f64 / n as f64
    );

    for shards in [1usize, 8] {
        let mut d = compile_digest(shards);
        pump_digest_stream(&mut d, &DigestStream::generate(n / 10));
        let mut d = compile_digest(shards);
        let c0 = ctx_switches();
        let t = Instant::now();
        let g = pump_digest_stream(&mut d, &stream);
        let el = t.elapsed();
        let c1 = ctx_switches();
        println!(
            "shards={shards}: {:.1} ns/rec ({:.2}M rec/s), ctxsw +{}/+{}, globals {g:?}",
            el.as_nanos() as f64 / n as f64,
            n as f64 / el.as_secs_f64() / 1e6,
            c1.0 - c0.0,
            c1.1 - c0.1,
        );
    }

    // Raw vectorized evaluator: upper bound on worker-side throughput.
    {
        use ecode::{BatchEval, Instance, VerifyLimits};
        use sysprof_bench::hotpath::DIGEST_PROGRAM;
        let schema = sysprof::InteractionRecord::schema();
        let inputs: Vec<(&str, ecode::Type)> = schema
            .fields()
            .iter()
            .map(|f| (f.name.as_str(), ecode::Type::Int))
            .collect();
        let verified = ecode::verify(
            DIGEST_PROGRAM,
            &inputs,
            &VerifyLimits::with_max_fuel(10_000),
        )
        .unwrap();
        let (program, report) = verified.into_parts();
        let mut be = BatchEval::try_compile(&program, &report.merge_plan, 10_000)
            .expect("digest program vectorizes");
        let mut inst = Instance::new(&program);
        let rows = 1024usize;
        let used = program.used_inputs();
        let cols_data: Vec<Vec<i64>> = (0..18)
            .map(|c| {
                if used[c] {
                    (0..rows).map(|r| ((r * 37 + c) % 1000) as i64).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let cols: Vec<&[i64]> = cols_data.iter().map(|c| c.as_slice()).collect();
        let iters = (n as usize / rows).max(1);
        let t = Instant::now();
        let mut fuel = 0u64;
        for _ in 0..iters {
            fuel += be.run(&mut inst, &cols, rows);
        }
        let el = t.elapsed();
        println!(
            "raw BatchEval: {:.1} ns/rec (fuel {fuel})",
            el.as_nanos() as f64 / (iters * rows) as f64
        );
    }

    // Channel-free coordinator simulation: hash + dispatch + column
    // pushes into 8 shard builders, recycling in place of sending.
    {
        struct Fake {
            cols: [Vec<i64>; 4],
            rows: usize,
        }
        let mut builders: Vec<Fake> = (0..8)
            .map(|_| Fake {
                cols: std::array::from_fn(|_| Vec::with_capacity(1024)),
                rows: 0,
            })
            .collect();
        let fields = [8usize, 10, 12, 13];
        let mut shard_ids: Vec<u8> = Vec::new();
        let mut sunk = 0u64;
        let t = Instant::now();
        for (keys, rows) in stream
            .keys
            .chunks(4096)
            .zip(stream.rows.chunks(4096 * DigestStream::STRIDE))
        {
            shard_ids.clear();
            shard_ids.extend(keys.iter().map(|&k| {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in k.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                (h % 8) as u8
            }));
            let mut off = 0;
            for &s in &shard_ids {
                let row = &rows[off..off + DigestStream::STRIDE];
                off += DigestStream::STRIDE;
                let b = &mut builders[s as usize];
                for (c, &f) in b.cols.iter_mut().zip(&fields) {
                    c.push(row[f]);
                }
                b.rows += 1;
                if b.rows >= 1024 {
                    for c in &mut b.cols {
                        sunk += c.iter().sum::<i64>() as u64;
                        c.clear();
                    }
                    b.rows = 0;
                }
            }
        }
        println!(
            "coordinator sim: {:.1} ns/rec (sunk {sunk})",
            t.elapsed().as_nanos() as f64 / n as f64
        );
    }

    // Split ingest vs barrier, across batch sizes.
    use pubsub::digest::{DigestConfig, ShardedDigest};
    use sysprof::InteractionRecord;
    use sysprof_bench::hotpath::DIGEST_PROGRAM;
    for flush_rows in [1024usize, 2048, 4096, 8192, 16384] {
        let compile = || {
            ShardedDigest::compile_with(
                DIGEST_PROGRAM,
                &InteractionRecord::schema(),
                8,
                DigestConfig { flush_rows },
            )
            .unwrap()
        };
        let chunk = 4096usize;
        let pump = |d: &mut ShardedDigest, s: &DigestStream| {
            for (keys, rows) in s
                .keys
                .chunks(chunk)
                .zip(s.rows.chunks(chunk * DigestStream::STRIDE))
            {
                d.ingest_raw_rows(keys, rows);
            }
        };
        let mut d = compile();
        pump(&mut d, &DigestStream::generate(n / 10));
        let _ = d.merged();
        let mut d = compile();
        let c0 = ctx_switches();
        let t = Instant::now();
        pump(&mut d, &stream);
        let ingest = t.elapsed();
        let t = Instant::now();
        let m = d.merged().unwrap();
        let barrier = t.elapsed();
        let c1 = ctx_switches();
        println!(
            "flush_rows={flush_rows}: ingest {:.1} ns/rec, barrier {:.1} ns/rec, ctxsw +{}/+{} ({} total ms), count={:?}",
            ingest.as_nanos() as f64 / n as f64,
            barrier.as_nanos() as f64 / n as f64,
            c1.0 - c0.0,
            c1.1 - c0.1,
            (ingest + barrier).as_millis(),
            m.global("requests"),
        );
    }
}
