//! The isolated per-event hot path: emit → mask/predicate dispatch →
//! E-Code VM → PBIO encode → sealed batch, without the discrete-event
//! scheduler around it.
//!
//! Both the Criterion suite (`benches/hotpath.rs`) and the `hotpath`
//! binary (which writes `BENCH_hotpath.json` at the repo root) drive this
//! exact pipeline, so the committed throughput numbers and the tracked
//! bench measure the same code. The pipeline is fully deterministic: every
//! event is derived from the loop counter, so the counters it returns are
//! a fingerprint that must not change when the hot path is optimized.

use kprof::{CountingAnalyzer, EventMask, EventPayload, FileId, Kprof, NetPoint, Pid, Predicate};
use pubsub::reliable::{encode_batch, ResendBuffer, ResendConfig};
use pubsub::Hub;
use serde::Serialize;
use simcore::{NodeId, SimTime};
use simnet::{EndPoint, FlowKey, Ip, PacketId, Port};
use sysprof::{CpaAnalyzer, Gpa, GpaConfig, InteractionRecord};

/// Reference throughput of the hot path (events/sec, release mode),
/// refreshed on the current container hardware after the compiled
/// E-Code tier landed (full 4M-event runs measure 30–34M events/sec;
/// this is the conservative end). The `hotpath` binary reports current
/// throughput relative to this number, and CI's smoke run enforces a
/// floor against it so a silent regression fails instead of drifting
/// into stale documentation. History: the pre-optimization seed
/// measured 11.6–12.7M events/sec; the parallel digest plane brought
/// it to 24–28M on the same hardware.
pub const BASELINE_EVENTS_PER_SEC: f64 = 30_000_000.0;

/// The E-Code program the pipeline's CPA runs on every matching event.
const CPA_PROGRAM: &str = r#"
    static int n = 0;
    static double acc = 0.0;
    n = n + 1;
    acc = acc + size;
    if (size > 800 && port_dst == 80) {
        out(0, acc / n);
        return 1;
    }
    return 0;
"#;

/// The E-Code data filter installed on the pipeline's subscriber.
const SUB_FILTER: &str = "return resp_bytes > 150;";

/// The digest program the sharded-GPA bench evaluates over every
/// interaction record. One static per shard-safe lattice class the
/// merge analysis admits: two counters, a max-fold, and a gated
/// counter, so the fold exercises every hot branch of `merge_from`.
pub const DIGEST_PROGRAM: &str = "
    static int requests = 0;
    static int bytes = 0;
    static int worst_us = 0;
    static int big_resp = 0;
    requests = requests + 1;
    bytes = bytes + req_bytes + resp_bytes;
    worst_us = max(worst_us, end_us - start_us);
    if (resp_bytes > 150) { big_resp = big_resp + 1; }
    return requests;
";

/// Statics the digest bench compares between sequential and sharded
/// evaluation (must match `DIGEST_PROGRAM`'s declarations).
pub const DIGEST_GLOBALS: [&str; 4] = ["requests", "bytes", "worst_us", "big_resp"];

/// The synthetic interaction record `i` — the same record the pipeline
/// seals every `EVENTS_PER_RECORD` events, exposed so the sharded-GPA
/// bench replays an identical stream.
pub fn synth_record(i: u64) -> InteractionRecord {
    InteractionRecord {
        node: NodeId(0),
        flow: FlowKey::new(
            EndPoint::new(Ip(1), Port(5000 + (i % 16) as u16)),
            EndPoint::new(Ip(2), Port(80)),
        ),
        class_port: Port(80),
        pid: 1 + (i % 4) as u32,
        start_us: i,
        end_us: i + 350,
        req_packets: 3,
        req_bytes: 2_400,
        resp_packets: 1,
        resp_bytes: 100 + (i % 3) * 60,
        kernel_in_us: 120,
        user_us: 80,
        kernel_out_us: 40,
        blocked_us: 0,
        blocked_io_us: 0,
    }
}

/// Builds a GPA with [`DIGEST_PROGRAM`] installed across `shards`
/// replicas and pumps `n` synthetic records through its ingest path.
pub fn pump_digest(shards: usize, n: u64) -> Gpa {
    let mut gpa = Gpa::new(GpaConfig::default());
    gpa.install_digest(DIGEST_PROGRAM, shards)
        .expect("static digest verifies");
    for i in 0..n {
        gpa.ingest_record(&synth_record(i));
    }
    gpa
}

/// A pre-generated digest input stream: per-record flow keys and raw
/// rows ([`InteractionRecord::to_raw_row`] form, stride
/// [`DigestStream::STRIDE`]), so the timed digest loop measures
/// ingestion and evaluation — not synthetic record generation.
pub struct DigestStream {
    /// Flow partition key of record `i` (`flow_shard_key`).
    pub keys: Vec<u64>,
    /// Raw rows, `STRIDE` values per record, back to back.
    pub rows: Vec<i64>,
}

impl DigestStream {
    /// Values per raw row: one per interaction schema field.
    pub const STRIDE: usize = 18;

    /// Pre-generates the first `n` [`synth_record`]s in raw-row form.
    pub fn generate(n: u64) -> DigestStream {
        let mut keys = Vec::with_capacity(n as usize);
        let mut rows = Vec::with_capacity(n as usize * Self::STRIDE);
        let mut row = Vec::with_capacity(Self::STRIDE);
        for i in 0..n {
            let rec = synth_record(i);
            rec.to_raw_row(&mut row);
            debug_assert_eq!(row.len(), Self::STRIDE);
            keys.push(sysprof::flow_shard_key(&rec));
            rows.extend_from_slice(&row);
        }
        DigestStream { keys, rows }
    }

    /// Number of records in the stream.
    pub fn len(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Whether the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Compiles [`DIGEST_PROGRAM`] against the interaction schema for
/// `shards` replicas — the digest the timed arms below ingest into.
pub fn compile_digest(shards: usize) -> pubsub::digest::ShardedDigest {
    pubsub::digest::ShardedDigest::compile(DIGEST_PROGRAM, &InteractionRecord::schema(), shards)
        .expect("static digest verifies")
}

/// Records per `ingest_raw_rows` call in the digest bench arms — the
/// "wire delivery" granularity both arms share.
pub const DIGEST_CHUNK: usize = 4096;

/// The timed body of one digest bench arm: ingests every record of the
/// stream in [`DIGEST_CHUNK`]-sized row batches and runs the merge
/// barrier, so a sharded digest pays its flush + drain + fold inside
/// the measurement, exactly as a report boundary would. Returns the
/// merged statics' raw bits (used to assert sequential/sharded
/// bit-identity without trusting either arm).
pub fn pump_digest_stream(
    digest: &mut pubsub::digest::ShardedDigest,
    stream: &DigestStream,
) -> Vec<i64> {
    for (keys, rows) in stream
        .keys
        .chunks(DIGEST_CHUNK)
        .zip(stream.rows.chunks(DIGEST_CHUNK * DigestStream::STRIDE))
    {
        digest.ingest_raw_rows(keys, rows);
    }
    digest
        .merged()
        .expect("digest statics fold")
        .raw_globals()
        .to_vec()
}

/// E-Code input signature of a CPA — the same names, order, and types
/// `CpaAnalyzer` marshals events into (see `core::cpa::EVENT_INPUTS`),
/// so `cpa_eval` measures exactly the program shapes the event hot path
/// runs.
pub const CPA_EVENT_INPUTS: [(&str, ecode::Type); 7] = [
    ("kind", ecode::Type::Int),
    ("pid", ecode::Type::Int),
    ("wall", ecode::Type::Int),
    ("size", ecode::Type::Int),
    ("aux", ecode::Type::Int),
    ("port_src", ecode::Type::Int),
    ("port_dst", ecode::Type::Int),
];

/// The representative CPA set the `cpa_eval` bench arm measures: the
/// hotpath pipeline's own ratio CPA, a gated counter with a
/// short-circuit guard, and a min/max latency fold — one per hot
/// analyzer idiom, all within the default `CompileBudget`.
pub const CPA_EVAL_SET: [(&str, &str); 3] = [
    ("ratio", CPA_PROGRAM),
    (
        "gated_counter",
        r#"
        static int seen = 0;
        static int nfs = 0;
        static int big = 0;
        seen = seen + 1;
        if (port_dst == 2049 && size > 1000) {
            nfs = nfs + 1;
            big = max(big, size);
        }
        return nfs > 0 && seen % 100 == 0;
    "#,
    ),
    (
        "latency_minmax",
        r#"
        static int events = 0;
        static int lo = 9223372036854775807;
        static int hi = 0;
        static int span = 0;
        events = events + 1;
        lo = min(lo, wall);
        hi = max(hi, wall);
        span = hi - lo;
        if (events % 1000 == 0) { out(1, span); }
        return 0;
    "#,
    ),
];

/// The deterministic raw event row `i` the `cpa_eval` arm feeds every
/// program of [`CPA_EVAL_SET`] ([`CPA_EVENT_INPUTS`] order). Mixes
/// matching and non-matching sizes/ports so guards branch both ways.
pub fn cpa_event_row(i: u64) -> [i64; 7] {
    let i = i as i64;
    [
        (i % 4) + 1,                        // kind
        1 + (i >> 3) % 4,                   // pid
        i * 7 % 1_000_003,                  // wall
        200 + (i % 8) * 180,                // size
        i % 11,                             // aux
        5000 + (i % 16),                    // port_src
        if i % 3 == 0 { 2049 } else { 80 }, // port_dst
    ]
}

/// Behavior fingerprint of a CPA run: everything the host can observe,
/// folded. Two tiers replaying the same event window must produce
/// **equal** fingerprints — the `cpa_eval` arm asserts it every rep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpaFingerprint {
    /// Events the program flagged (nonzero return).
    pub flagged: u64,
    /// Wrapping fold of every `out(slot, value)` publication's raw bits.
    pub out_fold: i64,
    /// Total fuel the metered runs reported.
    pub fuel: u64,
    /// The statics' raw bits after the window.
    pub globals: Vec<i64>,
}

/// Events per `cpa_eval` ring window — sized like the deployment's
/// per-CPU event ring (a few hundred KB, cache-resident), which the
/// timed loop replays to cover the event budget. See [`pump_cpa`].
pub const CPA_RING_EVENTS: u64 = 8192;

/// A pre-generated CPA event window: [`cpa_event_row`]s back to back,
/// stride [`CpaEventStream::STRIDE`]. The timed `cpa_eval` loop replays
/// it, so both tier arms measure program evaluation — not the integer
/// multiply/mod synthesis inside [`cpa_event_row`].
pub struct CpaEventStream {
    rows: Vec<i64>,
}

impl CpaEventStream {
    /// Values per event row (the [`CPA_EVENT_INPUTS`] arity).
    pub const STRIDE: usize = 7;

    /// Pre-generates rows for events `[from, from + n)`.
    pub fn generate(from: u64, n: u64) -> CpaEventStream {
        let mut rows = Vec::with_capacity(n as usize * Self::STRIDE);
        for i in from..from + n {
            rows.extend_from_slice(&cpa_event_row(i));
        }
        CpaEventStream { rows }
    }

    /// Number of events in the stream.
    pub fn len(&self) -> u64 {
        (self.rows.len() / Self::STRIDE) as u64
    }

    /// Whether the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Pumps the pre-generated window through a CPA instance `reps` times
/// (via the batch ingest entry, `run_raw_batch` — the call shape the
/// columnar hot path uses) and returns the fingerprint of the whole
/// replay. The window models the deployment's ring buffer: a bounded,
/// cache-resident slab the consumer drains in place, so the timed loop
/// measures program evaluation rather than DRAM streaming over a
/// one-shot giant array (which floors both tiers at memory bandwidth
/// and says nothing about the VM). Statics persist across reps —
/// counters keep counting, exactly as a long-lived CPA would over a
/// live ring. The caller picks the tier at instance creation
/// (`Instance::new` vs `Instance::new_fused`); this loop is tier-blind
/// — it is the timed body of both `cpa_eval` arms.
pub fn pump_cpa(
    inst: &mut ecode::Instance,
    stream: &CpaEventStream,
    fuel: u64,
    reps: u64,
) -> CpaFingerprint {
    let mut fp = CpaFingerprint {
        flagged: 0,
        out_fold: 0,
        fuel: 0,
        globals: Vec::new(),
    };
    for _ in 0..reps {
        inst.run_raw_batch(&stream.rows, fuel, |out| {
            if out.ret != 0 {
                fp.flagged += 1;
            }
            fp.fuel += out.fuel_used;
            for &(slot, v) in out.outputs {
                fp.out_fold = fp
                    .out_fold
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(slot ^ v.to_bits() as i64);
            }
        })
        .expect("representative CPAs never trap");
    }
    fp.globals = inst.raw_globals().to_vec();
    fp
}

/// Compiles one [`CPA_EVAL_SET`] program and returns the instance for
/// the requested tier plus its proven fuel bound. Panics if tier
/// selection doesn't match the request — a representative CPA that
/// stopped compiling would silently turn the bench into fused-vs-fused.
pub fn cpa_eval_instance(src: &str, tier: ecode::ExecTier) -> (ecode::Instance, u64) {
    let program = ecode::Program::compile(src, &CPA_EVENT_INPUTS).expect("static CPA compiles");
    let fuel = program.static_fuel_bound();
    let inst = match tier {
        ecode::ExecTier::Compiled => ecode::Instance::new(&program),
        ecode::ExecTier::Fused => ecode::Instance::new_fused(&program),
    };
    assert_eq!(inst.tier(), tier, "tier selection changed for:\n{src}");
    (inst, fuel)
}

/// How many emitted events make one published record / sealed batch.
const EVENTS_PER_RECORD: u64 = 64;

/// Deterministic counters the pipeline accumulates — a fingerprint of
/// observable behavior. Optimizations must leave these bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct HotpathCounters {
    /// Events pushed through `Kprof::emit`.
    pub events_emitted: u64,
    /// Analyzer deliveries (`KprofStats::events_delivered`).
    pub events_delivered: u64,
    /// Predicate rejections (`KprofStats::predicate_rejections`).
    pub predicate_rejections: u64,
    /// Suppressed (disabled-hook) emissions.
    pub events_suppressed: u64,
    /// Total simulated monitoring overhead, ns.
    pub overhead_ns: u64,
    /// Events the CPA flagged (nonzero program return).
    pub cpa_flagged: u64,
    /// Records the subscription filter suppressed.
    pub records_filtered: u64,
    /// Wire bytes sealed into batches (including retransmits).
    pub bytes_sealed: u64,
}

/// The emit→dispatch→VM→encode pipeline, assembled once and pumped with
/// synthetic events.
pub struct HotPipeline {
    kprof: Kprof,
    cpa_id: kprof::AnalyzerId,
    hub: Hub,
    topic: pubsub::TopicId,
    schema: pbio::Schema,
    resend: ResendBuffer,
    subscriber: EndPoint,
    next_seq: u64,
    emitted: u64,
    bytes_sealed: u64,
    /// Reusable raw-row scratch for the vectorized publish path.
    raw_row: Vec<i64>,
}

impl HotPipeline {
    /// Builds the pipeline: a Kprof with a scheduling-class counting
    /// analyzer and a pid-filtered network CPA, plus a pub/sub hub with
    /// one filtered subscriber feeding a reliable resend buffer.
    pub fn new() -> HotPipeline {
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
        let cpa = CpaAnalyzer::compile("hotpath-cpa", CPA_PROGRAM, EventMask::NETWORK)
            .expect("static program verifies")
            .with_predicate(Predicate::new().pids([Pid(1), Pid(2), Pid(3)]));
        let cpa_id = kprof.register(Box::new(cpa));

        let mut hub = Hub::new();
        let topic = hub.topic(sysprof::INTERACTION_TOPIC);
        let schema = InteractionRecord::schema();
        let subscriber = EndPoint::new(Ip(9), Port(9999));
        hub.subscribe_with_schema(topic, subscriber, Some(SUB_FILTER), &schema)
            .expect("static filter verifies");

        HotPipeline {
            kprof,
            cpa_id,
            hub,
            topic,
            schema,
            resend: ResendBuffer::new(ResendConfig::default()),
            subscriber,
            next_seq: 0,
            emitted: 0,
            bytes_sealed: 0,
            raw_row: Vec::new(),
        }
    }

    fn payload_for(i: u64) -> EventPayload {
        // Cycles through pids 1..=4 across record windows; the CPA's
        // predicate admits 1..=3, so pid 4 exercises the rejection path.
        let pid = Pid(1 + ((i >> 3) % 4) as u32);
        match i % 8 {
            0 | 4 => EventPayload::Net {
                point: NetPoint::RxNic,
                flow: FlowKey::new(
                    EndPoint::new(Ip(1), Port(5000 + (i % 16) as u16)),
                    EndPoint::new(Ip(2), Port(80)),
                ),
                packet: PacketId(i),
                size: 200 + (i % 8) as u32 * 180,
                pid: Some(pid),
                arm: None,
            },
            1 | 5 => EventPayload::ProcessWake { pid },
            2 => EventPayload::Net {
                point: NetPoint::TxFromUser,
                flow: FlowKey::new(
                    EndPoint::new(Ip(2), Port(80)),
                    EndPoint::new(Ip(1), Port(5000 + (i % 16) as u16)),
                ),
                packet: PacketId(i),
                size: 1200,
                pid: Some(pid),
                arm: None,
            },
            3 => EventPayload::ContextSwitch {
                from: Some(pid),
                to: Some(Pid(1 + ((i + 1) % 4) as u32)),
            },
            // No FILESYSTEM subscriber: these exercise the suppressed
            // (disabled-hook) path.
            _ => EventPayload::FileRead {
                pid,
                file: FileId(3),
                bytes: 4096,
            },
        }
    }

    fn record_for(&self, i: u64) -> InteractionRecord {
        synth_record(i)
    }

    /// Emits `n` more events through the full pipeline.
    pub fn pump(&mut self, n: u64) {
        for _ in 0..n {
            let i = self.emitted;
            self.emitted += 1;
            let ev = self.kprof.make_event(
                SimTime::from_micros(i),
                (i % 2) as u16,
                Self::payload_for(i),
            );
            let _ = self.kprof.emit(&ev);

            if i % EVENTS_PER_RECORD == EVENTS_PER_RECORD - 1 {
                self.seal_record(i);
            }
        }
    }

    /// Publishes one record, seals the resulting wire bytes into a
    /// sequenced batch, and exercises the resend buffer (push, periodic
    /// NACK-style retransmit, cumulative ack).
    fn seal_record(&mut self, i: u64) {
        let record = self.record_for(i);
        let now = SimTime::from_micros(i);
        // Raw-row publish (vectorized PBIO encode): byte-identical to
        // `publish` with `to_values()`, so the counters fingerprint —
        // bytes_sealed included — is unchanged.
        record.to_raw_row(&mut self.raw_row);
        let sends = self
            .hub
            .publish_raw(self.topic, &self.schema, &self.raw_row)
            .expect("record matches schema");
        for (_, wire) in sends {
            self.next_seq += 1;
            let seq = self.next_seq;
            let batch = encode_batch(seq, &wire);
            self.bytes_sealed += batch.len() as u64;
            self.resend.push(now, seq, batch);
        }
        // Every 16th record: retransmit the last couple of batches (the
        // NACK path) and then ack everything but the tail.
        if i % (16 * EVENTS_PER_RECORD) == 16 * EVENTS_PER_RECORD - 1 && self.next_seq >= 2 {
            for (_, wire) in self
                .resend
                .retransmit_range(now, self.next_seq - 1, self.next_seq)
            {
                self.bytes_sealed += wire.len() as u64;
            }
            self.resend.ack_upto(self.next_seq.saturating_sub(2));
        }
    }

    /// The deterministic fingerprint accumulated so far.
    pub fn counters(&self) -> HotpathCounters {
        let stats = *self.kprof.stats();
        let (_, filtered) = self
            .hub
            .delivery_stats(self.topic, self.subscriber)
            .unwrap_or((0, 0));
        let flagged = self
            .kprof
            .analyzer_as::<CpaAnalyzer>(self.cpa_id)
            .map(|c| c.flagged())
            .unwrap_or(0);
        HotpathCounters {
            events_emitted: self.emitted,
            events_delivered: stats.events_delivered,
            predicate_rejections: stats.predicate_rejections,
            events_suppressed: stats.events_suppressed,
            overhead_ns: stats.total_overhead.as_nanos(),
            cpa_flagged: flagged,
            records_filtered: filtered,
            bytes_sealed: self.bytes_sealed,
        }
    }
}

impl Default for HotPipeline {
    fn default() -> Self {
        HotPipeline::new()
    }
}
