//! Machine-readable report rendering (`--json`).
//!
//! The analyzer is deliberately dependency-free, so the JSON is emitted
//! by hand. The schema is part of the tool's contract — CI artifact
//! consumers parse it — and is pinned byte-for-byte by a golden test
//! (`tests/json_golden.rs`):
//!
//! ```json
//! {
//!   "files_scanned": 1,
//!   "summary": { "findings": 2, "waived": 1, "blocking": 1, "unused_waivers": 1 },
//!   "findings": [ { "severity": "...", "code": "...", "file": "...", "line": 1,
//!                   "message": "...", "rationale": "...", "fix": "...",
//!                   "waived_by": null, "excerpt": null } ],
//!   "unused_waivers": [ { "rule": "...", "file": "...", "context": null,
//!                         "justification": "...", "defined_at": 1 } ]
//! }
//! ```
//!
//! Keys appear in exactly that order; `findings` keeps the report's
//! (file, line) ordering. Adding a key is a schema change and must
//! update the golden test.

use crate::Report;

/// Escapes `s` as the contents of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn opt_string(out: &mut String, s: Option<&str>) {
    match s {
        Some(s) => string(out, s),
        None => out.push_str("null"),
    }
}

/// Renders the full report as pretty-printed JSON (two-space indent,
/// trailing newline).
pub fn render(report: &Report) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    o.push_str(&format!(
        "  \"summary\": {{ \"findings\": {}, \"waived\": {}, \"blocking\": {}, \"unused_waivers\": {} }},\n",
        report.diagnostics.len(),
        report.waived_count(),
        report.blocking().count(),
        report.unused_waivers.len(),
    ));

    o.push_str("  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        o.push_str(if i == 0 { "\n" } else { ",\n" });
        o.push_str("    {\n");
        o.push_str(&format!("      \"severity\": \"{}\",\n", d.severity));
        o.push_str(&format!("      \"code\": \"{}\",\n", d.code));
        o.push_str("      \"file\": ");
        string(&mut o, &d.file.to_string_lossy());
        o.push_str(",\n");
        o.push_str(&format!("      \"line\": {},\n", d.line));
        o.push_str("      \"message\": ");
        string(&mut o, &d.message);
        o.push_str(",\n      \"rationale\": ");
        string(&mut o, d.rationale);
        o.push_str(",\n      \"fix\": ");
        string(&mut o, d.fix);
        o.push_str(",\n      \"waived_by\": ");
        opt_string(&mut o, d.waived_by.as_deref());
        o.push_str(",\n      \"excerpt\": ");
        opt_string(&mut o, d.excerpt.as_deref());
        o.push_str("\n    }");
    }
    o.push_str(if report.diagnostics.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    o.push_str("  \"unused_waivers\": [");
    for (i, w) in report.unused_waivers.iter().enumerate() {
        o.push_str(if i == 0 { "\n" } else { ",\n" });
        o.push_str("    { \"rule\": ");
        string(&mut o, &w.rule);
        o.push_str(", \"file\": ");
        string(&mut o, &w.file);
        o.push_str(", \"context\": ");
        opt_string(&mut o, w.context.as_deref());
        o.push_str(", \"justification\": ");
        string(&mut o, &w.justification);
        o.push_str(&format!(", \"defined_at\": {} }}", w.defined_at));
    }
    o.push_str(if report.unused_waivers.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    o.push_str("}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let r = Report {
            diagnostics: Vec::new(),
            unused_waivers: Vec::new(),
            files_scanned: 0,
        };
        let j = render(&r);
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"unused_waivers\": []"));
    }
}
