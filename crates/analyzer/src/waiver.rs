//! `analyzer.toml` waivers.
//!
//! A waiver silences one rule at one site and must say *why* the site
//! is sound despite the rule. The parser is a deliberate TOML subset —
//! `[[waiver]]` array-of-tables with `key = "string"` entries and `#`
//! comments — so the analyzer stays dependency-free. Anything outside
//! the subset is a configuration error (exit code 2), not a silent
//! skip: a typoed waiver that silently matched nothing would let a real
//! finding through... or keep one suppressed.
//!
//! ```toml
//! [[waiver]]
//! rule = "D0004"                              # required
//! file = "crates/kprof/tests/zero_alloc.rs"   # required, path suffix match
//! context = "AtomicU64"                       # optional, substring of the flagged line
//! justification = "allocation counter for the zero-alloc regression test"  # required, non-empty
//! ```

use crate::diag::Diagnostic;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    /// Suffix-matched against the workspace-relative path.
    pub file: String,
    /// If set, must be a substring of the flagged source line.
    pub context: Option<String>,
    pub justification: String,
    /// 1-based line in analyzer.toml, for error messages.
    pub defined_at: u32,
}

impl Waiver {
    /// Whether this waiver covers `d` (whose captured excerpt is used
    /// for the `context` check).
    pub fn covers(&self, d: &Diagnostic) -> bool {
        self.rule == d.code
            && d.file.to_string_lossy().ends_with(&self.file)
            && self
                .context
                .as_ref()
                .is_none_or(|c| d.excerpt.as_ref().is_some_and(|line| line.contains(c)))
    }

    /// Short label recorded on waived diagnostics.
    pub fn label(&self) -> String {
        format!("analyzer.toml:{}: {}", self.defined_at, self.justification)
    }
}

/// A configuration error: malformed file, unknown key, or a waiver
/// missing its justification.
#[derive(Debug, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analyzer.toml:{}: {}", self.line, self.message)
    }
}

/// A `[[waiver]]` table mid-parse: every key optional until the table
/// closes, at which point the required ones are checked.
#[derive(Default)]
struct Draft {
    rule: Option<String>,
    file: Option<String>,
    context: Option<String>,
    justification: Option<String>,
    defined_at: u32,
}

impl Draft {
    fn finish(self) -> Result<Waiver, ConfigError> {
        let at = self.defined_at;
        let missing = |k: &str| ConfigError {
            line: at,
            message: format!("waiver is missing required key `{k}`"),
        };
        let justification = self.justification.ok_or_else(|| missing("justification"))?;
        if justification.trim().is_empty() {
            return Err(ConfigError {
                line: at,
                message: "waiver justification must not be empty — say why the \
                          site is sound despite the rule"
                    .into(),
            });
        }
        Ok(Waiver {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            file: self.file.ok_or_else(|| missing("file"))?,
            context: self.context,
            justification,
            defined_at: at,
        })
    }
}

/// Parses the waiver list from `analyzer.toml` text.
pub fn parse(text: &str) -> Result<Vec<Waiver>, ConfigError> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut cur: Option<Draft> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(done) = cur.take() {
                waivers.push(done.finish()?);
            }
            cur = Some(Draft {
                defined_at: lineno,
                ..Draft::default()
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError {
                line: lineno,
                message: format!("unknown table `{line}` (only [[waiver]] is supported)"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = parse_string(value.trim()).ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("value for `{key}` must be a double-quoted string"),
        })?;
        let Some(slots) = cur.as_mut() else {
            return Err(ConfigError {
                line: lineno,
                message: format!("`{key}` outside a [[waiver]] table"),
            });
        };
        let slot = match key {
            "rule" => &mut slots.rule,
            "file" => &mut slots.file,
            "context" => &mut slots.context,
            "justification" => &mut slots.justification,
            _ => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!(
                        "unknown key `{key}` (expected rule/file/context/justification)"
                    ),
                })
            }
        };
        if slot.replace(value).is_some() {
            return Err(ConfigError {
                line: lineno,
                message: format!("duplicate key `{key}` in waiver"),
            });
        }
    }
    if let Some(done) = cur.take() {
        waivers.push(done.finish()?);
    }
    Ok(waivers)
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a double-quoted TOML basic string (supporting `\"` and `\\`).
fn parse_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_waivers_with_comments() {
        let text = r#"
# global comment
[[waiver]]
rule = "D0004"  # trailing comment
file = "crates/kprof/tests/zero_alloc.rs"
context = "AtomicU64"
justification = "allocation counter"

[[waiver]]
rule = "D0002"
file = "crates/simos/src/socket.rs"
justification = "min key includes the id, so the minimum is unique"
"#;
        let ws = parse(text).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, "D0004");
        assert_eq!(ws[0].context.as_deref(), Some("AtomicU64"));
        assert_eq!(ws[1].context, None);
        assert_eq!(ws[1].defined_at, 9);
    }

    #[test]
    fn empty_justification_is_a_config_error() {
        let text = "[[waiver]]\nrule = \"D0001\"\nfile = \"x.rs\"\njustification = \"  \"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("justification must not be empty"));
    }

    #[test]
    fn missing_justification_is_a_config_error() {
        let text = "[[waiver]]\nrule = \"D0001\"\nfile = \"x.rs\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("missing required key `justification`"));
    }

    #[test]
    fn unknown_key_is_a_config_error() {
        let text = "[[waiver]]\nrule = \"D0001\"\nfiel = \"x.rs\"\njustification = \"j\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("unknown key `fiel`"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text =
            "[[waiver]]\nrule = \"D0002\"\nfile = \"x.rs\"\njustification = \"see issue #42\"\n";
        let ws = parse(text).unwrap();
        assert_eq!(ws[0].justification, "see issue #42");
    }
}
