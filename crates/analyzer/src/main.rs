//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p sysprof-analyzer             # analyze ., waivers from ./analyzer.toml
//! cargo run -p sysprof-analyzer -- --root DIR [--config FILE] [--quiet] [--json] \
//!                                  [--allow-stale-waivers]
//! ```
//!
//! Exit codes: 0 clean (all findings waived), 1 unwaived findings,
//! 2 configuration or I/O error — including *stale* waivers (entries
//! that matched no finding), unless `--allow-stale-waivers` is passed.
//! `ci.sh` treats nonzero as a hard failure. `--json` emits the
//! machine-readable report (schema pinned in `tests/json_golden.rs`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;
    let mut json = false;
    let mut allow_stale = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--quiet" | "-q" => quiet = true,
            "--json" => json = true,
            "--allow-stale-waivers" => allow_stale = true,
            "--help" | "-h" => {
                println!(
                    "sysprof-analyzer [--root DIR] [--config FILE] [--quiet] [--json] \
                     [--allow-stale-waivers]\n\
                     Static determinism (D-rules) and unsafe-hygiene (U-rules) pass.\n\
                     Exit: 0 clean, 1 unwaived findings, 2 config/I-O error.\n\
                     Stale (unmatched) waivers exit 2 unless --allow-stale-waivers."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config.unwrap_or_else(|| root.join("analyzer.toml"));
    let waivers = match std::fs::read_to_string(&config_path) {
        Ok(text) => match sysprof_analyzer::waiver::parse(&text) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        // No waiver file is a valid (stricter) configuration.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("error: reading {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match sysprof_analyzer::analyze_workspace(&root, &waivers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let code = sysprof_analyzer::gate(&report, allow_stale);

    if json {
        print!("{}", sysprof_analyzer::json::render(&report));
        return ExitCode::from(code);
    }

    let blocking: Vec<_> = report.blocking().collect();
    if !quiet {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
    } else {
        for d in &blocking {
            println!("{d}");
        }
    }
    for w in &report.unused_waivers {
        let verdict = if allow_stale {
            "allowed by --allow-stale-waivers"
        } else {
            "hard failure; remove or fix it"
        };
        println!(
            "error: stale waiver analyzer.toml:{} ({} @ {}) matched nothing — {verdict}",
            w.defined_at, w.rule, w.file
        );
    }

    println!(
        "analyzer: {} files scanned, {} findings ({} waived), {} unwaived, {} stale waivers",
        report.files_scanned,
        report.diagnostics.len(),
        report.waived_count(),
        blocking.len(),
        report.unused_waivers.len(),
    );
    ExitCode::from(code)
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "error: {err}\nusage: sysprof-analyzer [--root DIR] [--config FILE] [--quiet] \
         [--json] [--allow-stale-waivers]"
    );
    ExitCode::from(2)
}
