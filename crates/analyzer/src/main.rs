//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p sysprof-analyzer             # analyze ., waivers from ./analyzer.toml
//! cargo run -p sysprof-analyzer -- --root DIR [--config FILE] [--quiet]
//! ```
//!
//! Exit codes: 0 clean (all findings waived), 1 unwaived findings,
//! 2 configuration or I/O error. `ci.sh` treats nonzero as a hard
//! failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "sysprof-analyzer [--root DIR] [--config FILE] [--quiet]\n\
                     Static determinism (D-rules) and unsafe-hygiene (U-rules) pass.\n\
                     Exit: 0 clean, 1 unwaived findings, 2 config/I-O error."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config.unwrap_or_else(|| root.join("analyzer.toml"));
    let waivers = match std::fs::read_to_string(&config_path) {
        Ok(text) => match sysprof_analyzer::waiver::parse(&text) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        // No waiver file is a valid (stricter) configuration.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("error: reading {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match sysprof_analyzer::analyze_workspace(&root, &waivers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let blocking: Vec<_> = report.blocking().collect();
    if !quiet {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
        for w in &report.unused_waivers {
            println!(
                "warning: unused waiver analyzer.toml:{} ({} @ {}) — remove or fix it\n",
                w.defined_at, w.rule, w.file
            );
        }
    } else {
        for d in &blocking {
            println!("{d}");
        }
    }

    println!(
        "analyzer: {} files scanned, {} findings ({} waived), {} unwaived",
        report.files_scanned,
        report.diagnostics.len(),
        report.waived_count(),
        blocking.len()
    );
    if blocking.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}\nusage: sysprof-analyzer [--root DIR] [--config FILE] [--quiet]");
    ExitCode::from(2)
}
