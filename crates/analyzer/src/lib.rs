//! sysprof-analyzer: workspace determinism and unsafe-code hygiene.
//!
//! The reproduction's headline property is that a scenario seed fully
//! determines every trace, dump, and wire byte. That property is easy
//! to lose one innocuous line at a time — a `HashMap` iterated into a
//! report here, an `Instant::now()` there — and such regressions are
//! invisible to `cargo test` until two runs happen to disagree. This
//! crate makes the property checkable: a token-level static pass over
//! the whole workspace with a small rule catalog, run by `ci.sh` as a
//! hard gate.
//!
//! Rule catalog (see [`rules`] for the heuristics):
//!
//! | code  | guards against |
//! |-------|----------------|
//! | D0001 | wall-clock time sources outside bench/CLI code |
//! | D0002 | hash-ordered iteration observable in output/wire/scheduling |
//! | D0003 | OS entropy bypassing the seeded `SimRng` streams |
//! | D0004 | real threads/atomics outside the simulation model |
//! | D0005 | `Instant::now()`/`SystemTime::now()` calls anywhere (no path exemption) |
//! | U0001 | `unsafe` without an adjacent `// SAFETY:` comment |
//! | U0002 | raw-pointer arithmetic outside the E-Code VM |
//!
//! Findings are fixed, not silenced; the rare genuinely-sound site is
//! waived in `analyzer.toml` with a written justification ([`waiver`]).
//! A waiver that no longer matches anything is itself a hard failure
//! (see [`gate`]): stale waivers are standing permission for a class of
//! finding nobody is looking at.
#![forbid(unsafe_code)]

pub mod diag;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod waiver;

use std::io;
use std::path::Path;

use diag::Diagnostic;
use waiver::Waiver;

/// The outcome of analyzing a workspace.
#[derive(Debug)]
pub struct Report {
    /// Every finding, waived ones included, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Waivers that matched nothing — stale config worth cleaning up.
    pub unused_waivers: Vec<Waiver>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the CI gate (errors without a waiver).
    pub fn blocking(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_blocking())
    }

    pub fn waived_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.waived_by.is_some())
            .count()
    }
}

/// Maps a report to the CLI exit code.
///
/// Stale waivers (entries in `analyzer.toml` that matched no finding)
/// are a *configuration* failure — exit 2, same class as a malformed
/// waiver file — unless `allow_stale_waivers` is set. A stale waiver is
/// standing permission for a finding class at a site that no longer
/// exhibits it; left in place, it will silently absorb the next,
/// possibly unrelated, finding that appears there. The escape hatch
/// exists for transitional states (a waived file mid-rename), not as a
/// mode to run CI in.
pub fn gate(report: &Report, allow_stale_waivers: bool) -> u8 {
    if !allow_stale_waivers && !report.unused_waivers.is_empty() {
        return 2;
    }
    if report.blocking().next().is_some() {
        1
    } else {
        0
    }
}

/// Analyzes a single file's source text (workspace-relative `rel` path
/// decides path-based rule exemptions). Excerpts are captured; waivers
/// are applied by the caller.
pub fn analyze_source(rel: &Path, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut diags = rules::run_all(rel, &lexed, src);
    for d in &mut diags {
        d.excerpt = lines
            .get(d.line.saturating_sub(1) as usize)
            .map(|l| l.to_string());
    }
    diags
}

/// Runs the full pass: discover sources under `root`, analyze each,
/// then apply `waivers` (first matching waiver wins per finding).
pub fn analyze_workspace(root: &Path, waivers: &[Waiver]) -> io::Result<Report> {
    let files = scan::rust_sources(root)?;
    let files_scanned = files.len();
    let mut diagnostics = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        diagnostics.extend(analyze_source(rel, &src));
    }
    let mut used = vec![false; waivers.len()];
    for d in &mut diagnostics {
        if let Some((i, w)) = waivers.iter().enumerate().find(|(_, w)| w.covers(d)) {
            d.waived_by = Some(w.label());
            used[i] = true;
        }
    }
    let unused_waivers = waivers
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(w, _)| w.clone())
        .collect();
    Ok(Report {
        diagnostics,
        unused_waivers,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn analyze_source_captures_excerpts() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let diags = analyze_source(&PathBuf::from("crates/x/src/lib.rs"), src);
        // The wall-clock call trips the type rule and the call rule.
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].code, "D0001");
        assert_eq!(diags[1].code, "D0005");
        for d in &diags {
            assert_eq!(d.excerpt.as_deref(), Some("    let t = Instant::now();"));
        }
    }

    #[test]
    fn waiver_application_marks_used_and_unused() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let dir = std::env::temp_dir().join("analyzer-lib-test");
        let crate_dir = dir.join("src");
        std::fs::create_dir_all(&crate_dir).unwrap();
        std::fs::write(crate_dir.join("lib.rs"), src).unwrap();
        let waivers = vec![
            Waiver {
                rule: "D0001".into(),
                file: "src/lib.rs".into(),
                context: Some("Instant::now".into()),
                justification: "test".into(),
                defined_at: 1,
            },
            Waiver {
                rule: "D0005".into(),
                file: "src/lib.rs".into(),
                context: Some("Instant::now".into()),
                justification: "test".into(),
                defined_at: 3,
            },
            Waiver {
                rule: "D0003".into(),
                file: "nope.rs".into(),
                context: None,
                justification: "stale".into(),
                defined_at: 5,
            },
        ];
        let report = analyze_workspace(&dir, &waivers).unwrap();
        assert_eq!(report.blocking().count(), 0);
        assert_eq!(report.waived_count(), 2);
        assert_eq!(report.unused_waivers.len(), 1);
        assert_eq!(report.unused_waivers[0].rule, "D0003");
        // The stale D0003 waiver is a hard failure unless allowed.
        assert_eq!(gate(&report, false), 2);
        assert_eq!(gate(&report, true), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_orders_stale_config_above_findings() {
        let mk = |blocking: bool, stale: bool| {
            let mut d =
                diag::Diagnostic::error("D0001", PathBuf::from("x.rs"), 1, "m".into(), "r", "f");
            if !blocking {
                d.waived_by = Some("w".into());
            }
            Report {
                diagnostics: vec![d],
                unused_waivers: if stale {
                    vec![Waiver {
                        rule: "D0001".into(),
                        file: "gone.rs".into(),
                        context: None,
                        justification: "j".into(),
                        defined_at: 1,
                    }]
                } else {
                    Vec::new()
                },
                files_scanned: 1,
            }
        };
        assert_eq!(gate(&mk(false, false), false), 0);
        assert_eq!(gate(&mk(true, false), false), 1);
        assert_eq!(gate(&mk(false, true), false), 2);
        assert_eq!(gate(&mk(true, true), false), 2);
        assert_eq!(gate(&mk(true, true), true), 1);
    }
}
