//! Workspace file discovery.
//!
//! Walks the repository for `.rs` sources, skipping build output,
//! version control, the offline dependency shims (stand-ins for
//! third-party crates, not workspace code), and the analyzer's own
//! rule-violation fixtures. Paths come back sorted so diagnostics are
//! emitted in a stable order regardless of directory-entry order.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names skipped anywhere in the tree.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "node_modules"];

/// Workspace-relative path prefixes skipped (deliberate rule
/// violations used by the analyzer's own golden tests).
const SKIP_PREFIXES: &[&str] = &["crates/analyzer/tests/fixtures"];

/// Returns all analyzable `.rs` files under `root`, workspace-relative,
/// sorted.
pub fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(root.join(rel))?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel_child = rel.join(name);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel_child.to_string_lossy().as_ref() == *p)
            {
                continue;
            }
            walk(root, &rel_child, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_child);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_sources_and_skips_fixtures() {
        // The crate lives at crates/analyzer; the workspace root is two
        // levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_sources(&root).unwrap();
        assert!(files.iter().any(|f| f.ends_with("src/lib.rs")));
        assert!(files
            .iter()
            .any(|f| f.to_string_lossy().contains("crates/core/src/lpa.rs")));
        assert!(!files.iter().any(|f| {
            let s = f.to_string_lossy();
            s.contains("fixtures") || s.contains("target/") || s.contains("shims/")
        }));
        // Sorted.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
