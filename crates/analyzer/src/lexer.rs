//! A small Rust lexer: just enough to walk real workspace sources
//! without being fooled by strings or comments.
//!
//! The analyzer has no `syn` available (offline build), so rules work
//! on a token stream of identifiers and punctuation with line numbers.
//! String and character literals are dropped entirely (their content
//! must never trigger a rule); comments are dropped from the token
//! stream but collected separately so the `U0001` rule can look for
//! adjacent `// SAFETY:` comments.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `iter`, `HashMap`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `<`, `(`, ...).
    Punct(char),
    /// Integer/float literal (content irrelevant to the rules).
    Number,
    /// String, raw-string, char, or byte literal (content dropped).
    Literal,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

/// A comment plus the 1-based line it starts on. Block comments produce
/// one entry per line they cover so adjacency checks stay line-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<SpannedTok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any comment on `line` (or a block comment covering it)
    /// contains `needle`.
    pub fn comment_on_line_contains(&self, line: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line == line && c.text.contains(needle))
    }
}

/// Lexes Rust source. Unterminated constructs simply end at EOF — the
/// workspace compiles, so malformed input only occurs in fixtures.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Consumes up to and including index `end`, counting newlines.
    macro_rules! advance_to {
        ($end:expr) => {{
            while i < $end {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                let mut end = i;
                while end < b.len() && b[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..end].to_string(),
                });
                advance_to!(end);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment (nesting respected); one Comment entry
                // per covered line.
                let mut depth = 1usize;
                let mut end = i + 2;
                while end < b.len() && depth > 0 {
                    if b[end] == b'/' && b.get(end + 1) == Some(&b'*') {
                        depth += 1;
                        end += 2;
                    } else if b[end] == b'*' && b.get(end + 1) == Some(&b'/') {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                for (k, part) in src[i..end].lines().enumerate() {
                    out.comments.push(Comment {
                        line: line + k as u32,
                        text: part.to_string(),
                    });
                }
                advance_to!(end);
            }
            b'"' => {
                let end = scan_string(b, i);
                out.toks.push(SpannedTok {
                    tok: Tok::Literal,
                    line,
                });
                advance_to!(end);
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let end = scan_raw_or_byte_string(b, i);
                out.toks.push(SpannedTok {
                    tok: Tok::Literal,
                    line,
                });
                advance_to!(end);
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // followed by a closing quote.
                if let Some(end) = scan_char_literal(b, i) {
                    out.toks.push(SpannedTok {
                        tok: Tok::Literal,
                        line,
                    });
                    advance_to!(end);
                } else {
                    // Lifetime: emit the quote as punct, idents follow.
                    out.toks.push(SpannedTok {
                        tok: Tok::Punct('\''),
                        line,
                    });
                    i += 1;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                let mut end = i;
                while end < b.len() && (b[end] == b'_' || b[end].is_ascii_alphanumeric()) {
                    end += 1;
                }
                out.toks.push(SpannedTok {
                    tok: Tok::Ident(src[start..end].to_string()),
                    line,
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                while end < b.len()
                    && (b[end] == b'_'
                        || b[end] == b'.' && b.get(end + 1).is_some_and(u8::is_ascii_digit)
                        || b[end].is_ascii_alphanumeric())
                {
                    end += 1;
                }
                out.toks.push(SpannedTok {
                    tok: Tok::Number,
                    line,
                });
                i = end;
            }
            c => {
                out.toks.push(SpannedTok {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn scan_string(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"..." | r#"..."# | br"..." | b"..." handled here only when the
    // prefix really starts a string; `r` / `b` as identifiers fall
    // through to ident lexing.
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

fn scan_raw_or_byte_string(b: &[u8], start: usize) -> usize {
    let mut i = start;
    // Skip the b/r prefix characters.
    while i < b.len() && (b[i] == b'b' || b[i] == b'r') {
        i += 1;
    }
    if b.get(i) == Some(&b'\'') {
        // Byte char literal b'x'.
        return scan_char_literal(b, i).unwrap_or(b.len());
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i; // not actually a string; be permissive
    }
    i += 1;
    let raw = hashes > 0 || b[start] == b'r' || (b[start] == b'b' && b[start + 1] == b'r');
    while i < b.len() {
        match b[i] {
            b'\\' if !raw => i += 2,
            b'"' => {
                let mut k = 0usize;
                while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn scan_char_literal(b: &[u8], start: usize) -> Option<usize> {
    // start points at the opening quote. Returns None for lifetimes.
    let mut i = start + 1;
    if i >= b.len() {
        return None;
    }
    if b[i] == b'\\' {
        i += 2;
        while i < b.len() && b[i] != b'\'' {
            i += 1; // \u{...} escapes
        }
        return (i < b.len()).then_some(i + 1);
    }
    // One (possibly multi-byte) character then a closing quote.
    let mut j = i + 1;
    while j < b.len() && (b[j] & 0xC0) == 0x80 {
        j += 1; // UTF-8 continuation bytes
    }
    (b.get(j) == Some(&b'\'')).then_some(j + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_tokens() {
        let src = r##"
// Instant::now in a comment
let x = "Instant::now in a string";
let y = r#"unsafe in a raw string"#;
let z = 'u'; // char
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "z"]);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "fn f() {\n    // SAFETY: fine\n    unsafe { op() }\n}\n";
        let lexed = lex(src);
        assert!(lexed.comment_on_line_contains(2, "SAFETY"));
        assert!(!lexed.comment_on_line_contains(3, "SAFETY"));
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.tok == Tok::Ident("unsafe".into()) && t.line == 3));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) {}");
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }
}
