//! Structured diagnostics, following the house style of the E-Code
//! verifier (`ecode::analysis::diag`): a stable rule code, a precise
//! span, a one-line message — extended here with the *rationale* (why
//! this pattern threatens determinism or memory safety) and a concrete
//! *fix hint*, because analyzer findings are meant to be fixed, not
//! silenced.

use std::fmt;
use std::path::PathBuf;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails CI unless waived.
    Error,
    /// Reported, never fails CI (unused waivers, etc.).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable rule code (`D0001`..`U0002`).
    pub code: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// What was found, one line.
    pub message: String,
    /// Why the pattern is a problem in this codebase.
    pub rationale: &'static str,
    /// How to fix it properly (waivers are the exception, not the fix).
    pub fix: &'static str,
    /// Set when a waiver in analyzer.toml covers this finding.
    pub waived_by: Option<String>,
    /// The offending source line, captured at analysis time so reports
    /// can render without re-reading files.
    pub excerpt: Option<String>,
}

impl Diagnostic {
    pub fn error(
        code: &'static str,
        file: PathBuf,
        line: u32,
        message: String,
        rationale: &'static str,
        fix: &'static str,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            file,
            line,
            message,
            rationale,
            fix,
            waived_by: None,
            excerpt: None,
        }
    }

    /// Whether this finding fails the CI gate.
    pub fn is_blocking(&self) -> bool {
        self.severity == Severity::Error && self.waived_by.is_none()
    }

    /// Renders the diagnostic with a source excerpt, rustc-style:
    ///
    /// ```text
    /// error[D0002] unsorted HashMap iteration reaches emitted records
    ///   --> crates/core/src/lpa.rs:290
    ///    |
    /// 290|        let stale: Vec<FlowKey> = self.flows.iter()
    ///    |
    ///    = why: HashMap order depends on per-process hash seeds ...
    ///    = fix: collect keys and sort before iterating
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let head = if let Some(w) = &self.waived_by {
            format!("waived[{}] ({w})", self.code)
        } else {
            format!("{}[{}]", self.severity, self.code)
        };
        out.push_str(&format!("{head} {}\n", self.message));
        out.push_str(&format!("  --> {}:{}\n", self.file.display(), self.line));
        if let Some(text) = &self.excerpt {
            let gutter = format!("{}", self.line);
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {}\n", text.trim_end()));
            out.push_str(&format!("{pad} |\n"));
        }
        out.push_str(&format!("   = why: {}\n", self.rationale));
        out.push_str(&format!("   = fix: {}\n", self.fix));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity,
            self.code,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_gutter_and_hints() {
        let mut d = Diagnostic::error(
            "D0001",
            PathBuf::from("crates/x/src/lib.rs"),
            3,
            "wall-clock read via Instant::now".into(),
            "wall time varies across runs",
            "use SimTime from the event loop",
        );
        d.excerpt = Some("    let t = Instant::now();".into());
        let r = d.render();
        assert!(r.contains("error[D0001]"));
        assert!(r.contains("--> crates/x/src/lib.rs:3"));
        assert!(r.contains("3 |     let t = Instant::now();"));
        assert!(r.contains("= why:"));
        assert!(r.contains("= fix:"));
        assert_eq!(
            d.to_string(),
            "error[D0001] crates/x/src/lib.rs:3: wall-clock read via Instant::now"
        );
    }
}
