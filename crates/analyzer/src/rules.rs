//! The rule catalog.
//!
//! Determinism rules (`D`) guard the property the whole reproduction
//! rests on: two runs of the same scenario must produce byte-identical
//! traces, dumps, and wire bytes. Unsafe-hygiene rules (`U`) guard the
//! one crate that is allowed to hold `unsafe` code (the E-Code VM).
//!
//! All rules are token-stream heuristics over [`crate::lexer::lex`]
//! output — there is no type information, so each rule is written to
//! err on the side of flagging; genuinely order-independent sites get
//! an `analyzer.toml` waiver with a written justification.

use std::collections::BTreeSet;
use std::path::Path;

use crate::diag::Diagnostic;
use crate::lexer::{Lexed, SpannedTok, Tok};

/// Runs every rule against one lexed file. `src` is the raw source (for
/// the D0002 nearby-sort check). Diagnostics come back sorted by line.
pub fn run_all(file: &Path, lexed: &Lexed, src: &str) -> Vec<Diagnostic> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    d0001(file, lexed, &mut out);
    d0002(file, lexed, &lines, &mut out);
    d0003(file, lexed, &mut out);
    d0004(file, lexed, &mut out);
    d0005(file, lexed, &mut out);
    u0001(file, lexed, &mut out);
    u0002(file, lexed, &mut out);
    out.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    out
}

fn ident(t: &[SpannedTok], i: usize) -> Option<&str> {
    match t.get(i)?.tok {
        Tok::Ident(ref s) => Some(s),
        _ => None,
    }
}

fn is_punct(t: &[SpannedTok], i: usize, c: char) -> bool {
    matches!(t.get(i), Some(SpannedTok { tok: Tok::Punct(p), .. }) if *p == c)
}

/// `t[i]` and `t[i+1]` form a `::` path separator.
fn is_path_sep(t: &[SpannedTok], i: usize) -> bool {
    is_punct(t, i, ':') && is_punct(t, i + 1, ':')
}

/// Index just past the bracket group opened at `open` (`(`, `[` or `{`).
fn after_group(t: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < t.len() {
        match t[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------- D0001

/// Paths where wall-clock reads are the point (benchmarks and CLI
/// entrypoints report real elapsed time); everywhere else the simulated
/// clock (`SimTime`) is the only time source.
fn wall_clock_exempt(file: &Path) -> bool {
    let p = file.to_string_lossy();
    p.contains("crates/bench/") || p.contains("/bin/") || p.starts_with("examples/")
}

fn d0001(file: &Path, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if wall_clock_exempt(file) {
        return;
    }
    for st in &lexed.toks {
        if let Tok::Ident(name) = &st.tok {
            if name == "Instant" || name == "SystemTime" || name == "UNIX_EPOCH" {
                out.push(Diagnostic::error(
                    "D0001",
                    file.to_path_buf(),
                    st.line,
                    format!("wall-clock time source `{name}` in simulation code"),
                    "wall time differs across runs and machines; any value derived from \
                     it makes traces non-reproducible",
                    "thread `SimTime` from the event loop (or take a time parameter); \
                     wall clocks belong only in bench/CLI code",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- D0002

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Adapters that preserve the ordering question — keep following the
/// chain; the terminal decides.
const CHAIN_CONTINUE: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "inspect",
    "map_while",
    "peekable",
    "fuse",
    "by_ref",
    "chain",
];

/// Terminals whose result is independent of iteration order.
const ORDER_FREE: &[&str] = &["sum", "count", "all", "any", "max", "min", "product"];

/// Terminals (or adapters) whose result depends on which element comes
/// first — in hash order, that is a per-process coin flip.
const ORDER_SENSITIVE: &[&str] = &[
    "min_by_key",
    "max_by_key",
    "min_by",
    "max_by",
    "find",
    "find_map",
    "position",
    "last",
    "for_each",
    "reduce",
    "fold",
    "next",
    "nth",
    "take",
    "skip",
    "take_while",
    "skip_while",
    "step_by",
    "zip",
    "rev",
    "partition",
];

const D0002_RATIONALE: &str = "HashMap/HashSet iteration order depends on hash-seed and \
     insertion history; anything order-dependent built from it differs run to run";
const D0002_FIX: &str = "collect into a Vec and sort by a stable key before consuming \
     (see `Lpa::class_summaries`), or use a BTreeMap/BTreeSet";

/// Names bound (via `: HashMap<...>` / `: HashSet<...>` annotations on
/// lets, fields, and params, or `= HashMap::new()`-style initializers)
/// to hash-ordered collections in this file.
fn hash_names(t: &[SpannedTok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..t.len() {
        let Some(name) = ident(t, i) else { continue };
        // `name: path::to::HashMap<...>` — annotation (not a `::` path).
        if is_punct(t, i + 1, ':') && !is_path_sep(t, i + 1) {
            let mut j = i + 2;
            while j < t.len() && j < i + 14 {
                match &t[j].tok {
                    Tok::Ident(ty) if ty == "HashMap" || ty == "HashSet" => {
                        names.insert(name.to_string());
                        break;
                    }
                    Tok::Punct(',' | ';' | '=' | '{' | '(' | ')' | '|') => break,
                    _ => j += 1,
                }
            }
        }
        // `name = HashMap::new()` / `= HashSet::with_capacity(..)`.
        if is_punct(t, i + 1, '=') && !is_punct(t, i + 2, '=') && !is_punct(t, i, '=') {
            let mut j = i + 2;
            while j < t.len() && j < i + 10 {
                match &t[j].tok {
                    Tok::Ident(ty) if ty == "HashMap" || ty == "HashSet" => {
                        names.insert(name.to_string());
                        break;
                    }
                    Tok::Punct('(' | ';' | ',') => break,
                    _ => j += 1,
                }
            }
        }
    }
    names
}

enum ChainVerdict {
    Clean,
    Flag { line: u32, what: String },
}

/// Follows a method chain starting at the `(` of the hash-iteration
/// call and decides whether the hash ordering can be observed.
fn walk_chain(t: &[SpannedTok], open_idx: usize, recv_idx: usize, lines: &[&str]) -> ChainVerdict {
    let mut i = after_group(t, open_idx);
    loop {
        if !is_punct(t, i, '.') {
            // Chain ends undecided (`;`, `{`, passed as an argument...):
            // the hash-ordered iterator escapes to code we cannot see.
            return ChainVerdict::Flag {
                line: t.get(recv_idx).map_or(0, |s| s.line),
                what: "hash-ordered iterator escapes without a decisive order-free \
                       terminal or sort"
                    .into(),
            };
        }
        let Some(m) = ident(t, i + 1) else {
            return ChainVerdict::Flag {
                line: t[i].line,
                what: "hash-ordered iterator used in an unrecognized position".into(),
            };
        };
        let mline = t[i + 1].line;
        if m == "collect" {
            return collect_verdict(t, i + 1, recv_idx, lines);
        }
        if ORDER_FREE.contains(&m) {
            return ChainVerdict::Clean;
        }
        if ORDER_SENSITIVE.contains(&m) {
            return ChainVerdict::Flag {
                line: mline,
                what: format!("`.{m}(...)` consumes hash-ordered items; its result depends on iteration order"),
            };
        }
        if CHAIN_CONTINUE.contains(&m) && is_punct(t, i + 2, '(') {
            i = after_group(t, i + 2);
            continue;
        }
        return ChainVerdict::Flag {
            line: mline,
            what: format!("hash-ordered iterator flows into `.{m}(...)`, which this analyzer cannot prove order-free"),
        };
    }
}

/// A `collect()` ending a hash-iteration chain is fine if it lands in a
/// BTree collection or in a named binding that gets `.sort*`ed within a
/// few lines.
fn collect_verdict(
    t: &[SpannedTok],
    collect_idx: usize,
    recv_idx: usize,
    lines: &[&str],
) -> ChainVerdict {
    let cline = t[collect_idx].line;
    // Turbofish: `collect::<BTreeMap<_, _>>()`.
    if is_path_sep(t, collect_idx + 1) {
        let mut j = collect_idx + 3;
        while j < t.len() && j < collect_idx + 40 && !is_punct(t, j, '(') {
            if ident(t, j).is_some_and(|s| s.contains("BTree")) {
                return ChainVerdict::Clean;
            }
            j += 1;
        }
    }
    // Find the statement start and the `let [mut] NAME` binding.
    let mut s = recv_idx;
    while s > 0 && !matches!(t[s - 1].tok, Tok::Punct(';' | '{' | '}')) {
        s -= 1;
    }
    if ident(t, s) == Some("let") {
        let mut k = s + 1;
        if ident(t, k) == Some("mut") {
            k += 1;
        }
        if let Some(name) = ident(t, k) {
            // `let x: BTreeMap<..> = ...collect()`.
            let mut j = k + 1;
            while j < t.len() && j < k + 40 && !is_punct(t, j, '=') {
                if ident(t, j).is_some_and(|s| s.contains("BTree")) {
                    return ChainVerdict::Clean;
                }
                j += 1;
            }
            // `NAME.sort*` within the next few lines.
            let needle = format!("{name}.sort");
            let from = cline as usize; // line AFTER the collect line, 0-based == cline
            for l in lines.iter().skip(from.saturating_sub(1)).take(8) {
                if l.contains(&needle) {
                    return ChainVerdict::Clean;
                }
            }
            return ChainVerdict::Flag {
                line: cline,
                what: format!(
                    "collected from hash-ordered iteration but `{name}` is never sorted nearby"
                ),
            };
        }
    }
    ChainVerdict::Flag {
        line: cline,
        what: "collect() of hash-ordered iteration in expression position (no binding to sort)"
            .into(),
    }
}

fn d0002(file: &Path, lexed: &Lexed, lines: &[&str], out: &mut Vec<Diagnostic>) {
    let t = &lexed.toks;
    let names = hash_names(t);
    if names.is_empty() {
        return;
    }
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    let mut push = |out: &mut Vec<Diagnostic>, line: u32, what: String| {
        if flagged_lines.insert(line) {
            out.push(Diagnostic::error(
                "D0002",
                file.to_path_buf(),
                line,
                what,
                D0002_RATIONALE,
                D0002_FIX,
            ));
        }
    };

    // Method-chain sites: `name.iter()...`, `self.field.keys()...`.
    for i in 0..t.len() {
        if !is_punct(t, i, '.') {
            continue;
        }
        let Some(m) = ident(t, i + 1) else { continue };
        if !ITER_METHODS.contains(&m) || !is_punct(t, i + 2, '(') {
            continue;
        }
        let Some(recv) = (i > 0).then(|| ident(t, i - 1)).flatten() else {
            continue;
        };
        if !names.contains(recv) {
            continue;
        }
        if let ChainVerdict::Flag { line, what } = walk_chain(t, i + 2, i - 1, lines) {
            push(out, line, format!("`{recv}.{m}()`: {what}"));
        }
    }

    // Direct for-loops: `for (k, v) in &self.field { ... }`.
    for i in 0..t.len() {
        if ident(t, i) != Some("for") {
            continue;
        }
        // Find the `in` of this loop header (patterns never contain `in`).
        let mut j = i + 1;
        while j < t.len() && j < i + 24 && ident(t, j) != Some("in") {
            j += 1;
        }
        if ident(t, j) != Some("in") {
            continue;
        }
        let mut k = j + 1;
        while is_punct(t, k, '&') || ident(t, k) == Some("mut") {
            k += 1;
        }
        // Dotted path `a.b.c` directly followed by the loop body `{`.
        let mut last = None;
        while let Some(seg) = ident(t, k) {
            last = Some((seg, t[k].line));
            if is_punct(t, k + 1, '.') {
                k += 2;
            } else {
                k += 1;
                break;
            }
        }
        if let Some((seg, line)) = last {
            if is_punct(t, k, '{') && names.contains(seg) {
                push(
                    out,
                    line,
                    format!("for-loop iterates `{seg}` directly in hash order"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- D0003

fn d0003(file: &Path, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    const ENTROPY: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
    ];
    for st in &lexed.toks {
        if let Tok::Ident(name) = &st.tok {
            if ENTROPY.contains(&name.as_str()) {
                out.push(Diagnostic::error(
                    "D0003",
                    file.to_path_buf(),
                    st.line,
                    format!("OS entropy source `{name}` bypasses the seeded SimRng streams"),
                    "randomness outside the forked SimRng streams cannot be replayed \
                     from a scenario seed",
                    "fork a named stream from the scenario's SimRng (`rng.fork(\"...\")`) \
                     and thread it to the use site",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- D0004

fn d0004(file: &Path, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let t = &lexed.toks;
    let mut lines: BTreeSet<u32> = BTreeSet::new();
    for i in 0..t.len() {
        let Some(name) = ident(t, i) else { continue };
        let hit = (name == "thread" && is_path_sep(t, i + 1) && ident(t, i + 3) == Some("spawn"))
            || (name == "thread" && is_path_sep(t, i + 1) && ident(t, i + 3) == Some("Builder"))
            || (name == "sync" && is_path_sep(t, i + 1) && ident(t, i + 3) == Some("atomic"))
            || name == "crossbeam"
            || (name.starts_with("Atomic")
                && name.len() > "Atomic".len()
                && name.as_bytes()["Atomic".len()].is_ascii_uppercase());
        if hit {
            lines.insert(t[i].line);
        }
    }
    for line in lines {
        out.push(Diagnostic::error(
            "D0004",
            file.to_path_buf(),
            line,
            "real thread/atomic use outside the simulation's single-threaded model".into(),
            "the simulator serializes all concurrency through the event loop; real \
             threads introduce scheduling nondeterminism the seed cannot control",
            "model concurrency as simos processes/events; if host-side parallelism is \
             truly required, waive the site with a justification in analyzer.toml",
        ));
    }
}

// ---------------------------------------------------------------- D0005

/// Wall-clock *calls*, flagged everywhere — no path exemption.
///
/// D0001 flags the wall-clock *types* but exempts bench/CLI paths
/// wholesale, which means a new `Instant::now()` in those paths lands
/// silently. This rule makes every call site visible: the simulated
/// clock is the only sanctioned time source, and the handful of
/// legitimate host-side timing reads (benchmark wall timers) each carry
/// an `analyzer.toml` waiver with a written justification.
fn d0005(file: &Path, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let t = &lexed.toks;
    for i in 0..t.len() {
        let Some(name) = ident(t, i) else { continue };
        if (name == "Instant" || name == "SystemTime")
            && is_path_sep(t, i + 1)
            && ident(t, i + 3) == Some("now")
            && is_punct(t, i + 4, '(')
        {
            out.push(Diagnostic::error(
                "D0005",
                file.to_path_buf(),
                t[i].line,
                format!("wall-clock read `{name}::now()` — `SimTime` is the only sanctioned time source"),
                "this rule has no path exemption (unlike D0001): every wall-clock \
                 read is individually accounted for, so one cannot slip into \
                 replayed logic through an exempted directory",
                "derive time from `SimTime`/the event loop; a host-side timer that \
                 genuinely measures real elapsed time gets an analyzer.toml waiver \
                 saying so",
            ));
        }
    }
}

// ---------------------------------------------------------------- U0001

fn u0001(file: &Path, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let t = &lexed.toks;
    for i in 0..t.len() {
        if ident(t, i) != Some("unsafe") {
            continue;
        }
        // `unsafe fn` declarations are contracts, not uses: each unsafe
        // *operation* inside still needs its own block + comment
        // (enforced by `unsafe_op_in_unsafe_fn = "deny"`).
        if ident(t, i + 1) == Some("fn") {
            continue;
        }
        let line = t[i].line;
        let documented =
            (line.saturating_sub(3)..=line).any(|l| lexed.comment_on_line_contains(l, "SAFETY"));
        if !documented {
            out.push(Diagnostic::error(
                "U0001",
                file.to_path_buf(),
                line,
                "`unsafe` without an adjacent `// SAFETY:` comment".into(),
                "every unsafe site must state the invariant that makes it sound, where \
                 the next editor will see it",
                "add a `// SAFETY: ...` comment on the line above (or the same line) \
                 naming the upheld invariant",
            ));
        }
    }
}

// ---------------------------------------------------------------- U0002

/// The one sanctioned home for raw-pointer arithmetic: the E-Code VM's
/// interpreter loops, whose indices are validated by `verify()` before
/// execution.
fn ptr_math_sanctioned(file: &Path) -> bool {
    file.to_string_lossy().ends_with("crates/ecode/src/vm.rs")
}

const PTR_MATH: &[&str] = &[
    "add",
    "sub",
    "offset",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_offset",
    "byte_add",
    "byte_sub",
];

/// Names bound to raw pointers in this file: `: *const T` / `: *mut T`
/// annotations and `let p = x.as_ptr()` / `as_mut_ptr()` initializers.
fn raw_ptr_names(t: &[SpannedTok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..t.len() {
        let Some(name) = ident(t, i) else { continue };
        if is_punct(t, i + 1, ':') && !is_path_sep(t, i + 1) {
            let mut j = i + 2;
            while j < t.len() && j < i + 10 {
                match &t[j].tok {
                    Tok::Punct('*') if matches!(ident(t, j + 1), Some("const") | Some("mut")) => {
                        names.insert(name.to_string());
                        break;
                    }
                    Tok::Punct(',' | ';' | '=' | '{' | '(' | ')' | '|') => break,
                    _ => j += 1,
                }
            }
        }
    }
    // `let [mut] NAME = <expr>.as_ptr()` — scan statements.
    for i in 0..t.len() {
        if !matches!(ident(t, i), Some("as_ptr") | Some("as_mut_ptr")) {
            continue;
        }
        let mut s = i;
        while s > 0 && !matches!(t[s - 1].tok, Tok::Punct(';' | '{' | '}')) {
            s -= 1;
        }
        if ident(t, s) == Some("let") {
            let mut k = s + 1;
            if ident(t, k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = ident(t, k) {
                names.insert(name.to_string());
            }
        }
    }
    names
}

fn u0002(file: &Path, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if ptr_math_sanctioned(file) {
        return;
    }
    let t = &lexed.toks;
    let names = raw_ptr_names(t);
    if names.is_empty() {
        return;
    }
    for i in 0..t.len() {
        if !is_punct(t, i, '.') {
            continue;
        }
        let Some(m) = ident(t, i + 1) else { continue };
        if !PTR_MATH.contains(&m) || !is_punct(t, i + 2, '(') {
            continue;
        }
        let Some(recv) = (i > 0).then(|| ident(t, i - 1)).flatten() else {
            continue;
        };
        if names.contains(recv) {
            out.push(Diagnostic::error(
                "U0002",
                file.to_path_buf(),
                t[i + 1].line,
                format!("raw-pointer arithmetic `{recv}.{m}(...)` outside the E-Code VM"),
                "unchecked pointer math is only auditable where every index is \
                 validated first; the VM interpreter is the single sanctioned site",
                "use slice indexing or iterators here; pointer arithmetic belongs \
                 only in crates/ecode/src/vm.rs behind verify()",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_all(&PathBuf::from("crates/x/src/lib.rs"), &lex(src), src)
    }

    fn codes(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn d0002_sorted_collect_is_clean() {
        let src = "
struct S { m: HashMap<u32, u32> }
impl S {
    fn f(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.m.keys().copied().collect();
        out.sort();
        out
    }
}";
        assert!(codes(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn d0002_unsorted_collect_flags() {
        let src = "
struct S { m: HashMap<u32, u32> }
impl S {
    fn f(&self) -> Vec<u32> {
        let out: Vec<u32> = self.m.keys().copied().collect();
        out
    }
}";
        assert_eq!(codes(src), vec!["D0002"]);
    }

    #[test]
    fn d0002_order_free_terminal_is_clean() {
        let src = "
fn f(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}";
        assert!(codes(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn d0002_min_by_key_flags_and_btree_collect_clean() {
        let flagged = "
fn f(m: &HashMap<u32, u64>) -> Option<(&u32, &u64)> {
    m.iter().min_by_key(|(_, v)| **v)
}";
        assert_eq!(codes(flagged), vec!["D0002"]);
        let clean = "
fn f(m: &HashMap<u32, u64>) -> BTreeMap<u32, u64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, u64>>()
}";
        assert!(codes(clean).is_empty(), "{:?}", run(clean));
    }

    #[test]
    fn d0002_direct_for_loop_flags() {
        let src = "
struct S { m: HashMap<u32, u32> }
impl S {
    fn f(&mut self) {
        for (k, v) in &self.m { emit(k, v); }
    }
}";
        assert_eq!(codes(src), vec!["D0002"]);
    }

    #[test]
    fn u0001_needs_adjacent_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(codes(bad), vec!["U0001"]);
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert!(codes(good).is_empty(), "{:?}", run(good));
    }

    #[test]
    fn u0001_unsafe_fn_decl_exempt() {
        let src = "unsafe fn f() {}";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn u0002_ptr_math_flagged_outside_vm() {
        let src = "
fn f(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    // SAFETY: in bounds
    unsafe { *p.add(1) }
}";
        assert_eq!(codes(src), vec!["U0002"]);
        let in_vm = run_all(&PathBuf::from("crates/ecode/src/vm.rs"), &lex(src), src);
        assert!(in_vm.iter().all(|d| d.code != "U0002"));
    }

    #[test]
    fn d0001_d0003_d0004_idents_flag() {
        // A wall-clock call trips both the type rule and the call rule.
        assert_eq!(codes("let t = Instant::now();"), vec!["D0001", "D0005"]);
        assert_eq!(codes("let r = thread_rng();"), vec!["D0003"]);
        assert_eq!(codes("let h = std::thread::spawn(|| {});"), vec!["D0004"]);
        assert_eq!(
            codes("static N: AtomicU64 = AtomicU64::new(0);"),
            vec!["D0004"]
        );
        // Named-thread spawns and channel crates are the same escape
        // hatch as a bare `thread::spawn`.
        assert_eq!(
            codes("let b = std::thread::Builder::new().name(n.into());"),
            vec!["D0004"]
        );
        assert_eq!(codes("use crossbeam::channel::bounded;"), vec!["D0004"]);
    }

    #[test]
    fn d0001_exempt_in_bench_paths_but_d0005_is_not() {
        let src = "let t = Instant::now();";
        let d = run_all(
            &PathBuf::from("crates/bench/src/bin/hotpath.rs"),
            &lex(src),
            src,
        );
        let codes: Vec<_> = d.iter().map(|d| d.code).collect();
        // The type rule honors the bench exemption; the call rule fires
        // everywhere and the site must be waived instead.
        assert_eq!(codes, vec!["D0005"]);
    }

    #[test]
    fn d0005_flags_calls_not_lookalikes() {
        assert_eq!(
            codes("let t = std::time::SystemTime::now();"),
            vec!["D0001", "D0005"]
        );
        // A method named `now` on some other receiver is not a
        // wall-clock read, nor is the un-called path `Instant::now`.
        assert_eq!(codes("let t = clock.now();"), Vec::<&str>::new());
        assert_eq!(codes("let f = Instant::now;"), vec!["D0001"]);
    }
}
