//! Golden diagnostics per rule: each fixture under `tests/fixtures/`
//! must produce exactly the expected (code, line) pairs — no more, no
//! fewer. The fixtures also carry decoys (strings, comments, look-alike
//! method names) that must stay silent, so these tests pin both the
//! hit and the miss behavior of every rule.

use std::path::PathBuf;

use sysprof_analyzer::analyze_source;

/// Analyzes a fixture as if it lived at a normal workspace path (rule
/// path-exemptions must not apply to it).
fn findings(fixture: &str, src: &str) -> Vec<(String, u32)> {
    let rel = PathBuf::from("crates/fixture/src").join(fixture);
    analyze_source(&rel, src)
        .into_iter()
        .map(|d| (d.code.to_string(), d.line))
        .collect()
}

fn expect(fixture: &str, src: &str, want: &[(&str, u32)]) {
    let got = findings(fixture, src);
    let want: Vec<(String, u32)> = want.iter().map(|(c, l)| (c.to_string(), *l)).collect();
    assert_eq!(
        got, want,
        "fixture {fixture}: expected {want:?}, got {got:?}"
    );
}

#[test]
fn d0001_wall_clock_golden() {
    // The `::now()` call sites (lines 8 and 13) additionally trip the
    // path-exemption-free call rule D0005.
    expect(
        "d0001.rs",
        include_str!("fixtures/d0001_wall_clock.rs"),
        &[
            ("D0001", 5),
            ("D0001", 8),
            ("D0005", 8),
            ("D0001", 12),
            ("D0001", 13),
            ("D0005", 13),
        ],
    );
}

#[test]
fn d0005_wall_clock_calls_golden() {
    expect(
        "d0005.rs",
        include_str!("fixtures/d0005_wall_clock_calls.rs"),
        &[
            ("D0001", 7),
            ("D0005", 7),
            ("D0001", 11),
            ("D0001", 12),
            ("D0005", 12),
            ("D0001", 16),
        ],
    );
}

#[test]
fn d0005_fires_even_in_bench_paths() {
    let src = include_str!("fixtures/d0005_wall_clock_calls.rs");
    let diags = analyze_source(&PathBuf::from("crates/bench/src/bin/hotpath.rs"), src);
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.code, d.line)).collect();
    // D0001 honors the bench exemption; D0005 does not.
    assert_eq!(got, vec![("D0005", 7), ("D0005", 12)]);
}

#[test]
fn d0002_hash_order_golden() {
    expect(
        "d0002.rs",
        include_str!("fixtures/d0002_hash_order.rs"),
        &[("D0002", 14), ("D0002", 32), ("D0002", 37)],
    );
}

#[test]
fn d0003_entropy_golden() {
    expect(
        "d0003.rs",
        include_str!("fixtures/d0003_entropy.rs"),
        &[("D0003", 5), ("D0003", 9), ("D0003", 10)],
    );
}

#[test]
fn d0004_threads_golden() {
    expect(
        "d0004.rs",
        include_str!("fixtures/d0004_threads.rs"),
        &[("D0004", 4), ("D0004", 6), ("D0004", 9)],
    );
}

#[test]
fn u0001_safety_comments_golden() {
    expect(
        "u0001.rs",
        include_str!("fixtures/u0001_safety_comments.rs"),
        &[("U0001", 5)],
    );
}

#[test]
fn u0002_ptr_math_golden() {
    expect(
        "u0002.rs",
        include_str!("fixtures/u0002_ptr_math.rs"),
        &[("U0002", 7), ("U0002", 12)],
    );
}

#[test]
fn u0002_is_silent_inside_the_vm() {
    // The same pointer arithmetic is sanctioned in the VM interpreter.
    let src = include_str!("fixtures/u0002_ptr_math.rs");
    let diags = analyze_source(&PathBuf::from("crates/ecode/src/vm.rs"), src);
    assert!(diags.iter().all(|d| d.code != "U0002"), "{diags:?}");
}

#[test]
fn d0001_is_silent_in_bench_and_bin_paths() {
    let src = include_str!("fixtures/d0001_wall_clock.rs");
    for path in [
        "crates/bench/src/lib.rs",
        "crates/bench/src/bin/hotpath.rs",
        "src/bin/cli.rs",
    ] {
        let diags = analyze_source(&PathBuf::from(path), src);
        assert!(diags.iter().all(|d| d.code != "D0001"), "{path}: {diags:?}");
    }
}

#[test]
fn excerpts_point_at_the_offending_line() {
    let src = include_str!("fixtures/u0001_safety_comments.rs");
    let diags = analyze_source(&PathBuf::from("crates/fixture/src/u0001.rs"), src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].excerpt.as_deref(), Some("    unsafe { *p }"));
    // Rendered output carries code, span, rationale, and fix hint.
    let rendered = diags[0].render();
    assert!(rendered.contains("error[U0001]"));
    assert!(rendered.contains("--> crates/fixture/src/u0001.rs:5"));
    assert!(rendered.contains("= why:"));
    assert!(rendered.contains("= fix:"));
}

#[test]
fn scenario_library_fixture_golden() {
    expect(
        "scenario_library.rs",
        include_str!("fixtures/scenario_library.rs"),
        &[
            ("D0001", 6),
            ("D0001", 16),
            ("D0005", 16),
            ("D0002", 26),
            ("D0002", 44),
            ("D0003", 50),
        ],
    );
}
