// Fixture: D0003 — OS entropy bypassing the seeded SimRng streams.
// Exact expected (code, line) pairs live in tests/golden.rs.

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

fn decoy() {
    // thread_rng mentioned in a comment is fine.
    let _ = "OsRng in a string is fine";
}
