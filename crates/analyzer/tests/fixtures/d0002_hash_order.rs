// Fixture: D0002 — observable HashMap/HashSet iteration order.
// Exact expected (code, line) pairs live in tests/golden.rs.

use std::collections::{BTreeMap, HashMap, HashSet};

struct Stats {
    per_port: HashMap<u16, u64>,
    seen: HashSet<u64>,
}

impl Stats {
    // BAD: unsorted collect escapes to the caller.
    fn dump_unsorted(&self) -> Vec<(u16, u64)> {
        let rows: Vec<(u16, u64)> = self.per_port.iter().map(|(p, c)| (*p, *c)).collect();
        rows
    }

    // GOOD: collect then sort by a stable key.
    fn dump_sorted(&self) -> Vec<(u16, u64)> {
        let mut ordered: Vec<(u16, u64)> = self.per_port.iter().map(|(p, c)| (*p, *c)).collect();
        ordered.sort_by_key(|(p, _)| *p);
        ordered
    }

    // GOOD: order-free terminal.
    fn total(&self) -> u64 {
        self.per_port.values().sum()
    }

    // BAD: first-match depends on iteration order.
    fn any_busy(&self) -> Option<u16> {
        self.per_port.iter().find(|(_, c)| **c > 10).map(|(p, _)| *p)
    }

    // BAD: direct for-loop in hash order.
    fn emit_all(&self, out: &mut Vec<u64>) {
        for v in &self.seen {
            out.push(*v);
        }
    }

    // GOOD: rehomed into an ordered map before iteration.
    fn as_btree(&self) -> BTreeMap<u16, u64> {
        self.per_port.iter().map(|(p, c)| (*p, *c)).collect::<BTreeMap<u16, u64>>()
    }
}
