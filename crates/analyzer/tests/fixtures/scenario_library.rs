// Fixture: a workload scenario written the tempting-but-wrong way.
// Each planted defect is one the real `crates/apps` scenario library
// must avoid; exact expected (code, line) pairs live in tests/golden.rs.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

struct ScenarioStats {
    per_key: HashMap<u32, u64>,
    latencies_us: Vec<u64>,
}

impl ScenarioStats {
    // BAD: wall-clock latency measurement inside the simulation.
    fn record_wall_latency(&mut self) {
        let t0 = Instant::now();
        self.latencies_us.push(t0.elapsed().as_micros() as u64);
    }

    // BAD: diagnosis evidence rendered in hash order.
    fn evidence(&self) -> Vec<String> {
        let rows: Vec<String> = self
            .per_key
            .iter()
            .map(|(k, n)| format!("key {k}: {n} ops"))
            .collect();
        rows
    }

    // GOOD: collected then sorted by a stable key before rendering.
    fn evidence_sorted(&self) -> Vec<(u32, u64)> {
        let mut ordered: Vec<(u32, u64)> = self.per_key.iter().map(|(k, n)| (*k, *n)).collect();
        ordered.sort_by_key(|(k, _)| *k);
        ordered
    }

    // GOOD: order-free share computation.
    fn total_ops(&self) -> u64 {
        self.per_key.values().sum()
    }

    // BAD: hottest key picked in hash order — ties break per-process.
    fn hot_key(&self) -> Option<u32> {
        self.per_key.iter().max_by_key(|(_, n)| **n).map(|(k, _)| *k)
    }
}

// BAD: zipf sampling from OS entropy — unreplayable from the seed.
fn zipf_sample(keys: u32) -> u32 {
    let mut rng = thread_rng();
    (rng.next_u64() % keys as u64) as u32
}

// GOOD: rehomed into an ordered map before the report renders it.
fn per_key_report(stats: &ScenarioStats) -> BTreeMap<u32, u64> {
    stats.per_key.iter().map(|(k, n)| (*k, *n)).collect::<BTreeMap<u32, u64>>()
}

// Decoys: entropy and wall-clock names inside comments and strings must
// stay silent — e.g. a doc note saying "never call Instant::now here".
fn decoy() -> &'static str {
    "scenario clients must not call thread_rng() for zipf draws"
}
