// Fixture: U0002 — raw-pointer arithmetic outside the E-Code VM.
// Exact expected (code, line) pairs live in tests/golden.rs.

fn second(v: &[u8]) -> u8 {
    let base = v.as_ptr();
    // SAFETY: v has at least two elements (checked by the caller).
    unsafe { *base.add(1) }
}

fn typed(p: *const u32, idx: usize) -> *const u32 {
    // SAFETY: idx is in bounds per the caller.
    unsafe { p.offset(idx as isize) }
}

fn decoy(total: u64, extra: u64) -> u64 {
    // Ordinary numeric methods named `add` must not trip the rule.
    total.checked_add(extra).unwrap_or(u64::MAX)
}
