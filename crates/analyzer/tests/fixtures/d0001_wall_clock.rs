// Fixture: D0001 — wall-clock time sources in simulation code.
// Exact expected (code, line) pairs live in tests/golden.rs; the decoy
// string/comment at the bottom must stay silent.

use std::time::Instant;

fn elapsed() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn decoy() {
    let _ = "Instant::now is fine inside a string"; // and SystemTime here
}
