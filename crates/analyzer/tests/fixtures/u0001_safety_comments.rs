// Fixture: U0001 — `unsafe` without an adjacent `// SAFETY:` comment.
// Exact expected (code, line) pairs live in tests/golden.rs.

fn read_undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

fn read_documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points to a live byte.
    unsafe { *p }
}

// An `unsafe fn` declaration is a contract, not a use: exempt.
unsafe fn contract_only() {}

fn same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller contract, stated on the same line.
}
