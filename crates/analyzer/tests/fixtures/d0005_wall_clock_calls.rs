// Fixture: D0005 — wall-clock `::now()` calls, flagged in every path.
// Exact expected (code, line) pairs live in tests/golden.rs. The
// lookalikes at the bottom must stay silent: a `now()` method on some
// other receiver, and a wall-clock path that is never called.

fn elapsed() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_micros() as u64
}

fn stamp() -> SystemTime {
    SystemTime::now()
}

fn lookalikes(clock: &SimClock) -> u64 {
    let f = Instant::now; // path expression, not a call: D0001 only
    let _ = f;
    clock.now() // a simulated clock's own `now` is the sanctioned source
}
// Decoy: "never call Instant::now() here" in a string must stay silent.
fn decoy() -> &'static str {
    "never call Instant::now() or SystemTime::now() in simulation code"
}
