// Fixture: D0004 — real threads/atomics outside the simulation model.
// Exact expected (code, line) pairs live in tests/golden.rs.

use std::sync::atomic::AtomicU64;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn go() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}

fn decoy() {
    // A simos process spawn is not a thread spawn.
    spawn_process();
}

fn spawn_process() {}
