//! Waiver round-trip: parse a config, apply it to real findings from a
//! fixture, and check the used/unused bookkeeping plus rejection of
//! bad configs.

use std::path::PathBuf;

use sysprof_analyzer::{analyze_source, waiver};

#[test]
fn waiver_round_trip_covers_findings() {
    let toml = r#"
[[waiver]]
rule = "U0002"
file = "src/u0002.rs"
context = "base.add"
justification = "bounds proven by the caller in this fixture"
"#;
    let waivers = waiver::parse(toml).unwrap();
    let src = include_str!("fixtures/u0002_ptr_math.rs");
    let mut diags = analyze_source(&PathBuf::from("crates/fixture/src/u0002.rs"), src);
    assert_eq!(diags.len(), 2);
    for d in &mut diags {
        if let Some(w) = waivers.iter().find(|w| w.covers(d)) {
            d.waived_by = Some(w.label());
        }
    }
    // Context "base.add" covers line 7 but not the p.offset at line 12.
    let covered: Vec<u32> = diags
        .iter()
        .filter(|d| d.waived_by.is_some())
        .map(|d| d.line)
        .collect();
    assert_eq!(covered, vec![7]);
    assert!(diags.iter().any(|d| d.is_blocking() && d.line == 12));
    // The waiver label carries the justification for the report.
    let label = diags[0].waived_by.as_deref().unwrap();
    assert!(label.contains("bounds proven by the caller"));
}

#[test]
fn file_suffix_must_match() {
    let toml = r#"
[[waiver]]
rule = "U0002"
file = "some/other/file.rs"
justification = "does not apply here"
"#;
    let waivers = waiver::parse(toml).unwrap();
    let src = include_str!("fixtures/u0002_ptr_math.rs");
    let diags = analyze_source(&PathBuf::from("crates/fixture/src/u0002.rs"), src);
    assert!(diags.iter().all(|d| !waivers[0].covers(d)));
}

#[test]
fn config_errors_are_loud() {
    // Empty justification.
    assert!(
        waiver::parse("[[waiver]]\nrule = \"D0001\"\nfile = \"a.rs\"\njustification = \"\"\n")
            .is_err()
    );
    // Unquoted value.
    assert!(waiver::parse("[[waiver]]\nrule = D0001\n").is_err());
    // Key outside a table.
    assert!(waiver::parse("rule = \"D0001\"\n").is_err());
    // Unknown table name.
    assert!(waiver::parse("[waivers]\nrule = \"D0001\"\n").is_err());
}

#[test]
fn checked_in_analyzer_toml_parses() {
    // The real config at the workspace root must always be loadable and
    // every entry fully justified.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("analyzer.toml")).unwrap();
    let waivers = waiver::parse(&text).unwrap();
    assert!(!waivers.is_empty());
    for w in &waivers {
        assert!(
            w.justification.split_whitespace().count() >= 5,
            "waiver at analyzer.toml:{} needs a real justification, not a token gesture",
            w.defined_at
        );
    }
}
