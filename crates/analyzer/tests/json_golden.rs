//! Pins the `--json` output schema byte-for-byte. CI artifact consumers
//! parse this; any key addition, reordering, or formatting change must
//! consciously update the golden string below.

use std::path::PathBuf;

use sysprof_analyzer::waiver::Waiver;
use sysprof_analyzer::{analyze_source, json, Report};

#[test]
fn json_schema_golden() {
    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    let mut diagnostics = analyze_source(&PathBuf::from("crates/x/src/lib.rs"), src);
    assert_eq!(diagnostics.len(), 2, "fixture drifted: {diagnostics:?}");
    // Waive one finding so the schema shows both waived and blocking.
    diagnostics[0].waived_by = Some("analyzer.toml:3: a \"quoted\" why".into());
    let report = Report {
        diagnostics,
        unused_waivers: vec![Waiver {
            rule: "D0003".into(),
            file: "crates/gone/src/lib.rs".into(),
            context: None,
            justification: "stale entry".into(),
            defined_at: 9,
        }],
        files_scanned: 1,
    };

    let expected = r#"{
  "files_scanned": 1,
  "summary": { "findings": 2, "waived": 1, "blocking": 1, "unused_waivers": 1 },
  "findings": [
    {
      "severity": "error",
      "code": "D0001",
      "file": "crates/x/src/lib.rs",
      "line": 2,
      "message": "wall-clock time source `Instant` in simulation code",
      "rationale": "wall time differs across runs and machines; any value derived from it makes traces non-reproducible",
      "fix": "thread `SimTime` from the event loop (or take a time parameter); wall clocks belong only in bench/CLI code",
      "waived_by": "analyzer.toml:3: a \"quoted\" why",
      "excerpt": "    let t = Instant::now();"
    },
    {
      "severity": "error",
      "code": "D0005",
      "file": "crates/x/src/lib.rs",
      "line": 2,
      "message": "wall-clock read `Instant::now()` — `SimTime` is the only sanctioned time source",
      "rationale": "this rule has no path exemption (unlike D0001): every wall-clock read is individually accounted for, so one cannot slip into replayed logic through an exempted directory",
      "fix": "derive time from `SimTime`/the event loop; a host-side timer that genuinely measures real elapsed time gets an analyzer.toml waiver saying so",
      "waived_by": null,
      "excerpt": "    let t = Instant::now();"
    }
  ],
  "unused_waivers": [
    { "rule": "D0003", "file": "crates/gone/src/lib.rs", "context": null, "justification": "stale entry", "defined_at": 9 }
  ]
}
"#;
    assert_eq!(json::render(&report), expected);
}

#[test]
fn json_output_is_parseable() {
    // The golden above pins bytes; this pins well-formedness through an
    // actual JSON parser, so escaping bugs cannot hide in the golden.
    let src = "fn f() {\n    let t = Instant::now(); // \"quote\\backslash\"\n}\n";
    let diagnostics = analyze_source(&PathBuf::from("crates/x/src/lib.rs"), src);
    let report = Report {
        diagnostics,
        unused_waivers: Vec::new(),
        files_scanned: 1,
    };
    let v: serde_json::Value = serde_json::from_str(&json::render(&report)).unwrap();
    assert_eq!(v["summary"]["findings"], 2);
    let findings = v["findings"].as_array().unwrap();
    assert_eq!(findings[0]["code"], "D0001");
    assert!(findings[0]["excerpt"]
        .as_str()
        .unwrap()
        .contains("\"quote\\backslash\""));
}
