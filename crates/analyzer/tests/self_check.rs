//! The analyzer eats its own dog food: the whole workspace — this
//! crate included — must analyze clean against the checked-in
//! `analyzer.toml`. This is the same invocation `ci.sh` gates on, so a
//! regression shows up in `cargo test` before it ever reaches CI.

use std::path::PathBuf;

use sysprof_analyzer::{analyze_workspace, waiver};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("analyzer.toml")).unwrap();
    let waivers = waiver::parse(&text).unwrap();
    let report = analyze_workspace(&root, &waivers).unwrap();

    let blocking: Vec<String> = report.blocking().map(|d| d.to_string()).collect();
    assert!(
        blocking.is_empty(),
        "unwaived analyzer findings in the workspace:\n{}",
        blocking.join("\n")
    );
    assert!(
        report.unused_waivers.is_empty(),
        "stale waivers in analyzer.toml: {:?}",
        report.unused_waivers
    );
    // Sanity: the scan actually covered the workspace.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    // Every waiver is exercised (they matched, or unused_waivers would
    // be non-empty) and every waived finding keeps its justification.
    for d in &report.diagnostics {
        if let Some(label) = &d.waived_by {
            assert!(label.contains("analyzer.toml:"), "{label}");
        }
    }
}

/// The scenario library is exactly the code the determinism rules exist
/// for (diagnosis strings are pinned byte-for-byte in golden tests), so
/// its coverage is asserted explicitly: every scenario source is in the
/// scan set and analyzes clean on its own, with no waiver absorbing a
/// finding there.
#[test]
fn scan_covers_the_scenario_library_and_it_is_clean() {
    let root = workspace_root();
    let files = sysprof_analyzer::scan::rust_sources(&root).unwrap();
    for f in [
        "scenario.rs",
        "kvstore.rs",
        "fanout.rs",
        "allreduce.rs",
        "cdn.rs",
    ] {
        let rel = PathBuf::from("crates/apps/src").join(f);
        assert!(
            files.contains(&rel),
            "scan missed scenario-library file {rel:?}"
        );
    }
    for rel in files.iter().filter(|p| p.starts_with("crates/apps")) {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let diags = sysprof_analyzer::analyze_source(rel, &src);
        assert!(diags.is_empty(), "findings in {rel:?}:\n{diags:#?}");
    }
}

/// The compiled execution tier runs inside the event hot path, where a
/// determinism or hygiene slip would corrupt results silently — so its
/// coverage is asserted explicitly, like the scenario library's: the
/// jit module and the VM driver it plugs into are in the scan set, and
/// the jit analyzes clean on its own with no waiver absorbing a finding
/// there.
#[test]
fn scan_covers_the_jit_and_it_is_clean() {
    let root = workspace_root();
    let files = sysprof_analyzer::scan::rust_sources(&root).unwrap();
    for f in ["jit.rs", "vm.rs"] {
        let rel = PathBuf::from("crates/ecode/src").join(f);
        assert!(
            files.contains(&rel),
            "scan missed execution-tier file {rel:?}"
        );
    }
    let rel = PathBuf::from("crates/ecode/src/jit.rs");
    let src = std::fs::read_to_string(root.join(&rel)).unwrap();
    let diags = sysprof_analyzer::analyze_source(&rel, &src);
    assert!(diags.is_empty(), "findings in {rel:?}:\n{diags:#?}");
    // The jit deliberately contains no unsafe code: the safe slice
    // indexing is pre-proven by `validate`, and keeping the module safe
    // means the per-op interpreter stays the only unsafe surface.
    assert!(
        !src.contains("unsafe "),
        "ecode::jit grew unsafe code; move it behind the audited VM instead"
    );
}
