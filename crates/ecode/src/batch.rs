//! Vectorized batch evaluation for fully-mergeable digest programs.
//!
//! The sharded GPA feeds each shard worker *columns* of raw input bits
//! (one `&[i64]` per declared input, one lane per record). Running the
//! scalar VM row-at-a-time from those columns pays interpreter dispatch,
//! stack traffic, and fuel checks per record. This module compiles the
//! same bytecode once into a short linear program of *vector ops* that
//! each sweep a whole batch, so the dispatch cost amortizes across ~1k
//! lanes and the inner loops autovectorize.
//!
//! # Why this is legal, and exactly when
//!
//! Vectorization reorders evaluation: all lanes execute vector op `i`
//! before any lane executes op `i + 1`, where the scalar VM runs each
//! record to completion before the next. The merge analysis
//! ([`MergePlan`], DESIGN.md §10) is what makes that reordering
//! invisible. In a fully-mergeable program every read of mutable static
//! state occurs *only* inside that static's own accumulation pattern
//! (`g = g + d`, `g = min(g, v)`, gated constant writes), every delta
//! and every branch condition is input-only, and each accumulation
//! fold is associative and commutative on the bit level (`wrapping_add`,
//! `i64::min`/`max`, "any lane stored the constant"). So per-lane
//! computations depend only on that lane's inputs — they evaluate
//! full-width with no cross-lane hazard — and static updates become
//! masked *reductions* whose fold order cannot change the result.
//! Anything outside that shape (reads of mutable statics escaping their
//! accumulation pattern, `out()` streams, non-constant divisors,
//! float accumulation) makes [`BatchEval::try_compile`] return `None`
//! and the caller falls back to the scalar VM.
//!
//! # Bit-exactness contract
//!
//! For a batch of `n` rows, [`BatchEval::run`] leaves the instance's
//! statics bit-identical to `n` scalar [`Instance::run_raw`] calls in
//! row order, and returns the exact total `fuel_used` those calls would
//! have reported. Control flow is compiled to 0/1 lane masks
//! (`JmpIfFalse` splits a mask, joins OR them back and blend divergent
//! stack values), and fuel is metered exactly: every original opcode
//! charges 1 per lane that executes it, accumulated per straight-line
//! segment as `ops × popcount(mask)`. Programs whose verified worst-case
//! fuel bound exceeds the host's budget are not vectorized at all, so
//! the vector path can never hit `OutOfFuel` mid-batch — and because
//! non-constant divisors bail at compile time it can never trap — which
//! is why it needs no per-lane abort story. Return values and `out()`
//! are *not* produced: the digest plane only observes statics and fuel.

use std::collections::{BTreeMap, HashMap};

use crate::analysis::{fuel, MergeClass, MergePlan, MinMaxOp};
use crate::compile::Program;
use crate::vm::{Instance, Op};

/// Where a vector operand's column lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Src {
    /// Caller-provided input column (index into the `cols` argument).
    Input(u16),
    /// Scratch register column written by an earlier vector op (SSA).
    Reg(u16),
    /// Per-lane local-variable column (mutable; zeroed each batch).
    Local(u16),
    /// Pool column: a broadcast constant or a read-only static splat.
    Pool(u16),
}

/// Lane mask: `None` means "all lanes", otherwise a 0/1 column.
type Mask = Option<Src>;

/// Two-operand lane-wise kernels. Each mirrors one scalar opcode's
/// semantics exactly (wrapping integer arithmetic, IEEE doubles via
/// `to_bits`/`from_bits`, comparisons producing 0/1).
#[derive(Debug, Clone, Copy)]
enum BinK {
    AddI,
    SubI,
    MulI,
    DivI,
    ModI,
    AddF,
    SubF,
    MulF,
    DivF,
    EqI,
    NeI,
    LtI,
    LeI,
    GtI,
    GeI,
    EqF,
    NeF,
    LtF,
    LeF,
    GtF,
    GeF,
    MinI,
    MinF,
    MaxI,
    MaxF,
    /// Mask AND (operands are 0/1 lanes).
    AndB,
    /// `a AND NOT b` (operands are 0/1 lanes) — the else-mask split.
    AndNotB,
    /// Mask OR (operands are 0/1 lanes) — the join.
    OrB,
}

/// One-operand lane-wise kernels.
#[derive(Debug, Clone, Copy)]
enum UnK {
    NegI,
    NegF,
    NotB,
    AbsI,
    AbsF,
    I2F,
}

/// A compiled vector instruction.
#[derive(Debug, Clone, Copy)]
enum VOp {
    /// `dst[l] = k(a[l], b[l])` for every lane (unmasked: lane-pure).
    Bin { k: BinK, a: Src, b: Src, dst: u16 },
    /// `dst[l] = k(a[l])` for every lane.
    Un { k: UnK, a: Src, dst: u16 },
    /// `dst[l] = if m[l] != 0 { b[l] } else { a[l] }` — stack join.
    Blend { m: Src, a: Src, b: Src, dst: u16 },
    /// `dst[l] = a[l]` — materializes a local snapshot before the local
    /// is overwritten.
    Copy { a: Src, dst: u16 },
    /// `local[l] = a[l]` where the mask is set.
    StoreLocal { local: u16, a: Src, m: Mask },
    /// Counter fold: `g += Σ delta[l]` over masked lanes (wrapping).
    ReduceAdd { slot: u16, delta: Src, m: Mask },
    /// Min fold: `g = min(g, v[l])` over masked lanes.
    ReduceMin { slot: u16, v: Src, m: Mask },
    /// Max fold: `g = max(g, v[l])` over masked lanes.
    ReduceMax { slot: u16, v: Src, m: Mask },
    /// Gated latch: `g = bits` if any masked lane reached the store.
    GatedStore { slot: u16, bits: i64, m: Mask },
    /// Fuel meter: charge `ops` per lane in the mask.
    Fuel { ops: u32, m: Mask },
}

/// How a pool column gets its value.
#[derive(Debug, Clone, Copy)]
enum PoolEntry {
    /// Broadcast constant (raw bits); filled when the pool is (re)sized.
    Const(i64),
    /// Splat of a read-only static's current value; refilled every run
    /// so the batch sees exactly what the scalar VM would read.
    Global(u16),
}

/// A pure per-lane value: a known constant or a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PV {
    C(i64),
    S(Src),
}

/// Which accumulation family an in-flight static update belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccK {
    Add,
    Min,
    Max,
}

/// Abstract stack cell during vectorization.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Cell {
    /// Lane-pure value.
    P(PV),
    /// `LoadGlobal` of a mutable static, not yet folded into an update.
    G(u16),
    /// Partially-built accumulation: `global[slot] <fold> operand`.
    A { slot: u16, k: AccK, d: PV },
}

/// A control-flow edge parked at a forward jump target.
#[derive(Debug, Clone)]
struct Edge {
    mask: Mask,
    stack: Vec<Cell>,
}

/// A digest program compiled for whole-batch evaluation, plus its
/// reusable column arenas. Create one per worker with
/// [`try_compile`](BatchEval::try_compile); call
/// [`run`](BatchEval::run) per batch.
#[derive(Debug, Clone)]
pub struct BatchEval {
    vops: Vec<VOp>,
    n_inputs: usize,
    /// Input positions the program reads; only these columns are
    /// touched (and length-checked) by [`run`](BatchEval::run).
    used_inputs: Vec<u16>,
    pool_init: Vec<PoolEntry>,
    /// Pool entries that splat statics, refreshed every run.
    gsplats: Vec<(u16, u16)>,
    regs: Vec<Vec<i64>>,
    locals: Vec<Vec<i64>>,
    pool: Vec<Vec<i64>>,
    width: usize,
}

impl BatchEval {
    /// Compiles `program` for batch evaluation. Returns `None` when the
    /// program is outside the vectorizable class — the caller must then
    /// evaluate rows with the scalar VM. `fuel_budget` is the per-row
    /// budget the host would pass to [`Instance::run_raw`]; programs
    /// whose statically-proven worst-case fuel exceeds it are rejected
    /// here so the batch path never needs a per-lane abort.
    pub fn try_compile(program: &Program, plan: &MergePlan, fuel_budget: u64) -> Option<BatchEval> {
        if !plan.fully_mergeable() || fuel::max_fuel(&program.code) > fuel_budget {
            return None;
        }
        Vectorizer::new(program, plan).compile()
    }

    /// Evaluates `rows` lanes against `inst`'s statics and returns the
    /// exact total fuel the scalar VM would have used. `cols` holds one
    /// column of raw input bits per declared input (same contract as
    /// [`Instance::run_raw`]), each at least `rows` long — except
    /// columns of inputs the program never reads
    /// ([`Program::used_inputs`]), which may be left empty.
    pub fn run(&mut self, inst: &mut Instance, cols: &[&[i64]], rows: usize) -> u64 {
        assert_eq!(cols.len(), self.n_inputs, "input column count mismatch");
        assert!(
            self.used_inputs
                .iter()
                .all(|&i| cols[i as usize].len() >= rows),
            "short input column"
        );
        if rows == 0 {
            return 0;
        }
        self.ensure_width(rows);
        for &(pix, slot) in &self.gsplats {
            let v = inst.raw_globals()[slot as usize];
            self.pool[pix as usize][..rows].fill(v);
        }
        for col in &mut self.locals {
            col[..rows].fill(0);
        }

        let mut fuel_used = 0u64;
        for vi in 0..self.vops.len() {
            // `dst` columns are taken out of the arena for the duration
            // of one vector op so operands can be borrowed from `self`;
            // SSA register allocation guarantees `dst` is never also an
            // operand of the same op.
            match self.vops[vi] {
                VOp::Bin { k, a, b, dst } => {
                    let mut d = std::mem::take(&mut self.regs[dst as usize]);
                    bin_kernel(k, &mut d[..rows], self.col(a, cols), self.col(b, cols));
                    self.regs[dst as usize] = d;
                }
                VOp::Un { k, a, dst } => {
                    let mut d = std::mem::take(&mut self.regs[dst as usize]);
                    un_kernel(k, &mut d[..rows], self.col(a, cols));
                    self.regs[dst as usize] = d;
                }
                VOp::Blend { m, a, b, dst } => {
                    let mut d = std::mem::take(&mut self.regs[dst as usize]);
                    {
                        let (m, a, b) = (self.col(m, cols), self.col(a, cols), self.col(b, cols));
                        for l in 0..rows {
                            d[l] = if m[l] != 0 { b[l] } else { a[l] };
                        }
                    }
                    self.regs[dst as usize] = d;
                }
                VOp::Copy { a, dst } => {
                    let mut d = std::mem::take(&mut self.regs[dst as usize]);
                    d[..rows].copy_from_slice(&self.col(a, cols)[..rows]);
                    self.regs[dst as usize] = d;
                }
                VOp::StoreLocal { local, a, m } => {
                    let mut d = std::mem::take(&mut self.locals[local as usize]);
                    {
                        let a = self.col(a, cols);
                        match m.map(|m| self.col(m, cols)) {
                            None => d[..rows].copy_from_slice(&a[..rows]),
                            Some(m) => {
                                for l in 0..rows {
                                    if m[l] != 0 {
                                        d[l] = a[l];
                                    }
                                }
                            }
                        }
                    }
                    self.locals[local as usize] = d;
                }
                VOp::ReduceAdd { slot, delta, m } => {
                    let mut acc = 0i64;
                    let d = self.col(delta, cols);
                    match m.map(|m| self.col(m, cols)) {
                        None => {
                            for &v in &d[..rows] {
                                acc = acc.wrapping_add(v);
                            }
                        }
                        Some(m) => {
                            for l in 0..rows {
                                let keep = -((m[l] != 0) as i64);
                                acc = acc.wrapping_add(d[l] & keep);
                            }
                        }
                    }
                    let g = &mut inst.globals_mut()[slot as usize];
                    *g = g.wrapping_add(acc);
                }
                VOp::ReduceMin { slot, v, m } => {
                    let mut cur = inst.raw_globals()[slot as usize];
                    let d = self.col(v, cols);
                    match m.map(|m| self.col(m, cols)) {
                        None => {
                            for &v in &d[..rows] {
                                cur = cur.min(v);
                            }
                        }
                        Some(m) => {
                            for l in 0..rows {
                                cur = cur.min(if m[l] != 0 { d[l] } else { i64::MAX });
                            }
                        }
                    }
                    inst.globals_mut()[slot as usize] = cur;
                }
                VOp::ReduceMax { slot, v, m } => {
                    let mut cur = inst.raw_globals()[slot as usize];
                    let d = self.col(v, cols);
                    match m.map(|m| self.col(m, cols)) {
                        None => {
                            for &v in &d[..rows] {
                                cur = cur.max(v);
                            }
                        }
                        Some(m) => {
                            for l in 0..rows {
                                cur = cur.max(if m[l] != 0 { d[l] } else { i64::MIN });
                            }
                        }
                    }
                    inst.globals_mut()[slot as usize] = cur;
                }
                VOp::GatedStore { slot, bits, m } => {
                    let fired = match m.map(|m| self.col(m, cols)) {
                        None => true,
                        Some(m) => m[..rows].iter().any(|&v| v != 0),
                    };
                    if fired {
                        inst.globals_mut()[slot as usize] = bits;
                    }
                }
                VOp::Fuel { ops, m } => {
                    let lanes = match m.map(|m| self.col(m, cols)) {
                        None => rows as u64,
                        Some(m) => m[..rows].iter().map(|&v| (v != 0) as u64).sum(),
                    };
                    fuel_used += ops as u64 * lanes;
                }
            }
        }
        fuel_used
    }

    fn ensure_width(&mut self, rows: usize) {
        if self.width >= rows {
            return;
        }
        self.width = rows;
        for r in &mut self.regs {
            r.resize(rows, 0);
        }
        for l in &mut self.locals {
            l.resize(rows, 0);
        }
        for (col, entry) in self.pool.iter_mut().zip(&self.pool_init) {
            col.resize(rows, 0);
            if let PoolEntry::Const(bits) = entry {
                col.fill(*bits);
            }
        }
    }

    fn col<'a>(&'a self, src: Src, cols: &'a [&'a [i64]]) -> &'a [i64] {
        match src {
            Src::Input(i) => cols[i as usize],
            Src::Reg(i) => &self.regs[i as usize],
            Src::Local(i) => &self.locals[i as usize],
            Src::Pool(i) => &self.pool[i as usize],
        }
    }
}

fn bin_kernel(k: BinK, d: &mut [i64], a: &[i64], b: &[i64]) {
    #[inline(always)]
    fn lanes(d: &mut [i64], a: &[i64], b: &[i64], f: impl Fn(i64, i64) -> i64) {
        let n = d.len();
        for ((d, &x), &y) in d.iter_mut().zip(&a[..n]).zip(&b[..n]) {
            *d = f(x, y);
        }
    }
    #[inline(always)]
    fn f(x: i64) -> f64 {
        f64::from_bits(x as u64)
    }
    #[inline(always)]
    fn fb(x: f64) -> i64 {
        x.to_bits() as i64
    }
    match k {
        BinK::AddI => lanes(d, a, b, |x, y| x.wrapping_add(y)),
        BinK::SubI => lanes(d, a, b, |x, y| x.wrapping_sub(y)),
        BinK::MulI => lanes(d, a, b, |x, y| x.wrapping_mul(y)),
        // Divisors are compile-time constants proven nonzero, so the
        // full-lane sweep cannot trap.
        BinK::DivI => lanes(d, a, b, |x, y| x.wrapping_div(y)),
        BinK::ModI => lanes(d, a, b, |x, y| x.wrapping_rem(y)),
        BinK::AddF => lanes(d, a, b, |x, y| fb(f(x) + f(y))),
        BinK::SubF => lanes(d, a, b, |x, y| fb(f(x) - f(y))),
        BinK::MulF => lanes(d, a, b, |x, y| fb(f(x) * f(y))),
        BinK::DivF => lanes(d, a, b, |x, y| fb(f(x) / f(y))),
        BinK::EqI => lanes(d, a, b, |x, y| (x == y) as i64),
        BinK::NeI => lanes(d, a, b, |x, y| (x != y) as i64),
        BinK::LtI => lanes(d, a, b, |x, y| (x < y) as i64),
        BinK::LeI => lanes(d, a, b, |x, y| (x <= y) as i64),
        BinK::GtI => lanes(d, a, b, |x, y| (x > y) as i64),
        BinK::GeI => lanes(d, a, b, |x, y| (x >= y) as i64),
        BinK::EqF => lanes(d, a, b, |x, y| (f(x) == f(y)) as i64),
        BinK::NeF => lanes(d, a, b, |x, y| (f(x) != f(y)) as i64),
        BinK::LtF => lanes(d, a, b, |x, y| (f(x) < f(y)) as i64),
        BinK::LeF => lanes(d, a, b, |x, y| (f(x) <= f(y)) as i64),
        BinK::GtF => lanes(d, a, b, |x, y| (f(x) > f(y)) as i64),
        BinK::GeF => lanes(d, a, b, |x, y| (f(x) >= f(y)) as i64),
        BinK::MinI => lanes(d, a, b, |x, y| x.min(y)),
        BinK::MinF => lanes(d, a, b, |x, y| fb(f(x).min(f(y)))),
        BinK::MaxI => lanes(d, a, b, |x, y| x.max(y)),
        BinK::MaxF => lanes(d, a, b, |x, y| fb(f(x).max(f(y)))),
        BinK::AndB => lanes(d, a, b, |x, y| x & y),
        BinK::AndNotB => lanes(d, a, b, |x, y| x & (y ^ 1)),
        BinK::OrB => lanes(d, a, b, |x, y| x | y),
    }
}

fn un_kernel(k: UnK, d: &mut [i64], a: &[i64]) {
    #[inline(always)]
    fn lanes(d: &mut [i64], a: &[i64], f: impl Fn(i64) -> i64) {
        let n = d.len();
        for (d, &x) in d.iter_mut().zip(&a[..n]) {
            *d = f(x);
        }
    }
    match k {
        UnK::NegI => lanes(d, a, |x| x.wrapping_neg()),
        UnK::NegF => lanes(d, a, |x| (-f64::from_bits(x as u64)).to_bits() as i64),
        UnK::NotB => lanes(d, a, |x| (x == 0) as i64),
        UnK::AbsI => lanes(d, a, |x| x.wrapping_abs()),
        UnK::AbsF => lanes(d, a, |x| f64::from_bits(x as u64).abs().to_bits() as i64),
        UnK::I2F => lanes(d, a, |x| ((x as f64).to_bits()) as i64),
    }
}

/// One-pass abstract interpreter that lowers bytecode to [`VOp`]s.
/// Returns `None` ("bail") on any shape outside the vectorizable class.
struct Vectorizer<'a> {
    program: &'a Program,
    plan: &'a MergePlan,
    vops: Vec<VOp>,
    n_regs: u16,
    pool_init: Vec<PoolEntry>,
    pool_ix: HashMap<i64, u16>,
    gsplat_ix: HashMap<u16, u16>,
    cur_mask: Mask,
    stack: Vec<Cell>,
    live: bool,
    pending: BTreeMap<u32, Vec<Edge>>,
    fuel_pending: u32,
}

impl<'a> Vectorizer<'a> {
    fn new(program: &'a Program, plan: &'a MergePlan) -> Self {
        Vectorizer {
            program,
            plan,
            vops: Vec::new(),
            n_regs: 0,
            pool_init: Vec::new(),
            pool_ix: HashMap::new(),
            gsplat_ix: HashMap::new(),
            cur_mask: None,
            stack: Vec::new(),
            live: true,
            pending: BTreeMap::new(),
            fuel_pending: 0,
        }
    }

    fn reg(&mut self) -> u16 {
        let r = self.n_regs;
        self.n_regs += 1;
        r
    }

    fn cpool(&mut self, bits: i64) -> Src {
        if let Some(&ix) = self.pool_ix.get(&bits) {
            return Src::Pool(ix);
        }
        let ix = self.pool_init.len() as u16;
        self.pool_init.push(PoolEntry::Const(bits));
        self.pool_ix.insert(bits, ix);
        Src::Pool(ix)
    }

    fn gpool(&mut self, slot: u16) -> Src {
        if let Some(&ix) = self.gsplat_ix.get(&slot) {
            return Src::Pool(ix);
        }
        let ix = self.pool_init.len() as u16;
        self.pool_init.push(PoolEntry::Global(slot));
        self.gsplat_ix.insert(slot, ix);
        Src::Pool(ix)
    }

    fn src(&mut self, pv: PV) -> Src {
        match pv {
            PV::C(bits) => self.cpool(bits),
            PV::S(s) => s,
        }
    }

    /// Emits a lane-wise binary op, constant-folding when both operands
    /// are known. Folding uses the scalar VM's exact semantics; a folded
    /// division by zero bails (the scalar path must trap instead).
    fn bin(&mut self, k: BinK, a: PV, b: PV) -> Option<PV> {
        if let (PV::C(x), PV::C(y)) = (a, b) {
            let mut d = [0i64];
            if matches!(k, BinK::DivI | BinK::ModI) && y == 0 {
                return None;
            }
            bin_kernel(k, &mut d, &[x], &[y]);
            return Some(PV::C(d[0]));
        }
        // Non-constant division can hit a zero lane the scalar path
        // would trap on; only constant nonzero divisors vectorize.
        if matches!(k, BinK::DivI | BinK::ModI) && !matches!(b, PV::C(c) if c != 0) {
            return None;
        }
        let (a, b) = (self.src(a), self.src(b));
        let dst = self.reg();
        self.vops.push(VOp::Bin { k, a, b, dst });
        Some(PV::S(Src::Reg(dst)))
    }

    fn un(&mut self, k: UnK, a: PV) -> PV {
        if let PV::C(x) = a {
            let mut d = [0i64];
            un_kernel(k, &mut d, &[x]);
            return PV::C(d[0]);
        }
        let a = self.src(a);
        let dst = self.reg();
        self.vops.push(VOp::Un { k, a, dst });
        PV::S(Src::Reg(dst))
    }

    fn pop(&mut self) -> Option<Cell> {
        self.stack.pop()
    }

    fn pop_pv(&mut self) -> Option<PV> {
        match self.pop()? {
            Cell::P(pv) => Some(pv),
            _ => None,
        }
    }

    fn push(&mut self, c: Cell) {
        self.stack.push(c);
    }

    /// Charges the ops accumulated since the last mask change.
    fn flush_fuel(&mut self) {
        if self.fuel_pending > 0 {
            let m = self.cur_mask;
            self.vops.push(VOp::Fuel {
                ops: self.fuel_pending,
                m,
            });
            self.fuel_pending = 0;
        }
    }

    /// A local is about to be overwritten: any live reference to its
    /// column (current stack, parked edges) still means the *old* value,
    /// so snapshot it into a register first. Masks never reference
    /// locals (conditions are copied to registers before becoming
    /// masks), so only cells need rewriting.
    fn protect_local(&mut self, local: u16) {
        let uses = |c: &Cell| {
            let pv_uses = |pv: &PV| matches!(pv, PV::S(Src::Local(l)) if *l == local);
            match c {
                Cell::P(pv) => pv_uses(pv),
                Cell::G(_) => false,
                Cell::A { d, .. } => pv_uses(d),
            }
        };
        let needed = self.stack.iter().any(uses)
            || self
                .pending
                .values()
                .flatten()
                .any(|e| e.stack.iter().any(uses));
        if !needed {
            return;
        }
        let dst = self.reg();
        self.vops.push(VOp::Copy {
            a: Src::Local(local),
            dst,
        });
        let r = PV::S(Src::Reg(dst));
        let fix = |pv: &mut PV| {
            if matches!(pv, PV::S(Src::Local(l)) if *l == local) {
                *pv = r;
            }
        };
        let fix_cell = |c: &mut Cell| match c {
            Cell::P(pv) => fix(pv),
            Cell::G(_) => {}
            Cell::A { d, .. } => fix(d),
        };
        for c in self.stack.iter_mut() {
            fix_cell(c);
        }
        for e in self.pending.values_mut().flatten() {
            for c in e.stack.iter_mut() {
                fix_cell(c);
            }
        }
    }

    /// A condition becoming part of mask algebra must not alias a
    /// mutable local column; snapshot it if it does.
    fn mask_safe(&mut self, s: Src) -> Src {
        if let Src::Local(_) = s {
            let dst = self.reg();
            self.vops.push(VOp::Copy { a: s, dst });
            Src::Reg(dst)
        } else {
            s
        }
    }

    fn or_mask(&mut self, a: Mask, b: Mask) -> Mask {
        match (a, b) {
            (None, _) | (_, None) => None,
            (Some(x), Some(y)) => {
                let dst = self.reg();
                self.vops.push(VOp::Bin {
                    k: BinK::OrB,
                    a: x,
                    b: y,
                    dst,
                });
                Some(Src::Reg(dst))
            }
        }
    }

    /// Merges every edge parked at `pc` into the live state. Rows arrive
    /// via exactly one incoming path, so blending per-edge is exact and
    /// merge order cannot matter.
    fn merge_at(&mut self, pc: u32) -> Option<()> {
        let Some(edges) = self.pending.remove(&pc) else {
            return Some(());
        };
        self.flush_fuel();
        for edge in edges {
            if !self.live {
                self.cur_mask = edge.mask;
                self.stack = edge.stack;
                self.live = true;
                continue;
            }
            if edge.stack.len() != self.stack.len() {
                return None;
            }
            for i in 0..self.stack.len() {
                let cur = self.stack[i].clone();
                let inc = edge.stack[i].clone();
                if cur == inc {
                    continue;
                }
                // Divergent values must be lane-pure to blend; the
                // incoming edge always carries a real mask (a fall-
                // through with all lanes leaves nothing to park).
                let (Cell::P(a), Cell::P(b)) = (cur, inc) else {
                    return None;
                };
                let m = edge.mask?;
                let (a, b) = (self.src(a), self.src(b));
                let dst = self.reg();
                self.vops.push(VOp::Blend { m, a, b, dst });
                self.stack[i] = Cell::P(PV::S(Src::Reg(dst)));
            }
            self.cur_mask = self.or_mask(self.cur_mask, edge.mask);
        }
        Some(())
    }

    fn park(&mut self, target: u32) {
        let edge = Edge {
            mask: self.cur_mask,
            stack: self.stack.clone(),
        };
        self.pending.entry(target).or_default().push(edge);
    }

    fn compile(mut self) -> Option<BatchEval> {
        let code = self.program.code.clone();
        for (pc, op) in code.iter().enumerate() {
            self.merge_at(pc as u32)?;
            if !self.live {
                continue;
            }
            self.fuel_pending += 1;
            match *op {
                Op::ConstI(v) => self.push(Cell::P(PV::C(v))),
                Op::ConstF(v) => self.push(Cell::P(PV::C(v.to_bits() as i64))),
                Op::LoadInput(i) => self.push(Cell::P(PV::S(Src::Input(i)))),
                Op::LoadLocal(i) => self.push(Cell::P(PV::S(Src::Local(i)))),
                Op::LoadGlobal(i) => match self.plan.slots.get(i as usize)?.class {
                    MergeClass::ReadOnly => {
                        let s = self.gpool(i);
                        self.push(Cell::P(PV::S(s)));
                    }
                    MergeClass::Counter | MergeClass::MinMax(_) | MergeClass::GatedWrite { .. } => {
                        self.push(Cell::G(i))
                    }
                    _ => return None,
                },
                Op::StoreLocal(i) => {
                    let Cell::P(pv) = self.pop()? else {
                        return None;
                    };
                    let a = self.src(pv);
                    if a == Src::Local(i) {
                        // `x = x` — identity under any mask.
                        continue;
                    }
                    self.protect_local(i);
                    let m = self.cur_mask;
                    self.vops.push(VOp::StoreLocal { local: i, a, m });
                }
                Op::StoreGlobal(s) => {
                    let cell = self.pop()?;
                    let class = &self.plan.slots.get(s as usize)?.class;
                    let m = self.cur_mask;
                    match cell {
                        // `g = g` — identity.
                        Cell::G(t) if t == s => {}
                        Cell::A { slot, k, d } if slot == s => {
                            let v = self.src(d);
                            match (k, class) {
                                (AccK::Add, MergeClass::Counter) => {
                                    self.vops.push(VOp::ReduceAdd {
                                        slot: s,
                                        delta: v,
                                        m,
                                    })
                                }
                                (AccK::Min, MergeClass::MinMax(MinMaxOp::Min)) => {
                                    self.vops.push(VOp::ReduceMin { slot: s, v, m })
                                }
                                (AccK::Max, MergeClass::MinMax(MinMaxOp::Max)) => {
                                    self.vops.push(VOp::ReduceMax { slot: s, v, m })
                                }
                                _ => return None,
                            }
                        }
                        Cell::P(PV::C(bits)) => match class {
                            MergeClass::GatedWrite { value_bits } if *value_bits == bits => {
                                self.vops.push(VOp::GatedStore { slot: s, bits, m })
                            }
                            _ => return None,
                        },
                        _ => return None,
                    }
                }
                Op::AddI | Op::SubI | Op::MinI | Op::MaxI => {
                    let r = self.pop()?;
                    let l = self.pop()?;
                    let cell = self.acc_or_bin(*op, l, r)?;
                    self.push(cell);
                }
                Op::MulI => {
                    let r = self.pop_pv()?;
                    let l = self.pop_pv()?;
                    let v = self.bin(BinK::MulI, l, r)?;
                    self.push(Cell::P(v));
                }
                Op::DivI | Op::ModI => {
                    let r = self.pop_pv()?;
                    let l = self.pop_pv()?;
                    let k = if matches!(*op, Op::DivI) {
                        BinK::DivI
                    } else {
                        BinK::ModI
                    };
                    let v = self.bin(k, l, r)?;
                    self.push(Cell::P(v));
                }
                Op::NegI => self.unop(UnK::NegI)?,
                Op::AddF => self.binop(BinK::AddF)?,
                Op::SubF => self.binop(BinK::SubF)?,
                Op::MulF => self.binop(BinK::MulF)?,
                Op::DivF => self.binop(BinK::DivF)?,
                Op::NegF => self.unop(UnK::NegF)?,
                Op::I2F => self.unop(UnK::I2F)?,
                Op::I2FUnder => {
                    let top = self.pop()?;
                    let under = self.pop_pv()?;
                    let conv = self.un(UnK::I2F, under);
                    self.push(Cell::P(conv));
                    self.push(top);
                }
                Op::EqI => self.binop(BinK::EqI)?,
                Op::NeI => self.binop(BinK::NeI)?,
                Op::LtI => self.binop(BinK::LtI)?,
                Op::LeI => self.binop(BinK::LeI)?,
                Op::GtI => self.binop(BinK::GtI)?,
                Op::GeI => self.binop(BinK::GeI)?,
                Op::EqF => self.binop(BinK::EqF)?,
                Op::NeF => self.binop(BinK::NeF)?,
                Op::LtF => self.binop(BinK::LtF)?,
                Op::LeF => self.binop(BinK::LeF)?,
                Op::GtF => self.binop(BinK::GtF)?,
                Op::GeF => self.binop(BinK::GeF)?,
                Op::NotB => self.unop(UnK::NotB)?,
                Op::AbsI => self.unop(UnK::AbsI)?,
                Op::AbsF => self.unop(UnK::AbsF)?,
                Op::MinF => self.binop(BinK::MinF)?,
                Op::MaxF => self.binop(BinK::MaxF)?,
                // `out()` streams are per-row observable side effects the
                // batch path does not reproduce — scalar fallback.
                Op::Out => return None,
                Op::Pop => {
                    self.pop()?;
                }
                Op::Jmp(t) => {
                    self.flush_fuel();
                    self.park(t);
                    self.stack.clear();
                    self.live = false;
                }
                Op::JmpIfFalse(t) => {
                    let cond = self.pop_pv()?;
                    self.flush_fuel();
                    match cond {
                        PV::C(c) => {
                            if c == 0 {
                                // Every live lane jumps.
                                self.park(t);
                                self.stack.clear();
                                self.live = false;
                            }
                            // Constant-true: straight fall-through.
                        }
                        PV::S(s) => {
                            let c = self.mask_safe(s);
                            let (m_then, m_else) = match self.cur_mask {
                                None => {
                                    let not = self.un(UnK::NotB, PV::S(c));
                                    (Some(c), Some(self.src(not)))
                                }
                                Some(m) => {
                                    let t_ = self.bin(BinK::AndB, PV::S(m), PV::S(c))?;
                                    let e_ = self.bin(BinK::AndNotB, PV::S(m), PV::S(c))?;
                                    (Some(self.src(t_)), Some(self.src(e_)))
                                }
                            };
                            self.cur_mask = m_else;
                            self.park(t);
                            self.cur_mask = m_then;
                        }
                    }
                }
                Op::Ret => {
                    // Return values are not observable through the batch
                    // API; discarding any cell (even a static read) has
                    // no side effect.
                    self.pop()?;
                    self.flush_fuel();
                    self.stack.clear();
                    self.live = false;
                }
                Op::RetVoid => {
                    self.flush_fuel();
                    self.stack.clear();
                    self.live = false;
                }
            }
        }
        // A parked edge past the end would mean the validator let a jump
        // escape the program — treat as non-vectorizable, not UB.
        if !self.pending.is_empty() || self.live {
            return None;
        }
        let n_pool = self.pool_init.len();
        let gsplats = self
            .pool_init
            .iter()
            .enumerate()
            .filter_map(|(ix, e)| match e {
                PoolEntry::Global(slot) => Some((ix as u16, *slot)),
                PoolEntry::Const(_) => None,
            })
            .collect();
        Some(BatchEval {
            vops: self.vops,
            n_inputs: self.program.inputs.len(),
            used_inputs: self
                .program
                .used_inputs()
                .iter()
                .enumerate()
                .filter(|(_, &u)| u)
                .map(|(i, _)| i as u16)
                .collect(),
            pool_init: self.pool_init,
            gsplats,
            regs: vec![Vec::new(); self.n_regs as usize],
            locals: vec![Vec::new(); self.program.n_locals as usize],
            pool: vec![Vec::new(); n_pool],
            width: 0,
        })
    }

    /// Lane-wise binary op on two popped pure values.
    fn binop(&mut self, k: BinK) -> Option<()> {
        let r = self.pop_pv()?;
        let l = self.pop_pv()?;
        let v = self.bin(k, l, r)?;
        self.push(Cell::P(v));
        Some(())
    }

    /// Lane-wise unary op on a popped pure value.
    fn unop(&mut self, k: UnK) -> Option<()> {
        let a = self.pop_pv()?;
        let v = self.un(k, a);
        self.push(Cell::P(v));
        Some(())
    }

    /// `AddI`/`SubI`/`MinI`/`MaxI` over cells that may carry an
    /// in-flight accumulation. Compositions mirror the fold algebra:
    /// `(g + a) + b ≡ g + (a + b)` (wrapping), `min(min(g,a),b) ≡
    /// min(g, min(a,b))`, so collapsing the operand side is exact.
    fn acc_or_bin(&mut self, op: Op, l: Cell, r: Cell) -> Option<Cell> {
        use AccK::*;
        let acc = |slot, k, d| Some(Cell::A { slot, k, d });
        match (op, l, r) {
            (Op::AddI, Cell::G(s), Cell::P(p)) | (Op::AddI, Cell::P(p), Cell::G(s)) => {
                acc(s, Add, p)
            }
            (Op::AddI, Cell::A { slot, k: Add, d }, Cell::P(p))
            | (Op::AddI, Cell::P(p), Cell::A { slot, k: Add, d }) => {
                let d = self.bin(BinK::AddI, d, p)?;
                acc(slot, Add, d)
            }
            (Op::SubI, Cell::G(s), Cell::P(p)) => {
                let d = self.un(UnK::NegI, p);
                acc(s, Add, d)
            }
            (Op::SubI, Cell::A { slot, k: Add, d }, Cell::P(p)) => {
                let d = self.bin(BinK::SubI, d, p)?;
                acc(slot, Add, d)
            }
            (Op::MinI, Cell::G(s), Cell::P(p)) | (Op::MinI, Cell::P(p), Cell::G(s)) => {
                acc(s, Min, p)
            }
            (Op::MinI, Cell::A { slot, k: Min, d }, Cell::P(p))
            | (Op::MinI, Cell::P(p), Cell::A { slot, k: Min, d }) => {
                let d = self.bin(BinK::MinI, d, p)?;
                acc(slot, Min, d)
            }
            (Op::MaxI, Cell::G(s), Cell::P(p)) | (Op::MaxI, Cell::P(p), Cell::G(s)) => {
                acc(s, Max, p)
            }
            (Op::MaxI, Cell::A { slot, k: Max, d }, Cell::P(p))
            | (Op::MaxI, Cell::P(p), Cell::A { slot, k: Max, d }) => {
                let d = self.bin(BinK::MaxI, d, p)?;
                acc(slot, Max, d)
            }
            (Op::AddI, Cell::P(l), Cell::P(r)) => Some(Cell::P(self.bin(BinK::AddI, l, r)?)),
            (Op::SubI, Cell::P(l), Cell::P(r)) => Some(Cell::P(self.bin(BinK::SubI, l, r)?)),
            (Op::MinI, Cell::P(l), Cell::P(r)) => Some(Cell::P(self.bin(BinK::MinI, l, r)?)),
            (Op::MaxI, Cell::P(l), Cell::P(r)) => Some(Cell::P(self.bin(BinK::MaxI, l, r)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{verify, VerifyLimits};
    use crate::{Instance, Type};

    const BUDGET: u64 = 10_000;

    fn compiled(src: &str, inputs: &[(&str, Type)]) -> (Program, MergePlan) {
        let v = verify(src, inputs, &VerifyLimits::default()).expect("verifies");
        let (program, report) = v.into_parts();
        (program, report.merge_plan)
    }

    /// Runs `rows` through both engines and asserts statics + fuel match
    /// bit-for-bit.
    fn differential(src: &str, inputs: &[(&str, Type)], rows: &[Vec<i64>]) {
        let (program, plan) = compiled(src, inputs);
        let mut be =
            BatchEval::try_compile(&program, &plan, BUDGET).expect("program should vectorize");

        let mut scalar = Instance::new(&program);
        let mut scalar_fuel = 0u64;
        for row in rows {
            let out = scalar.run_raw(row, BUDGET).expect("scalar run");
            scalar_fuel += out.fuel_used;
        }

        let mut vector = Instance::new(&program);
        let n = rows.len();
        let mut cols: Vec<Vec<i64>> = vec![Vec::with_capacity(n); inputs.len()];
        for row in rows {
            for (c, v) in cols.iter_mut().zip(row) {
                c.push(*v);
            }
        }
        let col_refs: Vec<&[i64]> = cols.iter().map(|c| c.as_slice()).collect();
        // Split into two uneven batches to cover batch-boundary reuse.
        let cut = n / 3;
        let head: Vec<&[i64]> = col_refs.iter().map(|c| &c[..cut]).collect();
        let tail: Vec<&[i64]> = col_refs.iter().map(|c| &c[cut..]).collect();
        let mut vector_fuel = be.run(&mut vector, &head, cut);
        vector_fuel += be.run(&mut vector, &tail, n - cut);

        assert_eq!(
            scalar.raw_globals(),
            vector.raw_globals(),
            "statics diverge"
        );
        assert_eq!(scalar_fuel, vector_fuel, "fuel diverges");
    }

    fn det_rows(n: usize, width: usize) -> Vec<Vec<i64>> {
        // Deterministic pseudo-random rows (splitmix64).
        let mut s = 0x9e37_79b9_97f4_a7c1_u64;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as i64
        };
        (0..n)
            .map(|_| (0..width).map(|_| next().rem_euclid(1000)).collect())
            .collect()
    }

    #[test]
    fn counters_minmax_and_gates_match_scalar() {
        let src = r#"
            static int requests = 0;
            static int bytes = 0;
            static int worst = 0;
            static int best = 1000000;
            static int seen_big = 0;
            if (kind == 2 && status == 0) {
                requests = requests + 1;
                bytes = bytes + size;
                worst = max(worst, rtt);
                best = min(best, rtt);
                if (size > 600) { seen_big = 1; }
            }
            return requests;
        "#;
        let inputs = &[
            ("kind", Type::Int),
            ("status", Type::Int),
            ("size", Type::Int),
            ("rtt", Type::Int),
        ];
        let mut rows = det_rows(500, 4);
        for r in rows.iter_mut() {
            r[0] %= 4; // kind hits 2 often
            r[1] %= 2;
        }
        differential(src, inputs, &rows);
    }

    #[test]
    fn locals_branches_and_arithmetic_match_scalar() {
        let src = r#"
            static int total = 0;
            static int spikes = 0;
            int d = end - start;
            if (d < 0) { d = 0 - d; }
            int weighted = d * 3 + size / 8;
            if (weighted > 500 || kind == 7) {
                spikes = spikes + 1;
            }
            total = total + weighted % 97;
            return total;
        "#;
        let inputs = &[
            ("start", Type::Int),
            ("end", Type::Int),
            ("size", Type::Int),
            ("kind", Type::Int),
        ];
        let mut rows = det_rows(333, 4);
        for r in rows.iter_mut() {
            r[3] %= 9;
        }
        differential(src, inputs, &rows);
    }

    #[test]
    fn short_circuit_joins_match_scalar() {
        let src = r#"
            static int hits = 0;
            if (a > 10 && b > 20 || c == 0) {
                hits = hits + a + b;
            }
            return hits;
        "#;
        let inputs = &[("a", Type::Int), ("b", Type::Int), ("c", Type::Int)];
        let mut rows = det_rows(257, 3);
        for r in rows.iter_mut() {
            r[0] %= 30;
            r[1] %= 40;
            r[2] %= 3;
        }
        differential(src, inputs, &rows);
    }

    #[test]
    fn out_and_nonconst_division_bail_to_scalar() {
        let (p, plan) = compiled(
            "static int n = 0; n = n + 1; out(0, 1.0); return n;",
            &[("x", Type::Int)],
        );
        assert!(BatchEval::try_compile(&p, &plan, BUDGET).is_none(), "out()");

        let (p, plan) = compiled(
            "static int n = 0; n = n + a / b; return n;",
            &[("a", Type::Int), ("b", Type::Int)],
        );
        assert!(
            BatchEval::try_compile(&p, &plan, BUDGET).is_none(),
            "non-constant divisor"
        );
    }

    #[test]
    fn tiny_fuel_budget_bails_instead_of_aborting_mid_batch() {
        let (p, plan) = compiled(
            "static int n = 0; n = n + 1; return n;",
            &[("x", Type::Int)],
        );
        assert!(BatchEval::try_compile(&p, &plan, 2).is_none());
        assert!(BatchEval::try_compile(&p, &plan, BUDGET).is_some());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (p, plan) = compiled(
            "static int n = 0; n = n + 1; return n;",
            &[("x", Type::Int)],
        );
        let mut be = BatchEval::try_compile(&p, &plan, BUDGET).unwrap();
        let mut inst = Instance::new(&p);
        let empty: &[i64] = &[];
        assert_eq!(be.run(&mut inst, &[empty], 0), 0);
        assert_eq!(inst.raw_globals(), Instance::new(&p).raw_globals());
    }

    #[test]
    fn float_lane_math_matches_scalar_bitwise() {
        let src = r#"
            static int slow = 0;
            double us = dur * 0.001;
            if (us > 1.5) { slow = slow + 1; }
            return slow;
        "#;
        let rows = det_rows(200, 1);
        differential(src, &[("dur", Type::Int)], &rows);
    }
}
