//! Type checking and bytecode generation.

use std::collections::HashMap;

use crate::lexer::lex;
use crate::parser::{AstType, BinOp, Expr, Parser, Stmt, UnOp};
use crate::vm::Op;
use crate::EcodeError;

/// Value types in the E-Code type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Double,
    /// Boolean.
    Bool,
}

impl From<AstType> for Type {
    fn from(t: AstType) -> Type {
        match t {
            AstType::Int => Type::Int,
            AstType::Double => Type::Double,
            AstType::Bool => Type::Bool,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum VarSlot {
    Input(u16, Type),
    Global(u16, Type),
    Local(u16, Type),
}

impl VarSlot {
    fn ty(self) -> Type {
        match self {
            VarSlot::Input(_, t) | VarSlot::Global(_, t) | VarSlot::Local(_, t) => t,
        }
    }
}

/// A compiled E-Code program: bytecode plus variable layout. Immutable and
/// shareable; per-analyzer state lives in [`Instance`](crate::Instance).
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) code: Vec<Op>,
    pub(crate) inputs: Vec<(String, Type)>,
    pub(crate) globals: Vec<(String, Type, GlobalInit)>,
    pub(crate) n_locals: u16,
}

/// Initial value of a static variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum GlobalInit {
    Int(i64),
    Double(f64),
    Bool(bool),
}

struct Compiler {
    code: Vec<Op>,
    vars: HashMap<String, VarSlot>,
    inputs: Vec<(String, Type)>,
    globals: Vec<(String, Type, GlobalInit)>,
    n_locals: u16,
}

impl Program {
    /// Compiles source against the host-declared per-event inputs.
    ///
    /// # Errors
    ///
    /// Lex, parse, or type errors, each carrying a source line.
    pub fn compile(src: &str, inputs: &[(&str, Type)]) -> Result<Program, EcodeError> {
        let stmts = Parser::new(lex(src)?).program()?;
        compile_stmts(&stmts, inputs)
    }

    /// The declared inputs (name, type) in positional order.
    pub fn inputs(&self) -> impl Iterator<Item = (&str, Type)> {
        self.inputs.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Number of bytecode instructions (proxy for code size).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Exact worst-case fuel for this program.
    ///
    /// E-Code has no loops, so the bound is the longest path through the
    /// bytecode's forward-jump DAG. Running with `fuel >=
    /// static_fuel_bound()` can never abort with
    /// [`OutOfFuel`](crate::EcodeError::OutOfFuel).
    pub fn static_fuel_bound(&self) -> u64 {
        crate::analysis::fuel::max_fuel(&self.code)
    }

    /// Which declared inputs the compiled code actually reads
    /// (`used[i]` for input position `i`). Hosts that marshal inputs
    /// per event can skip materializing unused ones — the VM never
    /// inspects their values.
    pub fn used_inputs(&self) -> Vec<bool> {
        let mut used = vec![false; self.inputs.len()];
        for op in &self.code {
            if let Op::LoadInput(i) = op {
                used[*i as usize] = true;
            }
        }
        used
    }
}

/// Type-checks and code-generates an already-parsed program. Shared by
/// [`Program::compile`] and the verifier (which compiles both the
/// original and the optimized AST).
pub(crate) fn compile_stmts(
    stmts: &[Stmt],
    inputs: &[(&str, Type)],
) -> Result<Program, EcodeError> {
    let mut c = Compiler {
        code: Vec::new(),
        vars: HashMap::new(),
        inputs: Vec::new(),
        globals: Vec::new(),
        n_locals: 0,
    };
    for (i, (name, ty)) in inputs.iter().enumerate() {
        c.inputs.push(((*name).to_owned(), *ty));
        c.vars
            .insert((*name).to_owned(), VarSlot::Input(i as u16, *ty));
    }
    c.stmts(stmts)?;
    c.code.push(Op::RetVoid);
    Ok(Program {
        code: c.code,
        inputs: c.inputs,
        globals: c.globals,
        n_locals: c.n_locals,
    })
}

fn terr(line: u32, msg: impl Into<String>) -> EcodeError {
    EcodeError::Types {
        line,
        msg: msg.into(),
    }
}

impl Compiler {
    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), EcodeError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), EcodeError> {
        match s {
            Stmt::Decl {
                is_static,
                ty,
                name,
                init,
                line,
            } => {
                let ty = Type::from(*ty);
                if self.vars.contains_key(name) {
                    return Err(terr(*line, format!("{name:?} is already declared")));
                }
                if *is_static {
                    let init = match init {
                        None => match ty {
                            Type::Int => GlobalInit::Int(0),
                            Type::Double => GlobalInit::Double(0.0),
                            Type::Bool => GlobalInit::Bool(false),
                        },
                        Some(e) => const_init(e, ty, *line)?,
                    };
                    let idx = self.globals.len() as u16;
                    self.globals.push((name.clone(), ty, init));
                    self.vars.insert(name.clone(), VarSlot::Global(idx, ty));
                } else {
                    let idx = self.n_locals;
                    self.n_locals += 1;
                    self.vars.insert(name.clone(), VarSlot::Local(idx, ty));
                    if let Some(e) = init {
                        let et = self.expr(e)?;
                        self.coerce(et, ty, *line)?;
                        self.code.push(Op::StoreLocal(idx));
                    } else {
                        self.code.push(match ty {
                            Type::Double => Op::ConstF(0.0),
                            _ => Op::ConstI(0),
                        });
                        self.code.push(Op::StoreLocal(idx));
                    }
                }
                Ok(())
            }
            Stmt::Assign { name, expr, line } => {
                let slot = *self
                    .vars
                    .get(name)
                    .ok_or_else(|| terr(*line, format!("{name:?} is not declared")))?;
                let et = self.expr(expr)?;
                self.coerce(et, slot.ty(), *line)?;
                match slot {
                    VarSlot::Input(..) => {
                        return Err(terr(*line, format!("cannot assign to input {name:?}")))
                    }
                    VarSlot::Global(i, _) => self.code.push(Op::StoreGlobal(i)),
                    VarSlot::Local(i, _) => self.code.push(Op::StoreLocal(i)),
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                line,
            } => {
                let ct = self.expr(cond)?;
                if ct != Type::Bool {
                    return Err(terr(*line, "if condition must be bool"));
                }
                let jfalse = self.code.len();
                self.code.push(Op::JmpIfFalse(0));
                self.stmts(then_block)?;
                if else_block.is_empty() {
                    let target = self.code.len() as u32;
                    self.code[jfalse] = Op::JmpIfFalse(target);
                } else {
                    let jend = self.code.len();
                    self.code.push(Op::Jmp(0));
                    let else_start = self.code.len() as u32;
                    self.code[jfalse] = Op::JmpIfFalse(else_start);
                    self.stmts(else_block)?;
                    let end = self.code.len() as u32;
                    self.code[jend] = Op::Jmp(end);
                }
                Ok(())
            }
            Stmt::Return { expr, line } => {
                match expr {
                    None => self.code.push(Op::RetVoid),
                    Some(e) => {
                        let t = self.expr(e)?;
                        match t {
                            Type::Int | Type::Bool => self.code.push(Op::Ret),
                            Type::Double => {
                                return Err(terr(
                                    *line,
                                    "return value must be int or bool (host contract)",
                                ))
                            }
                        }
                    }
                }
                Ok(())
            }
            Stmt::Expr { expr, .. } => {
                self.expr(expr)?;
                self.code.push(Op::Pop);
                Ok(())
            }
        }
    }

    /// Inserts a conversion so a value of type `from` can be stored into
    /// `to`.
    fn coerce(&mut self, from: Type, to: Type, line: u32) -> Result<(), EcodeError> {
        match (from, to) {
            (a, b) if a == b => Ok(()),
            (Type::Int, Type::Double) => {
                self.code.push(Op::I2F);
                Ok(())
            }
            (a, b) => Err(terr(line, format!("cannot store {a:?} into {b:?}"))),
        }
    }

    /// Compiles an expression; returns its type, value left on stack.
    fn expr(&mut self, e: &Expr) -> Result<Type, EcodeError> {
        match e {
            Expr::Int(v) => {
                self.code.push(Op::ConstI(*v));
                Ok(Type::Int)
            }
            Expr::Double(v) => {
                self.code.push(Op::ConstF(*v));
                Ok(Type::Double)
            }
            Expr::Bool(v) => {
                self.code.push(Op::ConstI(*v as i64));
                Ok(Type::Bool)
            }
            Expr::Var(name) => {
                let slot = *self
                    .vars
                    .get(name)
                    .ok_or_else(|| terr(0, format!("{name:?} is not declared")))?;
                self.code.push(match slot {
                    VarSlot::Input(i, _) => Op::LoadInput(i),
                    VarSlot::Global(i, _) => Op::LoadGlobal(i),
                    VarSlot::Local(i, _) => Op::LoadLocal(i),
                });
                Ok(slot.ty())
            }
            Expr::Un { op, expr, line } => {
                let t = self.expr(expr)?;
                match op {
                    UnOp::Neg => match t {
                        Type::Int => {
                            self.code.push(Op::NegI);
                            Ok(Type::Int)
                        }
                        Type::Double => {
                            self.code.push(Op::NegF);
                            Ok(Type::Double)
                        }
                        Type::Bool => Err(terr(*line, "cannot negate bool")),
                    },
                    UnOp::Not => match t {
                        Type::Bool => {
                            self.code.push(Op::NotB);
                            Ok(Type::Bool)
                        }
                        _ => Err(terr(*line, "'!' requires bool")),
                    },
                }
            }
            Expr::Bin { op, lhs, rhs, line } => self.bin(*op, lhs, rhs, *line),
            Expr::Call { name, args, line } => self.call(name, args, *line),
        }
    }

    fn bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: u32) -> Result<Type, EcodeError> {
        // Short-circuit logical operators compile to jumps.
        if matches!(op, BinOp::And | BinOp::Or) {
            let lt = self.expr(lhs)?;
            if lt != Type::Bool {
                return Err(terr(line, "logical operator requires bool operands"));
            }
            match op {
                BinOp::And => {
                    // lhs false -> whole expr false without evaluating rhs.
                    let j = self.code.len();
                    self.code.push(Op::JmpIfFalse(0));
                    let rt = self.expr(rhs)?;
                    if rt != Type::Bool {
                        return Err(terr(line, "logical operator requires bool operands"));
                    }
                    let jend = self.code.len();
                    self.code.push(Op::Jmp(0));
                    let false_arm = self.code.len() as u32;
                    self.code[j] = Op::JmpIfFalse(false_arm);
                    self.code.push(Op::ConstI(0));
                    let end = self.code.len() as u32;
                    self.code[jend] = Op::Jmp(end);
                }
                BinOp::Or => {
                    // lhs true -> true; encode as: if (!lhs) rhs else true.
                    self.code.push(Op::NotB);
                    let j = self.code.len();
                    self.code.push(Op::JmpIfFalse(0)); // lhs was true
                    let rt = self.expr(rhs)?;
                    if rt != Type::Bool {
                        return Err(terr(line, "logical operator requires bool operands"));
                    }
                    let jend = self.code.len();
                    self.code.push(Op::Jmp(0));
                    let true_arm = self.code.len() as u32;
                    self.code[j] = Op::JmpIfFalse(true_arm);
                    self.code.push(Op::ConstI(1));
                    let end = self.code.len() as u32;
                    self.code[jend] = Op::Jmp(end);
                }
                _ => unreachable!(),
            }
            return Ok(Type::Bool);
        }

        let lt = self.expr(lhs)?;
        let rt = self.expr(rhs)?;
        let (t, float) = match (lt, rt) {
            (Type::Bool, Type::Bool) if matches!(op, BinOp::Eq | BinOp::Ne) => (Type::Int, false),
            (Type::Bool, _) | (_, Type::Bool) => {
                return Err(terr(line, "arithmetic/comparison on bool"))
            }
            (Type::Int, Type::Int) => (Type::Int, false),
            (Type::Double, Type::Double) => (Type::Double, true),
            (Type::Int, Type::Double) => {
                self.code.push(Op::I2FUnder);
                (Type::Double, true)
            }
            (Type::Double, Type::Int) => {
                self.code.push(Op::I2F);
                (Type::Double, true)
            }
        };
        let result = match op {
            BinOp::Add => {
                self.code.push(if float { Op::AddF } else { Op::AddI });
                t
            }
            BinOp::Sub => {
                self.code.push(if float { Op::SubF } else { Op::SubI });
                t
            }
            BinOp::Mul => {
                self.code.push(if float { Op::MulF } else { Op::MulI });
                t
            }
            BinOp::Div => {
                self.code.push(if float { Op::DivF } else { Op::DivI });
                t
            }
            BinOp::Mod => {
                if float {
                    return Err(terr(line, "'%' requires int operands"));
                }
                self.code.push(Op::ModI);
                t
            }
            BinOp::Eq => {
                self.code.push(if float { Op::EqF } else { Op::EqI });
                Type::Bool
            }
            BinOp::Ne => {
                self.code.push(if float { Op::NeF } else { Op::NeI });
                Type::Bool
            }
            BinOp::Lt => {
                self.code.push(if float { Op::LtF } else { Op::LtI });
                Type::Bool
            }
            BinOp::Le => {
                self.code.push(if float { Op::LeF } else { Op::LeI });
                Type::Bool
            }
            BinOp::Gt => {
                self.code.push(if float { Op::GtF } else { Op::GtI });
                Type::Bool
            }
            BinOp::Ge => {
                self.code.push(if float { Op::GeF } else { Op::GeI });
                Type::Bool
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        };
        Ok(result)
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Type, EcodeError> {
        match name {
            "abs" => {
                if args.len() != 1 {
                    return Err(terr(line, "abs takes one argument"));
                }
                match self.expr(&args[0])? {
                    Type::Int => {
                        self.code.push(Op::AbsI);
                        Ok(Type::Int)
                    }
                    Type::Double => {
                        self.code.push(Op::AbsF);
                        Ok(Type::Double)
                    }
                    Type::Bool => Err(terr(line, "abs requires a numeric argument")),
                }
            }
            "min" | "max" => {
                if args.len() != 2 {
                    return Err(terr(line, format!("{name} takes two arguments")));
                }
                let lt = self.expr(&args[0])?;
                let rt = self.expr(&args[1])?;
                let float = match (lt, rt) {
                    (Type::Int, Type::Int) => false,
                    (Type::Double, Type::Double) => true,
                    (Type::Int, Type::Double) => {
                        self.code.push(Op::I2FUnder);
                        true
                    }
                    (Type::Double, Type::Int) => {
                        self.code.push(Op::I2F);
                        true
                    }
                    _ => return Err(terr(line, format!("{name} requires numeric arguments"))),
                };
                self.code.push(match (name, float) {
                    ("min", false) => Op::MinI,
                    ("min", true) => Op::MinF,
                    ("max", false) => Op::MaxI,
                    ("max", true) => Op::MaxF,
                    _ => unreachable!(),
                });
                Ok(if float { Type::Double } else { Type::Int })
            }
            "out" => {
                if args.len() != 2 {
                    return Err(terr(line, "out takes (slot, value)"));
                }
                if self.expr(&args[0])? != Type::Int {
                    return Err(terr(line, "out slot must be int"));
                }
                match self.expr(&args[1])? {
                    Type::Double => {}
                    Type::Int => self.code.push(Op::I2F),
                    Type::Bool => return Err(terr(line, "out value must be numeric")),
                }
                self.code.push(Op::Out);
                // out is a statement-like call; it leaves 0 on the stack so
                // expression-statement Pop stays uniform.
                self.code.push(Op::ConstI(0));
                Ok(Type::Int)
            }
            _ => Err(terr(line, format!("unknown function {name:?}"))),
        }
    }
}

fn const_init(e: &Expr, ty: Type, line: u32) -> Result<GlobalInit, EcodeError> {
    let fail = || {
        terr(
            line,
            "static initializer must be a constant literal (optionally negated)",
        )
    };
    let init = match e {
        Expr::Int(v) => GlobalInit::Int(*v),
        Expr::Double(v) => GlobalInit::Double(*v),
        Expr::Bool(v) => GlobalInit::Bool(*v),
        Expr::Un {
            op: UnOp::Neg,
            expr,
            ..
        } => match expr.as_ref() {
            Expr::Int(v) => GlobalInit::Int(-*v),
            Expr::Double(v) => GlobalInit::Double(-*v),
            _ => return Err(fail()),
        },
        _ => return Err(fail()),
    };
    // Allow int literal to initialize a double.
    let init = match (init, ty) {
        (GlobalInit::Int(v), Type::Double) => GlobalInit::Double(v as f64),
        (i, _) => i,
    };
    let matches_ty = matches!(
        (init, ty),
        (GlobalInit::Int(_), Type::Int)
            | (GlobalInit::Double(_), Type::Double)
            | (GlobalInit::Bool(_), Type::Bool)
    );
    if !matches_ty {
        return Err(terr(line, "static initializer type mismatch"));
    }
    Ok(init)
}

#[cfg(test)]
#[allow(unused)] // a typecheck-only proptest elides macro bodies, orphaning these imports
mod compile_fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The compiler is total on arbitrary input: every string either
        /// compiles or returns a typed error with a line number — it never
        /// panics. (CPA sources arrive from administrators at runtime.)
        #[test]
        fn prop_compile_total(src in ".{0,200}") {
            let _ = Program::compile(&src, &[("x", Type::Int)]);
        }

        /// Structured-ish garbage: fragments assembled from language
        /// tokens stress the parser deeper than uniform random text.
        #[test]
        fn prop_compile_total_tokenish(
            parts in proptest::collection::vec(
                prop::sample::select(vec![
                    "int", "double", "bool", "static", "if", "else",
                    "return", "x", "y", "0", "1.5", "(", ")", "{", "}",
                    ";", "=", "+", "-", "*", "/", "%", "==", "&&", "||",
                    "!", "<", ">", ",", "out", "min", "max", "abs",
                ]),
                0..60,
            )
        ) {
            let src = parts.join(" ");
            let _ = Program::compile(&src, &[("x", Type::Int)]);
        }
    }
}
