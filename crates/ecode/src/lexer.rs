//! Tokenizer for the E-Code C subset.

use crate::EcodeError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers
    Int(i64),
    Double(f64),
    Ident(String),
    // Keywords
    KwInt,
    KwDouble,
    KwBool,
    KwStatic,
    KwIf,
    KwElse,
    KwReturn,
    KwTrue,
    KwFalse,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    // Operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

/// A token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenizes a whole program.
pub fn lex(src: &str) -> Result<Vec<Token>, EcodeError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let err = |line: u32, msg: &str| EcodeError::Lex {
        line,
        msg: msg.to_owned(),
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Double(text.parse().map_err(|_| err(line, "bad float literal"))?)
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| err(line, "integer literal overflows"))?,
                    )
                };
                out.push(Token { tok, line });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "double" => Tok::KwDouble,
                    "bool" => Tok::KwBool,
                    "static" => Tok::KwStatic,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "return" => Tok::KwReturn,
                    "true" => Tok::KwTrue,
                    "false" => Tok::KwFalse,
                    _ => Tok::Ident(word.to_owned()),
                };
                out.push(Token { tok, line });
            }
            _ => {
                // Two-byte operators are matched on raw bytes: slicing the
                // &str at i..i+2 would panic inside multibyte characters.
                let two: &[u8] = if i + 1 < bytes.len() {
                    &bytes[i..i + 2]
                } else {
                    b""
                };
                let (tok, adv) = match two {
                    b"==" => (Tok::EqEq, 2),
                    b"!=" => (Tok::NotEq, 2),
                    b"<=" => (Tok::LtEq, 2),
                    b">=" => (Tok::GtEq, 2),
                    b"&&" => (Tok::AndAnd, 2),
                    b"||" => (Tok::OrOr, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        ',' => (Tok::Comma, 1),
                        ';' => (Tok::Semi, 1),
                        '=' => (Tok::Assign, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '!' => (Tok::Not, 1),
                        _ => {
                            // Decode the real (possibly multibyte) char for
                            // the error message.
                            let ch = src[i..].chars().next().expect("in bounds");
                            return Err(err(line, &format!("unexpected character {ch:?}")));
                        }
                    },
                };
                out.push(Token { tok, line });
                i += adv;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 3;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(3),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_exponents() {
        assert_eq!(kinds("1.5")[0], Tok::Double(1.5));
        assert_eq!(kinds("2e3")[0], Tok::Double(2000.0));
        assert_eq!(kinds("2.5e-1")[0], Tok::Double(0.25));
        assert_eq!(kinds("42")[0], Tok::Int(42));
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("a == b != c <= d >= e && f || !g"),
            vec![
                Tok::Ident("a".into()),
                Tok::EqEq,
                Tok::Ident("b".into()),
                Tok::NotEq,
                Tok::Ident("c".into()),
                Tok::LtEq,
                Tok::Ident("d".into()),
                Tok::GtEq,
                Tok::Ident("e".into()),
                Tok::AndAnd,
                Tok::Ident("f".into()),
                Tok::OrOr,
                Tok::Not,
                Tok::Ident("g".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// line one\nint /* inline */ x;\n").unwrap();
        assert_eq!(toks[0].tok, Tok::KwInt);
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(matches!(lex("/* oops"), Err(EcodeError::Lex { .. })));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(lex("int x @ 3;"), Err(EcodeError::Lex { .. })));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("iffy")[0], Tok::Ident("iffy".into()));
        assert_eq!(kinds("if")[0], Tok::KwIf);
        assert_eq!(kinds("static")[0], Tok::KwStatic);
    }
}
