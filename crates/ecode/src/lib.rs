//! E-Code: the language custom performance analyzers (CPAs) are written
//! in.
//!
//! The paper's CPAs are "specified in the form of E-Code (a language
//! subset of C), compiled through run-time code generation" and installed
//! into the running kernel. This crate reproduces that capability with a
//! C-subset language compiled to a compact stack bytecode executed by a
//! **fuel-metered** VM: callbacks run in the kernel fast path and "must
//! never block and be computationally small", so every instruction is
//! counted and a program exceeding its budget is aborted. The consumed
//! fuel converts to simulated CPU time, charged as monitoring overhead.
//!
//! # The language
//!
//! ```c
//! // persistent state across events
//! static int count = 0;
//! static double total_us = 0.0;
//!
//! // per-event inputs are declared by the host (e.g. kind, size, pid)
//! if (kind == 8 && size > 1000) {
//!     count = count + 1;
//!     total_us = total_us + 1.5 * size;
//!     out(0, total_us / count);   // publish a computed metric
//! }
//! return count % 100 == 0;        // 1 = flag this event to the host
//! ```
//!
//! Types: `int` (i64), `double` (f64), `bool`. Implicit `int`→`double`
//! promotion in mixed arithmetic. Statements: declarations, assignment,
//! `if`/`else`, blocks, `return`, expression statements. Builtins:
//! `abs`, `min`, `max`, `out(slot, value)`.
//!
//! # The verifier
//!
//! Fuel metering alone catches a misbehaving program only *after* it has
//! run — and perturbed — the monitored node. [`verify`] moves that to
//! load time, the way an eBPF verifier does: it statically proves a
//! worst-case fuel bound (E-Code has no loops, so the compiled bytecode
//! is a forward-jump DAG and the longest path is computed exactly),
//! rejects guaranteed traps (division by zero, out-of-range `out()`
//! slots) via interval reasoning, lints suspicious code (dead branches,
//! unreachable statements, unused state, uninitialized reads), and
//! constant-folds/dead-code-eliminates the program to shrink its
//! per-event cost. Accepted programs come back as a
//! [`Verified<Program>`] with a [`VerifyReport`] (before/after fuel
//! bounds, warnings); rejected ones as a [`VerifyError`] of
//! line-numbered [`Diagnostic`]s rendered rustc-style. Hosts should
//! install only verified programs and size fuel budgets from
//! [`VerifyReport::fuel_bound`] (or [`Program::static_fuel_bound`]).
//!
//! # Example
//!
//! ```
//! use ecode::{Program, Instance, Type, Value};
//!
//! let src = r#"
//!     static int n = 0;
//!     n = n + 1;
//!     return n;
//! "#;
//! let program = Program::compile(src, &[("size", Type::Int)])?;
//! let mut inst = Instance::new(&program);
//! assert_eq!(inst.run(&[Value::Int(10)], 1_000)?.ret, 1);
//! assert_eq!(inst.run(&[Value::Int(20)], 1_000)?.ret, 2);
//! # Ok::<(), ecode::EcodeError>(())
//! ```

#![warn(missing_docs)]

mod analysis;
mod batch;
mod compile;
pub mod jit;
mod lexer;
mod parser;
mod vm;

pub use batch::BatchEval;

pub use analysis::{
    verify, Diagnostic, MergeClass, MergePlan, MinMaxOp, Severity, SlotPlan, Verified, VerifyError,
    VerifyLimits, VerifyReport,
};
pub use compile::{Program, Type};
pub use jit::CompileBudget;
pub use vm::{ExecTier, Instance, MergeError, RunOutcome, Value};

use std::fmt;

/// Compilation or execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum EcodeError {
    /// Lexical error with line number.
    Lex {
        /// 1-based source line.
        line: u32,
        /// What went wrong.
        msg: String,
    },
    /// Parse error with line number.
    Parse {
        /// 1-based source line.
        line: u32,
        /// What went wrong.
        msg: String,
    },
    /// Type error with line number.
    Types {
        /// 1-based source line.
        line: u32,
        /// What went wrong.
        msg: String,
    },
    /// The program exceeded its fuel budget and was aborted.
    OutOfFuel,
    /// Division or modulo by zero at runtime.
    DivideByZero,
    /// Wrong number or type of input values supplied by the host.
    BadInputs(String),
}

impl fmt::Display for EcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcodeError::Lex { line, msg } => write!(f, "lex error (line {line}): {msg}"),
            EcodeError::Parse { line, msg } => write!(f, "parse error (line {line}): {msg}"),
            EcodeError::Types { line, msg } => write!(f, "type error (line {line}): {msg}"),
            EcodeError::OutOfFuel => f.write_str("fuel budget exhausted"),
            EcodeError::DivideByZero => f.write_str("division by zero"),
            EcodeError::BadInputs(msg) => write!(f, "bad inputs: {msg}"),
        }
    }
}

impl std::error::Error for EcodeError {}
