//! Shard-safety (merge) analysis.
//!
//! The sharded GPA wants to evaluate one analyzer program on N replica
//! instances — events partitioned by flow key — and fold the replicas'
//! statics back into the value a single sequential instance would have
//! produced. That fold is only legal when every static's update pattern
//! commutes across the partition. This pass *proves* the property per
//! slot at load time, with a forward abstract interpretation over the
//! compiled bytecode: E-Code has no loops, so the code is a
//! forward-jump DAG and a single pass in pc order visits every
//! instruction after all of its predecessors.
//!
//! Classification is deliberately bit-exact, not approximately-right:
//!
//! * integer `+`/`-` accumulation merges by summing deltas
//!   (`wrapping_add` is associative and commutative on `i64`);
//! * integer `min`/`max` folds merge by `min`/`max`;
//! * same-constant gated writes merge by "any side wrote";
//! * **float** accumulation is classified [`MergeClass::Opaque`] — IEEE
//!   addition is not associative, and `f64::min`/`max` have
//!   implementation-defined NaN/±0.0 behavior — so a program using
//!   `acc = acc + size` on a `double` falls back to single-instance
//!   evaluation instead of silently drifting per shard count.
//!
//! Control dependence is handled with real post-dominators: a store
//! that executes only when a static-influenced branch goes one way is
//! not a mergeable update even if the stored value itself is
//! input-only. Data joins at merge points inherit taint from the
//! branch that caused the divergence — including joins where the two
//! sides *look* equal: abstract equality of provenance-free cells
//! (`Mixed`, `Upd`) does not prove the runtime values agree, so at a
//! join reached via a static-influenced edge only identical constants
//! and identical whole-global cells survive untainted.
//!
//! The result is a [`MergePlan`] carried in the `VerifyReport`; the VM
//! consumes it in `Instance::merge_from`. Soundness is enforced
//! differentially by the generative sweep in `tests/verifier.rs`: every
//! program classified fully mergeable is run sequentially and as K
//! shards over random event partitions, and the folded statics must be
//! bit-identical. One caveat is inherited from the VM's trap semantics:
//! the equivalence claim assumes trap-free runs (a mid-event trap
//! leaves statics partially updated, sequentially or sharded).

use crate::compile::Program;
use crate::vm::Op;

/// Which fold a [`MergeClass::MinMax`] slot uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinMaxOp {
    /// Every store is `g = min(g, <input-only>)`.
    Min,
    /// Every store is `g = max(g, <input-only>)`.
    Max,
}

/// How one static slot may be folded across shard replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeClass {
    /// Never stored: every replica holds the initial value.
    ReadOnly,
    /// Every store adds (or subtracts) an input-only delta: replicas
    /// merge by summing their deltas (`a + b - init`, wrapping).
    Counter,
    /// Every store is the same-polarity `min`/`max` fold of the slot
    /// with an input-only value: replicas merge by `min`/`max`.
    MinMax(MinMaxOp),
    /// Every store writes the same constant (possibly under input-only
    /// conditions) — a "has any event matched?" latch. Replicas merge
    /// by keeping the written constant if either side stored it.
    GatedWrite {
        /// Raw bits of the constant every site stores (`f64::to_bits`
        /// for doubles, so equality is bit-exact).
        value_bits: i64,
    },
    /// Every store writes an input-only value, so the sequential result
    /// is "value from the last event" — which sharding erases. Not
    /// shard-safe without a tiebreak key the engine does not have.
    LastWriteWins,
    /// Not shard-safe: the update pattern reads static state, mixes
    /// update families, accumulates floats, or executes under a
    /// static-influenced branch.
    Opaque {
        /// Bytecode pc of the offending instruction.
        pc: u32,
        /// Human-readable explanation, naming the offending pc.
        reason: String,
    },
}

impl MergeClass {
    /// Whether replicas of a slot with this class can be folded into the
    /// exact sequential result.
    pub fn shard_safe(&self) -> bool {
        matches!(
            self,
            MergeClass::ReadOnly
                | MergeClass::Counter
                | MergeClass::MinMax(_)
                | MergeClass::GatedWrite { .. }
        )
    }

    /// Short lowercase name used in diagnostics.
    pub fn describe(&self) -> &'static str {
        match self {
            MergeClass::ReadOnly => "read-only",
            MergeClass::Counter => "counter",
            MergeClass::MinMax(MinMaxOp::Min) => "min-fold",
            MergeClass::MinMax(MinMaxOp::Max) => "max-fold",
            MergeClass::GatedWrite { .. } => "gated write",
            MergeClass::LastWriteWins => "last-write-wins",
            MergeClass::Opaque { .. } => "opaque",
        }
    }
}

/// One static slot's classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPlan {
    /// The static variable's declared name.
    pub name: String,
    /// Its merge class.
    pub class: MergeClass,
    /// Whether the slot's value is observable outside its own update —
    /// it reaches an `out()`, a `return`, a branch condition, or another
    /// slot. A mergeable slot that never escapes is write-only state
    /// (`W0009`).
    pub escapes: bool,
}

/// Per-program merge plan: one [`SlotPlan`] per static, in declaration
/// order (the VM's global slot order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergePlan {
    /// Slot classifications, indexed by global slot.
    pub slots: Vec<SlotPlan>,
}

impl MergePlan {
    /// Whether *every* slot is shard-safe — the precondition for running
    /// the program as N replicas and folding with `Instance::merge_from`.
    pub fn fully_mergeable(&self) -> bool {
        self.slots.iter().all(|s| s.class.shard_safe())
    }

    /// Slots that block sharded evaluation.
    pub fn unsafe_slots(&self) -> impl Iterator<Item = &SlotPlan> {
        self.slots.iter().filter(|s| !s.class.shard_safe())
    }
}

// ---------------------------------------------------------------------
// The abstract domain
// ---------------------------------------------------------------------

/// Update family an accumulator expression belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Upd {
    /// Integer `g + d` / `g - d` (wrapping add of a signed delta).
    Add,
    /// Integer `min(g, d)`.
    Min,
    /// Integer `max(g, d)`.
    Max,
    /// Any float fold of `g` (`+`, `-`, `min`, `max`) — tracked so the
    /// diagnostic can say *why* the slot is opaque, but never mergeable.
    FloatAcc,
}

/// Abstract value of one stack/local cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abs {
    /// Known constant (raw bits; doubles via `to_bits`).
    Const(i64),
    /// Exactly the current value of global slot `g`.
    Global(u16),
    /// Slot `g` folded with input-only data via one update family.
    Upd(u16, Upd),
    /// Anything else. `tainted` = some global influenced the value.
    Mixed { tainted: bool },
}

impl Abs {
    fn tainted(self) -> bool {
        match self {
            Abs::Const(_) => false,
            Abs::Global(_) | Abs::Upd(..) => true,
            Abs::Mixed { tainted } => tainted,
        }
    }

    /// The slot this value is an exact function of, if any.
    fn slot(self) -> Option<u16> {
        match self {
            Abs::Global(g) | Abs::Upd(g, _) => Some(g),
            _ => None,
        }
    }

    /// Computable from the event's inputs and constants alone.
    fn input_only(self) -> bool {
        matches!(self, Abs::Const(_) | Abs::Mixed { tainted: false })
    }
}

/// If `v` can serve as the accumulator side of a `fam` update, the slot
/// it accumulates.
fn acc_side(v: Abs, fam: Upd) -> Option<u16> {
    match v {
        Abs::Global(g) => Some(g),
        Abs::Upd(g, f) if f == fam => Some(g),
        _ => None,
    }
}

/// Abstract machine state on entry to a pc.
#[derive(Debug, Clone, PartialEq)]
struct State {
    stack: Vec<Abs>,
    locals: Vec<Abs>,
}

/// What one `StoreGlobal` site does to its slot.
#[derive(Debug, Clone, PartialEq)]
enum SiteKind {
    Counter,
    Min,
    Max,
    Gated(i64),
    Lww,
    Opaque(String),
}

#[derive(Debug, Clone)]
struct Site {
    pc: u32,
    kind: SiteKind,
}

// ---------------------------------------------------------------------
// Post-dominators and control-dependence regions
// ---------------------------------------------------------------------

fn set_bit(s: &mut [u64], i: usize) {
    s[i / 64] |= 1 << (i % 64);
}

fn get_bit(s: &[u64], i: usize) -> bool {
    s[i / 64] & (1 << (i % 64)) != 0
}

fn successors(code: &[Op], pc: usize, out: &mut Vec<usize>) {
    out.clear();
    match code[pc] {
        Op::Jmp(t) => out.push(t as usize),
        Op::JmpIfFalse(t) => {
            out.push(pc + 1);
            out.push(t as usize);
        }
        Op::Ret | Op::RetVoid => {}
        _ => out.push(pc + 1),
    }
}

/// `pd[pc]`: bitset of pcs (plus bit `n` = the virtual exit) that lie on
/// *every* path from `pc` to program exit. Because all jumps are
/// forward, one reverse pass computes the exact solution:
/// `pd(p) = {p} ∪ ⋂ pd(succ)`.
fn postdominators(code: &[Op]) -> Vec<Vec<u64>> {
    let n = code.len();
    let words = n / 64 + 1;
    let mut pd: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut succ = Vec::new();
    for pc in (0..n).rev() {
        successors(code, pc, &mut succ);
        let mut set = match succ.first() {
            None => {
                let mut s = vec![0u64; words];
                set_bit(&mut s, n);
                s
            }
            Some(&first) => {
                let mut s = pd[first].clone();
                for &other in &succ[1..] {
                    for (a, b) in s.iter_mut().zip(&pd[other]) {
                        *a &= *b;
                    }
                }
                s
            }
        };
        set_bit(&mut set, pc);
        pd[pc] = set;
    }
    pd
}

// ---------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------

struct Pass<'a> {
    code: &'a [Op],
    /// Post-dominator sets (see [`postdominators`]).
    pd: Vec<Vec<u64>>,
    /// `in_state[pc]`: joined abstract state on entry (None = unreachable).
    in_state: Vec<Option<State>>,
    /// pcs control-dependent on a static-influenced branch.
    ctrl_tainted: Vec<bool>,
    /// `edge_tainted[pc]`: some incoming edge leaves a ctrl-tainted pc,
    /// so differing cells at this join diverge because of static state.
    edge_tainted: Vec<bool>,
    /// Per-slot: value observed outside its own update.
    escapes: Vec<bool>,
    /// Per-slot store sites.
    sites: Vec<Vec<Site>>,
    /// Abstract interpretation hit an internal inconsistency; the
    /// caller degrades every slot to Opaque rather than guessing.
    failed: bool,
}

impl<'a> Pass<'a> {
    fn new(program: &'a Program) -> Pass<'a> {
        let code = &program.code[..];
        Pass {
            code,
            pd: postdominators(code),
            in_state: vec![None; code.len()],
            ctrl_tainted: vec![false; code.len()],
            edge_tainted: vec![false; code.len()],
            escapes: vec![false; program.globals.len()],
            sites: vec![Vec::new(); program.globals.len()],
            failed: false,
        }
    }

    fn pop(&mut self, st: &mut State) -> Abs {
        st.stack.pop().unwrap_or_else(|| {
            self.failed = true;
            Abs::Mixed { tainted: true }
        })
    }

    /// `v` is consumed by something other than its own slot's update —
    /// its slot (if any) becomes observable.
    fn observe(&mut self, v: Abs) {
        if let Some(g) = v.slot() {
            self.escapes[g as usize] = true;
        }
    }

    /// Result of a binary op that destroys structure: both operands are
    /// observed, taint is the union.
    fn opaque2(&mut self, a: Abs, b: Abs) -> Abs {
        self.observe(a);
        self.observe(b);
        Abs::Mixed {
            tainted: a.tainted() || b.tainted(),
        }
    }

    /// Accumulation-forming binary op (`lhs op rhs`). When one side is
    /// the `fam`-accumulator of a slot and the other is input-only, the
    /// result stays in the family; otherwise structure is destroyed.
    /// `rhs_may_acc` is false for non-commutative ops (`-`): `x - g` is
    /// not a counter update of `g`.
    fn upd2(&mut self, lhs: Abs, rhs: Abs, fam: Upd, rhs_may_acc: bool) -> Abs {
        if let Some(g) = acc_side(lhs, fam) {
            if rhs.input_only() {
                return Abs::Upd(g, fam);
            }
        }
        if rhs_may_acc {
            if let Some(g) = acc_side(rhs, fam) {
                if lhs.input_only() {
                    return Abs::Upd(g, fam);
                }
            }
        }
        self.opaque2(lhs, rhs)
    }

    /// Marks every pc control-dependent (transitively) on the branch at
    /// `b`: reachable from `b` without first passing a post-dominator of
    /// `b`. Handles both balanced if/else regions and early-return arms
    /// (where everything after the branch is control-dependent).
    fn mark_ctrl_region(&mut self, b: usize) {
        let mut seen = vec![false; self.code.len()];
        let mut work = Vec::new();
        let mut succ = Vec::new();
        successors(self.code, b, &mut succ);
        work.extend(succ.iter().copied());
        while let Some(p) = work.pop() {
            if p >= self.code.len() || seen[p] {
                continue;
            }
            seen[p] = true;
            if get_bit(&self.pd[b], p) {
                // Executes no matter which way `b` went; nodes beyond it
                // are controlled by later branches, not `b`.
                continue;
            }
            self.ctrl_tainted[p] = true;
            successors(self.code, p, &mut succ);
            work.extend(succ.iter().copied());
        }
    }

    /// Propagates `st` along the edge `from → to`, joining cell-wise
    /// with whatever already flowed into `to`.
    fn flow(&mut self, from: usize, to: usize, st: &State) {
        if to >= self.code.len() {
            self.failed = true;
            return;
        }
        self.edge_tainted[to] |= self.ctrl_tainted[from];
        let edge_tainted = self.edge_tainted[to];
        match self.in_state[to].take() {
            None => self.in_state[to] = Some(st.clone()),
            Some(mut existing) => {
                if existing.stack.len() != st.stack.len() {
                    self.failed = true;
                    return;
                }
                let join_cells = |pass: &mut Pass, a: &mut [Abs], b: &[Abs]| {
                    for (x, y) in a.iter_mut().zip(b) {
                        if *x != *y {
                            // The cell's value depends on which path ran.
                            pass.observe(*x);
                            pass.observe(*y);
                            *x = Abs::Mixed {
                                tainted: x.tainted() || y.tainted() || edge_tainted,
                            };
                        } else if edge_tainted && !matches!(*x, Abs::Const(_) | Abs::Global(_)) {
                            // Equal abstractions are not equal values.
                            // `Mixed` and `Upd` cells carry no provenance:
                            // `x = size` in one arm and `x = port` in the
                            // other both abstract to Mixed{tainted:false}
                            // and compare equal, yet the runtime value
                            // depends on which way the static-influenced
                            // branch went. Only identical `Const` bits
                            // (the same value outright) and identical
                            // `Global` (the same slot's current value on
                            // either path) are provably path-invariant;
                            // everything else degrades to tainted.
                            pass.observe(*x);
                            *x = Abs::Mixed { tainted: true };
                        }
                    }
                };
                join_cells(self, &mut existing.stack, &st.stack);
                join_cells(self, &mut existing.locals, &st.locals);
                self.in_state[to] = Some(existing);
            }
        }
    }

    fn record_site(&mut self, slot: u16, pc: usize, kind: SiteKind) {
        self.sites[slot as usize].push(Site {
            pc: pc as u32,
            kind,
        });
    }

    /// Transfer function for the op at `pc`; returns the out-state (for
    /// `JmpIfFalse`, both edges carry the same out-state).
    fn step(&mut self, pc: usize, mut st: State, names: &[String]) -> State {
        match self.code[pc] {
            Op::ConstI(k) => st.stack.push(Abs::Const(k)),
            Op::ConstF(v) => st.stack.push(Abs::Const(v.to_bits() as i64)),
            Op::LoadInput(_) => st.stack.push(Abs::Mixed { tainted: false }),
            Op::LoadGlobal(g) => st.stack.push(Abs::Global(g)),
            Op::LoadLocal(i) => {
                let v = st.locals.get(i as usize).copied().unwrap_or_else(|| {
                    self.failed = true;
                    Abs::Mixed { tainted: true }
                });
                st.stack.push(v);
            }
            Op::StoreLocal(i) => {
                let v = self.pop(&mut st);
                match st.locals.get_mut(i as usize) {
                    Some(cell) => *cell = v,
                    None => self.failed = true,
                }
            }
            Op::Pop => {
                // Discarded, not observed.
                let _ = self.pop(&mut st);
            }
            Op::StoreGlobal(g) => {
                let v = self.pop(&mut st);
                if v.slot() == Some(g) && matches!(v, Abs::Global(_)) {
                    // `g = g;` — a no-op, not an update site.
                } else if self.ctrl_tainted[pc] {
                    self.observe(v);
                    self.record_site(
                        g,
                        pc,
                        SiteKind::Opaque(format!(
                            "store at pc {pc} is control-dependent on static state"
                        )),
                    );
                } else {
                    let kind = match v {
                        Abs::Global(h) => {
                            self.observe(v);
                            SiteKind::Opaque(format!(
                                "store at pc {pc} copies static \"{}\"",
                                names[h as usize]
                            ))
                        }
                        Abs::Upd(h, fam) if h == g => match fam {
                            Upd::Add => SiteKind::Counter,
                            Upd::Min => SiteKind::Min,
                            Upd::Max => SiteKind::Max,
                            Upd::FloatAcc => SiteKind::Opaque(format!(
                                "floating-point fold at pc {pc} is not bit-exact \
                                 across shard counts"
                            )),
                        },
                        Abs::Upd(h, _) => {
                            self.observe(v);
                            SiteKind::Opaque(format!(
                                "store at pc {pc} mixes in static \"{}\"",
                                names[h as usize]
                            ))
                        }
                        Abs::Const(k) => SiteKind::Gated(k),
                        Abs::Mixed { tainted: false } => SiteKind::Lww,
                        Abs::Mixed { tainted: true } => SiteKind::Opaque(format!(
                            "value stored at pc {pc} depends on static state"
                        )),
                    };
                    self.record_site(g, pc, kind);
                }
            }
            Op::AddI => {
                let b = self.pop(&mut st);
                let a = self.pop(&mut st);
                let r = match (a, b) {
                    (Abs::Const(x), Abs::Const(y)) => Abs::Const(x.wrapping_add(y)),
                    _ => self.upd2(a, b, Upd::Add, true),
                };
                st.stack.push(r);
            }
            Op::SubI => {
                let b = self.pop(&mut st);
                let a = self.pop(&mut st);
                let r = match (a, b) {
                    (Abs::Const(x), Abs::Const(y)) => Abs::Const(x.wrapping_sub(y)),
                    // `g - d` adds the delta `-d`; `d - g` is not a counter.
                    _ => self.upd2(a, b, Upd::Add, false),
                };
                st.stack.push(r);
            }
            Op::MinI => {
                let b = self.pop(&mut st);
                let a = self.pop(&mut st);
                let r = match (a, b) {
                    (Abs::Const(x), Abs::Const(y)) => Abs::Const(x.min(y)),
                    _ => self.upd2(a, b, Upd::Min, true),
                };
                st.stack.push(r);
            }
            Op::MaxI => {
                let b = self.pop(&mut st);
                let a = self.pop(&mut st);
                let r = match (a, b) {
                    (Abs::Const(x), Abs::Const(y)) => Abs::Const(x.max(y)),
                    _ => self.upd2(a, b, Upd::Max, true),
                };
                st.stack.push(r);
            }
            // Float folds stay in the (never-mergeable) FloatAcc family
            // so the store site can explain *why* it is opaque.
            Op::AddF | Op::MinF | Op::MaxF => {
                let b = self.pop(&mut st);
                let a = self.pop(&mut st);
                let r = self.upd2(a, b, Upd::FloatAcc, true);
                st.stack.push(r);
            }
            Op::SubF => {
                let b = self.pop(&mut st);
                let a = self.pop(&mut st);
                let r = self.upd2(a, b, Upd::FloatAcc, false);
                st.stack.push(r);
            }
            // Structure-destroying binary ops: multiplication scales the
            // accumulated state, comparisons observe it, etc.
            Op::MulI
            | Op::DivI
            | Op::ModI
            | Op::MulF
            | Op::DivF
            | Op::EqI
            | Op::NeI
            | Op::LtI
            | Op::LeI
            | Op::GtI
            | Op::GeI
            | Op::EqF
            | Op::NeF
            | Op::LtF
            | Op::LeF
            | Op::GtF
            | Op::GeF => {
                let b = self.pop(&mut st);
                let a = self.pop(&mut st);
                let r = self.opaque2(a, b);
                st.stack.push(r);
            }
            Op::NegI | Op::NegF | Op::NotB | Op::AbsI | Op::AbsF | Op::I2F => {
                let v = self.pop(&mut st);
                let r = match (self.code[pc], v) {
                    (Op::NegI, Abs::Const(k)) => Abs::Const(k.wrapping_neg()),
                    (Op::I2F, Abs::Const(k)) => Abs::Const((k as f64).to_bits() as i64),
                    _ => {
                        self.observe(v);
                        Abs::Mixed {
                            tainted: v.tainted(),
                        }
                    }
                };
                st.stack.push(r);
            }
            Op::I2FUnder => {
                let top = self.pop(&mut st);
                let v = self.pop(&mut st);
                let r = match v {
                    Abs::Const(k) => Abs::Const((k as f64).to_bits() as i64),
                    _ => {
                        self.observe(v);
                        Abs::Mixed {
                            tainted: v.tainted(),
                        }
                    }
                };
                st.stack.push(r);
                st.stack.push(top);
            }
            Op::Out => {
                let value = self.pop(&mut st);
                let slot = self.pop(&mut st);
                self.observe(value);
                self.observe(slot);
            }
            Op::Ret => {
                let v = self.pop(&mut st);
                self.observe(v);
            }
            Op::RetVoid | Op::Jmp(_) => {}
            Op::JmpIfFalse(_) => {
                let cond = self.pop(&mut st);
                self.observe(cond);
                if cond.tainted() {
                    self.mark_ctrl_region(pc);
                }
            }
        }
        st
    }

    fn run(&mut self, program: &Program) {
        let names: Vec<String> = program.globals.iter().map(|(n, _, _)| n.clone()).collect();
        self.in_state[0] = Some(State {
            stack: Vec::new(),
            // The VM zeroes locals at the start of every run.
            locals: vec![Abs::Const(0); program.n_locals as usize],
        });
        let mut succ = Vec::new();
        for pc in 0..self.code.len() {
            let Some(st) = self.in_state[pc].clone() else {
                continue; // unreachable
            };
            let out = self.step(pc, st, &names);
            successors(self.code, pc, &mut succ);
            for &to in &succ {
                self.flow(pc, to, &out);
            }
            if self.failed {
                return;
            }
        }
    }

    /// Folds a slot's store sites into its final class.
    fn combine(&self, slot: usize) -> MergeClass {
        #[derive(PartialEq, Clone, Copy)]
        enum Fam {
            Counter,
            Min,
            Max,
            Write,
        }
        let fam = |k: &SiteKind| match k {
            SiteKind::Counter => Fam::Counter,
            SiteKind::Min => Fam::Min,
            SiteKind::Max => Fam::Max,
            SiteKind::Gated(_) | SiteKind::Lww => Fam::Write,
            SiteKind::Opaque(_) => unreachable!("opaque handled before families"),
        };
        let sites = &self.sites[slot];
        let Some(first) = sites.first() else {
            return MergeClass::ReadOnly;
        };
        if let Some(s) = sites.iter().find(|s| matches!(s.kind, SiteKind::Opaque(_))) {
            let SiteKind::Opaque(reason) = &s.kind else {
                unreachable!()
            };
            return MergeClass::Opaque {
                pc: s.pc,
                reason: reason.clone(),
            };
        }
        let f0 = fam(&first.kind);
        if let Some(s) = sites.iter().find(|s| fam(&s.kind) != f0) {
            // E.g. a counter bump at one site and a reset at another:
            // the sequential interleaving can't be reconstructed.
            return MergeClass::Opaque {
                pc: s.pc,
                reason: format!(
                    "conflicting update patterns (pc {} vs pc {})",
                    first.pc, s.pc
                ),
            };
        }
        match f0 {
            Fam::Counter => MergeClass::Counter,
            Fam::Min => MergeClass::MinMax(MinMaxOp::Min),
            Fam::Max => MergeClass::MinMax(MinMaxOp::Max),
            Fam::Write => {
                let mut bits: Option<i64> = None;
                for s in sites {
                    match s.kind {
                        SiteKind::Gated(k) => {
                            if bits.get_or_insert(k) != &k {
                                return MergeClass::LastWriteWins;
                            }
                        }
                        SiteKind::Lww => return MergeClass::LastWriteWins,
                        _ => unreachable!("family filtered above"),
                    }
                }
                MergeClass::GatedWrite {
                    value_bits: bits.expect("non-empty gated site list"),
                }
            }
        }
    }
}

/// Every slot Opaque — the conservative answer when the bytecode breaks
/// an invariant the analysis relies on.
fn opaque_all(program: &Program, reason: &str) -> MergePlan {
    MergePlan {
        slots: program
            .globals
            .iter()
            .map(|(name, _, _)| SlotPlan {
                name: name.clone(),
                class: MergeClass::Opaque {
                    pc: 0,
                    reason: reason.to_owned(),
                },
                escapes: true,
            })
            .collect(),
    }
}

/// Classifies every static slot of `program`. Total: never fails, never
/// panics — inconsistencies degrade to [`MergeClass::Opaque`].
pub(crate) fn classify(program: &Program) -> MergePlan {
    let code = &program.code;
    // The whole pass (and `postdominators`) relies on the compiler's
    // forward-jump invariant; double-check it instead of trusting it.
    for (pc, op) in code.iter().enumerate() {
        if let Op::Jmp(t) | Op::JmpIfFalse(t) = op {
            if (*t as usize) <= pc || (*t as usize) >= code.len() {
                return opaque_all(program, "control flow is not a forward DAG");
            }
        }
    }
    let mut pass = Pass::new(program);
    pass.run(program);
    if pass.failed {
        return opaque_all(program, "abstract interpretation failed");
    }
    MergePlan {
        slots: program
            .globals
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| SlotPlan {
                name: name.clone(),
                class: pass.combine(i),
                escapes: pass.escapes[i],
            })
            .collect(),
    }
}
