//! Verifier diagnostics: machine-readable findings with line numbers,
//! rendered rustc-style for humans.

use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not disqualifying; the program may still deploy.
    Warning,
    /// Disqualifying: the verifier refuses the program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One verifier finding, tied to a source line.
///
/// Codes are stable identifiers (`E...` reject, `W...` advise):
///
/// | code    | meaning                                                |
/// |---------|--------------------------------------------------------|
/// | `E0001` | division/modulo by zero is guaranteed                  |
/// | `E0002` | `out()` slot is always out of range                    |
/// | `E0003` | worst-case fuel exceeds the host budget                |
/// | `E0004` | the source does not compile (lex/parse/type error)     |
/// | `M0001` | static is not shard-mergeable (under `require_mergeable`) |
/// | `W0001` | divisor may be zero on some input                      |
/// | `W0002` | `out()` slot may be out of range                       |
/// | `W0003` | unused `static` variable                               |
/// | `W0004` | unused input                                           |
/// | `W0005` | branch is dead under a constant condition              |
/// | `W0006` | unreachable code after `return`                        |
/// | `W0007` | local read before ever being assigned (reads as 0)     |
/// | `W0008` | some paths return a value, others fall off the end     |
/// | `W0009` | static is mergeable but its value never escapes        |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity (errors reject the program).
    pub severity: Severity,
    /// Stable code, e.g. `"E0003"`.
    pub code: &'static str,
    /// 1-based source line; 0 when the finding is program-wide.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A rejecting finding.
    pub fn error(code: &'static str, line: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            line,
            message: message.into(),
        }
    }

    /// An advisory finding.
    pub fn warning(code: &'static str, line: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            line,
            message: message.into(),
        }
    }

    /// Renders the finding with its source line excerpt, rustc-style:
    ///
    /// ```text
    /// error[E0001]: division by zero is guaranteed
    ///  --> line 3
    ///   |
    /// 3 |     out(0, 1 / z);
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if self.line > 0 {
            out.push_str(&format!("\n --> line {}", self.line));
            if let Some(text) = src.lines().nth(self.line as usize - 1) {
                let gutter = self.line.to_string();
                out.push_str(&format!(
                    "\n{:width$} |\n{gutter} | {}",
                    "",
                    text,
                    width = gutter.len()
                ));
            }
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if self.line > 0 {
            write!(f, " (line {})", self.line)?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_code_and_line() {
        let d = Diagnostic::error("E0001", 3, "division by zero is guaranteed");
        assert_eq!(
            d.to_string(),
            "error[E0001] (line 3): division by zero is guaranteed"
        );
        let w = Diagnostic::warning("W0003", 0, "unused static");
        assert_eq!(w.to_string(), "warning[W0003]: unused static");
    }

    #[test]
    fn render_excerpts_the_source_line() {
        let src = "int z = 0;\nreturn 1 / z;";
        let d = Diagnostic::error("E0001", 2, "division by zero is guaranteed");
        let rendered = d.render(src);
        assert!(rendered.contains("error[E0001]: division by zero is guaranteed"));
        assert!(rendered.contains(" --> line 2"));
        assert!(rendered.contains("2 | return 1 / z;"));
    }

    #[test]
    fn errors_order_after_warnings() {
        assert!(Severity::Error > Severity::Warning);
    }
}
