//! AST-level optimizations: constant folding and dead-code elimination.
//!
//! The optimizer only rewrites what it can prove with *literal* operands
//! and mirrors the VM's semantics exactly (wrapping `i64` arithmetic,
//! short-circuit evaluation, `int` → `double` promotion), so an optimized
//! program is observationally equivalent to its original — same return
//! value and same `out()` stream — while costing less fuel.
//!
//! One subtlety: E-Code has a **flat variable namespace** (a declaration
//! inside an `if` branch is visible to everything after it), and locals
//! are zero-initialized whether or not their declaration executes. Dead
//! code is therefore not simply deleted — its declarations are *hoisted*
//! (locals lose their initializer, statics keep their constant one) so
//! later references still resolve and behave identically.

use crate::parser::{BinOp, Expr, Stmt, UnOp};

/// Optimizes a whole program (statement list).
pub(crate) fn optimize(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    block(stmts, &mut out);
    out
}

/// Optimizes one block into `out`, handling unreachable-after-return.
fn block(stmts: &[Stmt], out: &mut Vec<Stmt>) {
    let mut returned = false;
    for s in stmts {
        if returned {
            // Everything after a return only matters for name resolution.
            hoist_decls(std::slice::from_ref(s), out);
            continue;
        }
        returned = stmt(s, out);
    }
}

/// Optimizes one statement into `out`; returns whether it definitely
/// returns (so the caller can prune what follows).
fn stmt(s: &Stmt, out: &mut Vec<Stmt>) -> bool {
    match s {
        Stmt::Decl {
            is_static,
            ty,
            name,
            init,
            line,
        } => {
            out.push(Stmt::Decl {
                is_static: *is_static,
                ty: *ty,
                name: name.clone(),
                init: init.as_ref().map(fold),
                line: *line,
            });
            false
        }
        Stmt::Assign { name, expr, line } => {
            out.push(Stmt::Assign {
                name: name.clone(),
                expr: fold(expr),
                line: *line,
            });
            false
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            line,
        } => match fold(cond) {
            // A literal condition selects one branch at compile time; the
            // other branch contributes only its (hoisted) declarations.
            Expr::Bool(true) => {
                hoist_decls(else_block, out);
                let mut ret = false;
                for s in then_block {
                    if ret {
                        hoist_decls(std::slice::from_ref(s), out);
                    } else {
                        ret = stmt(s, out);
                    }
                }
                ret
            }
            Expr::Bool(false) => {
                hoist_decls(then_block, out);
                let mut ret = false;
                for s in else_block {
                    if ret {
                        hoist_decls(std::slice::from_ref(s), out);
                    } else {
                        ret = stmt(s, out);
                    }
                }
                ret
            }
            cond => {
                let mut then_opt = Vec::with_capacity(then_block.len());
                block(then_block, &mut then_opt);
                let mut else_opt = Vec::with_capacity(else_block.len());
                block(else_block, &mut else_opt);
                out.push(Stmt::If {
                    cond,
                    then_block: then_opt,
                    else_block: else_opt,
                    line: *line,
                });
                false
            }
        },
        Stmt::Return { expr, line } => {
            out.push(Stmt::Return {
                expr: expr.as_ref().map(fold),
                line: *line,
            });
            true
        }
        Stmt::Expr { expr, line } => {
            let expr = fold(expr);
            // An expression statement with no observable effect (no
            // `out()`, cannot trap) is pure fuel waste.
            if has_effect(&expr) {
                out.push(Stmt::Expr { expr, line: *line });
            }
            false
        }
    }
}

/// Emits only the declarations from dead statements, recursively. Locals
/// lose their initializer (they are zero-initialized either way, and the
/// initializer never ran); statics keep theirs (it is a compile-time
/// constant registered whether or not the code executes).
fn hoist_decls(stmts: &[Stmt], out: &mut Vec<Stmt>) {
    for s in stmts {
        match s {
            Stmt::Decl {
                is_static,
                ty,
                name,
                init,
                line,
            } => out.push(Stmt::Decl {
                is_static: *is_static,
                ty: *ty,
                name: name.clone(),
                init: if *is_static { init.clone() } else { None },
                line: *line,
            }),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                hoist_decls(then_block, out);
                hoist_decls(else_block, out);
            }
            _ => {}
        }
    }
}

/// Could evaluating this expression be observed? `out()` publishes;
/// `/` and `%` can trap (the optimizer has no type information here, so
/// it conservatively treats even float division as effectful).
fn has_effect(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Double(_) | Expr::Bool(_) | Expr::Var(_) => false,
        Expr::Un { expr, .. } => has_effect(expr),
        Expr::Bin { op, lhs, rhs, .. } => {
            matches!(op, BinOp::Div | BinOp::Mod) || has_effect(lhs) || has_effect(rhs)
        }
        Expr::Call { name, args, .. } => name == "out" || args.iter().any(has_effect),
    }
}

/// Constant-folds an expression bottom-up. Only all-literal subtrees are
/// rewritten, with the VM's exact semantics; anything else is preserved.
fn fold(e: &Expr) -> Expr {
    match e {
        Expr::Int(_) | Expr::Double(_) | Expr::Bool(_) | Expr::Var(_) => e.clone(),
        Expr::Un { op, expr, line } => {
            let inner = fold(expr);
            match (op, &inner) {
                (UnOp::Neg, Expr::Int(v)) => Expr::Int(v.wrapping_neg()),
                (UnOp::Neg, Expr::Double(v)) => Expr::Double(-v),
                (UnOp::Not, Expr::Bool(v)) => Expr::Bool(!v),
                _ => Expr::Un {
                    op: *op,
                    expr: Box::new(inner),
                    line: *line,
                },
            }
        }
        Expr::Bin { op, lhs, rhs, line } => fold_bin(*op, lhs, rhs, *line),
        Expr::Call { name, args, line } => {
            let args: Vec<Expr> = args.iter().map(fold).collect();
            fold_call(name, args, *line)
        }
    }
}

fn fold_bin(op: BinOp, lhs: &Expr, rhs: &Expr, line: u32) -> Expr {
    let l = fold(lhs);

    // Short-circuit operators: the VM never evaluates the rhs when the
    // lhs decides, so a literal lhs folds without touching the rhs.
    if matches!(op, BinOp::And | BinOp::Or) {
        return match (op, &l) {
            (BinOp::And, Expr::Bool(false)) => Expr::Bool(false),
            (BinOp::Or, Expr::Bool(true)) => Expr::Bool(true),
            (BinOp::And, Expr::Bool(true)) | (BinOp::Or, Expr::Bool(false)) => fold(rhs),
            _ => Expr::Bin {
                op,
                lhs: Box::new(l),
                rhs: Box::new(fold(rhs)),
                line,
            },
        };
    }

    let r = fold(rhs);
    let keep = |l: Expr, r: Expr| Expr::Bin {
        op,
        lhs: Box::new(l),
        rhs: Box::new(r),
        line,
    };

    match (&l, &r) {
        (Expr::Int(a), Expr::Int(b)) => {
            let (a, b) = (*a, *b);
            match op {
                BinOp::Add => Expr::Int(a.wrapping_add(b)),
                BinOp::Sub => Expr::Int(a.wrapping_sub(b)),
                BinOp::Mul => Expr::Int(a.wrapping_mul(b)),
                // Never fold a division by literal zero: the runtime trap
                // (and the checker's E0001) is the defined behavior.
                BinOp::Div if b != 0 => Expr::Int(a.wrapping_div(b)),
                BinOp::Mod if b != 0 => Expr::Int(a.wrapping_rem(b)),
                BinOp::Div | BinOp::Mod => keep(l, r),
                BinOp::Eq => Expr::Bool(a == b),
                BinOp::Ne => Expr::Bool(a != b),
                BinOp::Lt => Expr::Bool(a < b),
                BinOp::Le => Expr::Bool(a <= b),
                BinOp::Gt => Expr::Bool(a > b),
                BinOp::Ge => Expr::Bool(a >= b),
                BinOp::And | BinOp::Or => keep(l, r),
            }
        }
        (Expr::Bool(a), Expr::Bool(b)) => match op {
            // The compiler types `bool == bool` as int 0/1, so fold to an
            // int literal to preserve the expression's type.
            BinOp::Eq => Expr::Int((a == b) as i64),
            BinOp::Ne => Expr::Int((a != b) as i64),
            _ => keep(l, r),
        },
        // Mixed or double arithmetic: the VM promotes int to f64 first.
        _ => {
            let (Some(a), Some(b)) = (as_f64(&l), as_f64(&r)) else {
                return keep(l, r);
            };
            match op {
                BinOp::Add => Expr::Double(a + b),
                BinOp::Sub => Expr::Double(a - b),
                BinOp::Mul => Expr::Double(a * b),
                BinOp::Div => Expr::Double(a / b),
                BinOp::Eq => Expr::Bool(a == b),
                BinOp::Ne => Expr::Bool(a != b),
                BinOp::Lt => Expr::Bool(a < b),
                BinOp::Le => Expr::Bool(a <= b),
                BinOp::Gt => Expr::Bool(a > b),
                BinOp::Ge => Expr::Bool(a >= b),
                BinOp::Mod | BinOp::And | BinOp::Or => keep(l, r),
            }
        }
    }
}

/// Numeric literal as f64, for mixed-type folding.
fn as_f64(e: &Expr) -> Option<f64> {
    match e {
        Expr::Int(v) => Some(*v as f64),
        Expr::Double(v) => Some(*v),
        _ => None,
    }
}

fn fold_call(name: &str, args: Vec<Expr>, line: u32) -> Expr {
    // `out` and anything unexpected fall through to `None` untouched.
    let folded = match (name, args.as_slice()) {
        ("abs", [Expr::Int(v)]) => Some(Expr::Int(v.wrapping_abs())),
        ("abs", [Expr::Double(v)]) => Some(Expr::Double(v.abs())),
        ("min", [Expr::Int(a), Expr::Int(b)]) => Some(Expr::Int(*a.min(b))),
        ("max", [Expr::Int(a), Expr::Int(b)]) => Some(Expr::Int(*a.max(b))),
        ("min" | "max", [a, b]) => match (as_f64(a), as_f64(b)) {
            (Some(x), Some(y)) => Some(Expr::Double(if name == "min" {
                x.min(y)
            } else {
                x.max(y)
            })),
            _ => None,
        },
        _ => None,
    };
    folded.unwrap_or_else(|| Expr::Call {
        name: name.to_owned(),
        args,
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::Parser;

    fn opt(src: &str) -> Vec<Stmt> {
        optimize(&Parser::new(lex(src).unwrap()).program().unwrap())
    }

    #[test]
    fn folds_arithmetic_and_comparisons() {
        let stmts = opt("return 2 * 3 + 4;");
        assert_eq!(stmts.len(), 1);
        let Stmt::Return {
            expr: Some(Expr::Int(10)),
            ..
        } = &stmts[0]
        else {
            panic!("not folded: {stmts:?}");
        };
    }

    #[test]
    fn never_folds_division_by_literal_zero() {
        let stmts = opt("return 1 / 0;");
        let Stmt::Return {
            expr: Some(Expr::Bin { op: BinOp::Div, .. }),
            ..
        } = &stmts[0]
        else {
            panic!("1/0 must stay a runtime trap: {stmts:?}");
        };
    }

    #[test]
    fn dead_branch_is_eliminated_but_its_decls_survive() {
        let stmts = opt("if (1 > 2) { int x = 5; } else { x = 0; } return x;");
        // then-branch is dead: `int x` is hoisted without its initializer,
        // the else branch is spliced inline.
        assert!(matches!(
            &stmts[0],
            Stmt::Decl {
                name,
                init: None,
                is_static: false,
                ..
            } if name == "x"
        ));
        assert!(matches!(&stmts[1], Stmt::Assign { name, .. } if name == "x"));
        assert!(matches!(&stmts[2], Stmt::Return { .. }));
    }

    #[test]
    fn short_circuit_folds_only_on_literal_lhs() {
        // `false && (1/0 == 1)` folds to false without touching the rhs.
        let stmts = opt("bool b = false && 1 / 0 == 1; return 0;");
        assert!(matches!(
            &stmts[0],
            Stmt::Decl {
                init: Some(Expr::Bool(false)),
                ..
            }
        ));
        // An unknown lhs keeps the whole expression.
        let stmts = opt("bool b = x > 0 && true; return 0;");
        assert!(matches!(
            &stmts[0],
            Stmt::Decl {
                init: Some(Expr::Bin { op: BinOp::And, .. }),
                ..
            }
        ));
    }

    #[test]
    fn unreachable_code_after_return_is_dropped() {
        let stmts = opt("return 1; 2 + 2; int y = 9;");
        assert_eq!(stmts.len(), 2, "expr dropped, decl hoisted: {stmts:?}");
        assert!(matches!(&stmts[0], Stmt::Return { .. }));
        assert!(matches!(
            &stmts[1],
            Stmt::Decl {
                name,
                init: None,
                ..
            } if name == "y"
        ));
    }

    #[test]
    fn pure_expression_statements_are_dropped_but_out_survives() {
        let stmts = opt("1 + 2; out(0, 1.0); return 0;");
        assert_eq!(stmts.len(), 2, "{stmts:?}");
        assert!(matches!(
            &stmts[0],
            Stmt::Expr {
                expr: Expr::Call { name, .. },
                ..
            } if name == "out"
        ));
    }

    #[test]
    fn bool_eq_folds_to_int_literal() {
        // The compiler types `bool == bool` as int; folding must preserve
        // that or the optimized program would fail to recompile.
        let stmts = opt("return true == false;");
        assert!(matches!(
            &stmts[0],
            Stmt::Return {
                expr: Some(Expr::Int(0)),
                ..
            }
        ));
    }
}
