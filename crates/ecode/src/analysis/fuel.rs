//! Static worst-case fuel bound.
//!
//! E-Code has no loops, so compiled bytecode only ever jumps **forward**:
//! the program is a DAG and the most expensive execution is the longest
//! root-to-`Ret` path. One backwards dynamic-programming sweep computes it
//! exactly — `bound[pc]` is the worst-case number of instructions executed
//! starting at `pc` (each instruction costs 1 fuel, matching the VM).

use crate::vm::Op;

/// Exact worst-case fuel for a compiled program.
///
/// The VM charges 1 fuel per instruction before executing it, so a run
/// with `fuel >= max_fuel(code)` can never abort with `OutOfFuel`.
pub(crate) fn max_fuel(code: &[Op]) -> u64 {
    let n = code.len();
    // bound[n] = 0 lets straight-line fall-through index one past the end
    // without a branch (the compiler always terminates code with RetVoid,
    // so the slot is never actually reached).
    let mut bound = vec![0u64; n + 1];
    for pc in (0..n).rev() {
        // The compiler only emits forward jumps; clamp defensively so a
        // malformed target can never make the analysis loop or panic.
        let fwd = |t: u32| -> u64 { bound[(t as usize).clamp(pc + 1, n)] };
        bound[pc] = 1 + match code[pc] {
            Op::Ret | Op::RetVoid => 0,
            Op::Jmp(t) => fwd(t),
            Op::JmpIfFalse(t) => bound[pc + 1].max(fwd(t)),
            _ => bound[pc + 1],
        };
    }
    bound[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instance, Program, Type, Value};

    fn bound_of(src: &str, inputs: &[(&str, Type)]) -> (Program, u64) {
        let p = Program::compile(src, inputs).expect("compiles");
        let b = max_fuel(&p.code);
        (p, b)
    }

    #[test]
    fn straight_line_bound_is_exact() {
        let (p, bound) = bound_of("return 2 + 3;", &[]);
        let mut inst = Instance::new(&p);
        let used = inst.run(&[], 1_000).unwrap().fuel_used;
        assert_eq!(bound, used, "no branches: bound is the exact cost");
    }

    #[test]
    fn branch_bound_covers_the_expensive_arm() {
        let src = r#"
            int y = 0;
            if (x > 0) { y = x * 2 + 1; } else { y = 1; }
            return y;
        "#;
        let (p, bound) = bound_of(src, &[("x", Type::Int)]);
        let mut costly_inst = Instance::new(&p);
        let costly = costly_inst.run(&[Value::Int(5)], 1_000).unwrap().fuel_used;
        let mut cheap_inst = Instance::new(&p);
        let cheap = cheap_inst.run(&[Value::Int(-5)], 1_000).unwrap().fuel_used;
        assert!(costly > cheap);
        assert_eq!(bound, costly, "bound equals the longest path");
    }

    #[test]
    fn bound_is_sufficient_fuel() {
        let src = "static int n = 0; if (x > 10 && x < 100) { n = n + 1; } return n;";
        let (p, bound) = bound_of(src, &[("x", Type::Int)]);
        for x in [-5i64, 0, 11, 50, 99, 100, 1_000] {
            let mut inst = Instance::new(&p);
            let r = inst.run(&[Value::Int(x)], bound);
            assert!(r.is_ok(), "bound fuel must always suffice (x={x}): {r:?}");
        }
    }

    #[test]
    fn dead_code_after_return_does_not_inflate_the_bound() {
        let (_, with_dead) = bound_of("return 1; 2 + 2;", &[]);
        let (_, without) = bound_of("return 1;", &[]);
        assert_eq!(with_dead, without);
    }
}
