//! Static verification and optimization of E-Code programs.
//!
//! E-Code runs in the kernel fast path, where the paper requires that
//! analyzers "never block and be computationally small". The original
//! design enforced this only *at runtime* — a fuel meter aborts runaway
//! programs with [`OutOfFuel`](crate::EcodeError::OutOfFuel) after they
//! have already perturbed the monitored node. This module moves the
//! enforcement to *load time*, the way an eBPF verifier does: a program
//! is analyzed once, before installation, and either rejected with
//! line-numbered [`Diagnostic`]s or admitted as a [`Verified<Program>`]
//! whose worst-case cost is a machine-checked bound.
//!
//! [`verify`] runs five passes:
//!
//! 1. **Compile** — lex/parse/type errors become `E0004` diagnostics.
//! 2. **Check** — an abstract interpreter with interval reasoning finds
//!    guaranteed traps (`E0001` division by zero, `E0002` out-of-range
//!    `out()` slots) and lints (possible traps, unused state, dead
//!    branches, unreachable code, uninitialized reads, inconsistent
//!    returns).
//! 3. **Optimize** — constant folding, dead-branch elimination, and
//!    unreachable-code removal shrink the program while preserving its
//!    observable behavior exactly.
//! 4. **Bound** — because E-Code has no loops, compiled bytecode only
//!    jumps forward; the worst-case fuel is the longest path through the
//!    DAG, computed exactly and proven to fit the host's budget
//!    (`E0003` otherwise).
//! 5. **Merge** — a shard-safety dataflow classifies every static slot
//!    into the merge lattice ([`MergeClass`]), producing the
//!    [`MergePlan`] the sharded GPA uses to fold replica instances.
//!    Advisory by default (`W0009` for write-only mergeable state);
//!    with [`VerifyLimits::require_mergeable`] a non-mergeable slot
//!    rejects the program with `M0001`.
//!
//! The bound in the resulting [`VerifyReport`] is a guarantee: running
//! the verified program with that much fuel can never abort.

mod check;
mod diag;
pub(crate) mod fuel;
pub(crate) mod merge;
mod opt;

pub use diag::{Diagnostic, Severity};
pub use merge::{MergeClass, MergePlan, MinMaxOp, SlotPlan};

use crate::compile::{compile_stmts, Program, Type};
use crate::lexer::lex;
use crate::parser::Parser;
use crate::EcodeError;
use std::fmt;

/// Host-imposed resource limits a program must be proven to respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyLimits {
    /// Worst-case fuel the host is willing to spend per event.
    pub max_fuel: u64,
    /// Highest `out()` slot the host accepts (slots are `0..=max_out_slot`;
    /// hosts keep one cell per slot, so this bounds per-analyzer memory).
    pub max_out_slot: i64,
    /// Reject programs whose [`MergePlan`] is not fully shard-safe
    /// (`M0001`). Off by default: single-instance hosts run
    /// non-mergeable programs just fine.
    pub require_mergeable: bool,
}

impl Default for VerifyLimits {
    fn default() -> Self {
        VerifyLimits {
            max_fuel: 2_000,
            max_out_slot: 63,
            require_mergeable: false,
        }
    }
}

impl VerifyLimits {
    /// Default limits with a specific fuel budget.
    pub fn with_max_fuel(max_fuel: u64) -> Self {
        VerifyLimits {
            max_fuel,
            ..Default::default()
        }
    }

    /// Same limits, but demanding a fully shard-safe [`MergePlan`].
    pub fn require_mergeable(mut self) -> Self {
        self.require_mergeable = true;
        self
    }
}

/// What the verifier proved about an admitted program.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Exact worst-case fuel of the (optimized) program. Running with
    /// this much fuel can never abort with `OutOfFuel`.
    pub fuel_bound: u64,
    /// Worst-case fuel before optimization, for overhead reporting.
    pub unoptimized_fuel_bound: u64,
    /// Instruction count after optimization.
    pub code_len: usize,
    /// Instruction count before optimization.
    pub unoptimized_code_len: usize,
    /// Shard-safety classification of every static slot, in slot order.
    /// [`MergePlan::fully_mergeable`] decides whether the program may be
    /// evaluated as replicas and folded with `Instance::merge_from`.
    pub merge_plan: MergePlan,
    /// Non-fatal findings (severity [`Severity::Warning`]).
    pub warnings: Vec<Diagnostic>,
}

/// A program that passed verification, carrying its [`VerifyReport`].
///
/// The only way to construct one is [`verify`], so holding a
/// `Verified<Program>` is proof the checks ran.
#[derive(Debug, Clone)]
pub struct Verified<T> {
    value: T,
    report: VerifyReport,
}

impl<T> Verified<T> {
    /// The verified value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// What the verifier proved.
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// Consumes the wrapper, returning the value and its report.
    pub fn into_parts(self) -> (T, VerifyReport) {
        (self.value, self.report)
    }

    /// Consumes the wrapper, returning just the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

/// Verification failure: at least one error-severity [`Diagnostic`].
///
/// `diagnostics` holds every finding (errors *and* warnings) in source
/// order; [`fmt::Display`] renders them rustc-style with source excerpts.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// All findings, errors first within each line, in line order.
    pub diagnostics: Vec<Diagnostic>,
    rendered: String,
}

impl VerifyError {
    fn new(src: &str, diagnostics: Vec<Diagnostic>) -> VerifyError {
        let rendered = diagnostics
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n");
        VerifyError {
            diagnostics,
            rendered,
        }
    }

    /// Only the rejecting (error-severity) findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

impl std::error::Error for VerifyError {}

/// Converts a compile failure into its `E0004` diagnostic.
fn compile_diag(err: &EcodeError) -> Diagnostic {
    match err {
        EcodeError::Lex { line, msg }
        | EcodeError::Parse { line, msg }
        | EcodeError::Types { line, msg } => {
            Diagnostic::error("E0004", *line, format!("does not compile: {msg}"))
        }
        other => Diagnostic::error("E0004", 0, format!("does not compile: {other}")),
    }
}

/// Verifies and optimizes an E-Code program against `limits`.
///
/// On success the returned [`Verified<Program>`] holds the *optimized*
/// program plus a [`VerifyReport`] whose `fuel_bound` is an exact
/// worst-case: running with that much fuel can never hit `OutOfFuel`.
/// On failure every finding is returned, sorted by source line, with
/// errors carrying the lines that caused rejection.
///
/// # Example
///
/// ```
/// use ecode::{verify, Type, VerifyLimits};
///
/// let v = verify(
///     "static int n = 0; n = n + 1; return n % 10 == 0;",
///     &[("size", Type::Int)],
///     &VerifyLimits::default(),
/// )
/// .expect("verifies");
/// assert!(v.report().fuel_bound <= 2_000);
///
/// let err = verify("return 1 / 0;", &[], &VerifyLimits::default())
///     .expect_err("guaranteed trap is rejected");
/// assert_eq!(err.errors().next().unwrap().code, "E0001");
/// ```
pub fn verify(
    src: &str,
    inputs: &[(&str, Type)],
    limits: &VerifyLimits,
) -> Result<Verified<Program>, VerifyError> {
    // Pass 1: compile. Anything the compiler rejects is E0004; the later
    // passes may then assume a well-typed AST.
    let stmts = match lex(src).and_then(|t| Parser::new(t).program()) {
        Ok(stmts) => stmts,
        Err(e) => return Err(VerifyError::new(src, vec![compile_diag(&e)])),
    };
    let unoptimized = match compile_stmts(&stmts, inputs) {
        Ok(p) => p,
        Err(e) => return Err(VerifyError::new(src, vec![compile_diag(&e)])),
    };
    let unoptimized_fuel_bound = fuel::max_fuel(&unoptimized.code);
    let unoptimized_code_len = unoptimized.code.len();

    // Pass 2: safety checks and lints on the original AST.
    let mut diagnostics = check::check(&stmts, inputs, limits);

    // Pass 3: optimize and recompile. The optimizer is semantics-
    // preserving by construction; if its output somehow fails to
    // recompile, fall back to the unoptimized program rather than
    // rejecting a valid one.
    let (program, fuel_bound, code_len) = match compile_stmts(&opt::optimize(&stmts), inputs) {
        Ok(p) => {
            let b = fuel::max_fuel(&p.code);
            let l = p.code.len();
            (p, b, l)
        }
        Err(_) => (unoptimized, unoptimized_fuel_bound, unoptimized_code_len),
    };

    // Pass 4: the fuel bound must fit the host budget. Checked against
    // the optimized program — what would actually be installed.
    if fuel_bound > limits.max_fuel {
        diagnostics.push(Diagnostic::error(
            "E0003",
            0,
            format!(
                "worst-case fuel {} exceeds the host budget {}",
                fuel_bound, limits.max_fuel
            ),
        ));
    }

    // Pass 5: shard-safety. Classified on the program that would
    // actually be installed, so optimizations (constant folding, dead
    // branches) can only make slots *more* mergeable, never less.
    let merge_plan = merge::classify(&program);
    for slot in &merge_plan.slots {
        match &slot.class {
            MergeClass::Opaque { reason, .. } if limits.require_mergeable => {
                diagnostics.push(Diagnostic::error(
                    "M0001",
                    0,
                    format!(
                        "static variable \"{}\" is not shard-mergeable: {}",
                        slot.name, reason
                    ),
                ));
            }
            MergeClass::LastWriteWins if limits.require_mergeable => {
                diagnostics.push(Diagnostic::error(
                    "M0001",
                    0,
                    format!(
                        "static variable \"{}\" is not shard-mergeable: last write \
                         wins across shards and no tiebreak key is available",
                        slot.name
                    ),
                ));
            }
            class if class.shard_safe() && *class != MergeClass::ReadOnly && !slot.escapes => {
                diagnostics.push(Diagnostic::warning(
                    "W0009",
                    0,
                    format!(
                        "static variable \"{}\" is mergeable ({}) but its value never \
                         escapes — it feeds no output, return, branch, or other static",
                        slot.name,
                        class.describe()
                    ),
                ));
            }
            _ => {}
        }
    }

    // Program-wide findings (line 0) sort after line-anchored ones;
    // within a line, errors lead. The sort is stable, so same-line
    // same-severity findings keep discovery order.
    diagnostics.sort_by_key(|d| (d.line == 0, d.line, std::cmp::Reverse(d.severity)));

    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        return Err(VerifyError::new(src, diagnostics));
    }
    Ok(Verified {
        value: program,
        report: VerifyReport {
            fuel_bound,
            unoptimized_fuel_bound,
            code_len,
            unoptimized_code_len,
            merge_plan,
            warnings: diagnostics,
        },
    })
}
