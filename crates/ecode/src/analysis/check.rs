//! Safety checks and lints over the E-Code AST.
//!
//! A small abstract interpreter walks the program once, tracking an
//! interval for every `int` expression and constants for `double`/`bool`
//! ones. Inputs and `static` variables are unknown (statics persist
//! across runs); locals are tracked exactly through straight-line code
//! and joined at `if`/`else` merges. The interval reasoning is what lets
//! the verifier reject `x / 0` while staying quiet about
//! `x / max(1, y)`.

use std::collections::{HashMap, HashSet};

use crate::analysis::diag::Diagnostic;
use crate::analysis::VerifyLimits;
use crate::compile::Type;
use crate::parser::{BinOp, Expr, Stmt, UnOp};

/// An inclusive `int` range, widened to `TOP` whenever a bound would
/// leave `i64` (the VM wraps, so any overflowing op forgets everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: i128,
    hi: i128,
}

const I64_MIN: i128 = i64::MIN as i128;
const I64_MAX: i128 = i64::MAX as i128;

impl Interval {
    const TOP: Interval = Interval {
        lo: I64_MIN,
        hi: I64_MAX,
    };

    fn exact(v: i64) -> Interval {
        Interval {
            lo: v as i128,
            hi: v as i128,
        }
    }

    fn of(lo: i128, hi: i128) -> Interval {
        if lo < I64_MIN || hi > I64_MAX {
            Interval::TOP
        } else {
            Interval { lo, hi }
        }
    }

    fn as_exact(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo as i64)
    }

    fn contains(self, v: i64) -> bool {
        self.lo <= v as i128 && v as i128 <= self.hi
    }

    fn is_exactly(self, v: i64) -> bool {
        self.as_exact() == Some(v)
    }

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn add(self, o: Interval) -> Interval {
        Interval::of(self.lo + o.lo, self.hi + o.hi)
    }

    fn sub(self, o: Interval) -> Interval {
        Interval::of(self.lo - o.hi, self.hi - o.lo)
    }

    fn mul(self, o: Interval) -> Interval {
        let products = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval::of(
            products.iter().copied().min().unwrap(),
            products.iter().copied().max().unwrap(),
        )
    }

    fn neg(self) -> Interval {
        Interval::of(-self.hi, -self.lo)
    }

    fn abs(self) -> Interval {
        // wrapping_abs(i64::MIN) == i64::MIN, so give up on that corner.
        if self.lo <= I64_MIN {
            return Interval::TOP;
        }
        let lo = if self.lo <= 0 && self.hi >= 0 {
            0
        } else {
            self.lo.abs().min(self.hi.abs())
        };
        Interval::of(lo, self.lo.abs().max(self.hi.abs()))
    }

    /// Result range of `self / o`, assuming the VM did not trap (so zero
    /// divisors are excluded from `o`).
    fn div(self, o: Interval) -> Interval {
        if let (Some(l), Some(r)) = (self.as_exact(), o.as_exact()) {
            if r != 0 {
                return Interval::exact(l.wrapping_div(r));
            }
        }
        // |l / r| <= |l| for |r| >= 1: bound by the dividend's magnitude.
        let m = self.lo.abs().max(self.hi.abs());
        Interval::of(-m, m)
    }

    /// Result range of `self % o`, assuming no trap.
    fn rem(self, o: Interval) -> Interval {
        if let (Some(l), Some(r)) = (self.as_exact(), o.as_exact()) {
            if r != 0 {
                return Interval::exact(l.wrapping_rem(r));
            }
        }
        // |l % r| < |r|; also bounded by |l|.
        let m = o.lo.abs().max(o.hi.abs()).max(1) - 1;
        let m = m.min(self.lo.abs().max(self.hi.abs()));
        Interval::of(-m, m)
    }

    fn min_with(self, o: Interval) -> Interval {
        Interval::of(self.lo.min(o.lo), self.hi.min(o.hi))
    }

    fn max_with(self, o: Interval) -> Interval {
        Interval::of(self.lo.max(o.lo), self.hi.max(o.hi))
    }
}

/// Abstract value: interval for ints, constant-or-unknown for the rest.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AbsVal {
    Int(Interval),
    Dbl(Option<f64>),
    Bool(Option<bool>),
}

impl AbsVal {
    fn top(ty: Type) -> AbsVal {
        match ty {
            Type::Int => AbsVal::Int(Interval::TOP),
            Type::Double => AbsVal::Dbl(None),
            Type::Bool => AbsVal::Bool(None),
        }
    }

    fn zero(ty: Type) -> AbsVal {
        match ty {
            Type::Int => AbsVal::Int(Interval::exact(0)),
            Type::Double => AbsVal::Dbl(Some(0.0)),
            Type::Bool => AbsVal::Bool(Some(false)),
        }
    }

    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.join(b)),
            (AbsVal::Dbl(a), AbsVal::Dbl(b)) => AbsVal::Dbl(if a == b { a } else { None }),
            (AbsVal::Bool(a), AbsVal::Bool(b)) => AbsVal::Bool(if a == b { a } else { None }),
            // Shouldn't happen on well-typed programs; forget everything.
            (a, _) => match a {
                AbsVal::Int(_) => AbsVal::Int(Interval::TOP),
                AbsVal::Dbl(_) => AbsVal::Dbl(None),
                AbsVal::Bool(_) => AbsVal::Bool(None),
            },
        }
    }

    /// Promotes to a double constant (mirrors the VM's `I2F`).
    fn as_dbl(self) -> Option<f64> {
        match self {
            AbsVal::Int(i) => i.as_exact().map(|v| v as f64),
            AbsVal::Dbl(d) => d,
            AbsVal::Bool(_) => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Input,
    Static,
    Local,
}

#[derive(Debug, Clone)]
struct Var {
    kind: VarKind,
    ty: Type,
    val: AbsVal,
    /// For locals: has any assignment (or initializer) executed yet?
    assigned: bool,
    /// Declaration line (0 for inputs).
    line: u32,
}

struct Checker {
    diags: Vec<Diagnostic>,
    env: HashMap<String, Var>,
    /// Variables whose value was ever read.
    reads: HashSet<String>,
    /// Locals already warned about reading-before-assignment.
    warned_uninit: HashSet<String>,
    max_out_slot: i64,
    value_return_lines: Vec<u32>,
    void_return_lines: Vec<u32>,
}

/// Runs every safety check and lint. Assumes the program already
/// compiled (well-typed); stays total on anything else.
pub(crate) fn check(
    stmts: &[Stmt],
    inputs: &[(&str, Type)],
    limits: &VerifyLimits,
) -> Vec<Diagnostic> {
    let mut c = Checker {
        diags: Vec::new(),
        env: HashMap::new(),
        reads: HashSet::new(),
        warned_uninit: HashSet::new(),
        max_out_slot: limits.max_out_slot,
        value_return_lines: Vec::new(),
        void_return_lines: Vec::new(),
    };
    for (name, ty) in inputs {
        c.env.insert(
            (*name).to_owned(),
            Var {
                kind: VarKind::Input,
                ty: *ty,
                val: AbsVal::top(*ty),
                assigned: true,
                line: 0,
            },
        );
    }
    let returns = c.block(stmts);
    c.finish(inputs, returns);
    c.diags
}

/// Value conversion applied when storing into a variable of type `to`
/// (mirrors the compiler's implicit `int` → `double` promotion).
fn coerce(val: AbsVal, to: Type) -> AbsVal {
    match (val, to) {
        (AbsVal::Int(i), Type::Double) => AbsVal::Dbl(i.as_exact().map(|v| v as f64)),
        (v, _) => v,
    }
}

/// Abstract `==` (`is_eq`) or `!=` on int intervals.
fn cmp_int(a: Interval, b: Interval, is_eq: bool) -> AbsVal {
    let disjoint = a.hi < b.lo || a.lo > b.hi;
    AbsVal::Bool(match (a.as_exact(), b.as_exact()) {
        (Some(x), Some(y)) => Some((x == y) == is_eq),
        _ if disjoint => Some(!is_eq),
        _ => None,
    })
}

fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Decl { line, .. }
        | Stmt::Assign { line, .. }
        | Stmt::If { line, .. }
        | Stmt::Return { line, .. }
        | Stmt::Expr { line, .. } => *line,
    }
}

impl Checker {
    /// Analyzes a statement list; returns whether it definitely returns.
    fn block(&mut self, stmts: &[Stmt]) -> bool {
        let mut returned = false;
        for s in stmts {
            if returned {
                self.diags.push(Diagnostic::warning(
                    "W0006",
                    stmt_line(s),
                    "unreachable code: every path already returned",
                ));
                // Keep the names visible (the flat namespace means later
                // code may reference them) but skip value analysis.
                self.declare_only(std::slice::from_ref(s));
                continue;
            }
            returned = self.stmt(s);
        }
        returned
    }

    /// Registers declarations from skipped (dead/unreachable) statements
    /// without analyzing them, so later references still resolve.
    fn declare_only(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Decl {
                    is_static,
                    ty,
                    name,
                    line,
                    ..
                } => {
                    let ty = Type::from(*ty);
                    self.env.entry(name.clone()).or_insert(Var {
                        kind: if *is_static {
                            VarKind::Static
                        } else {
                            VarKind::Local
                        },
                        ty,
                        // Dead locals stay zero-initialized; dead statics
                        // still get their compile-time initial value but
                        // may be written by nothing, so treat as unknown.
                        val: if *is_static {
                            AbsVal::top(ty)
                        } else {
                            AbsVal::zero(ty)
                        },
                        assigned: false,
                        line: *line,
                    });
                }
                Stmt::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    self.declare_only(then_block);
                    self.declare_only(else_block);
                }
                _ => {}
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) -> bool {
        match s {
            Stmt::Decl {
                is_static,
                ty,
                name,
                init,
                line,
            } => {
                let ty = Type::from(*ty);
                let (val, assigned) = if *is_static {
                    // Statics persist across runs: their value at entry is
                    // whatever the previous run left, i.e. unknown.
                    (AbsVal::top(ty), true)
                } else {
                    match init {
                        Some(e) => {
                            let v = self.eval(e, *line);
                            (coerce(v, ty), true)
                        }
                        None => (AbsVal::zero(ty), false),
                    }
                };
                self.env.insert(
                    name.clone(),
                    Var {
                        kind: if *is_static {
                            VarKind::Static
                        } else {
                            VarKind::Local
                        },
                        ty,
                        val,
                        assigned,
                        line: *line,
                    },
                );
                false
            }
            Stmt::Assign { name, expr, line } => {
                let val = self.eval(expr, *line);
                if let Some(var) = self.env.get_mut(name) {
                    var.assigned = true;
                    var.val = coerce(val, var.ty);
                }
                false
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                line,
            } => {
                let cond_val = self.eval(cond, *line);
                match cond_val {
                    AbsVal::Bool(Some(true)) => {
                        if !else_block.is_empty() {
                            self.diags.push(Diagnostic::warning(
                                "W0005",
                                *line,
                                "condition is always true: the else branch never runs",
                            ));
                            self.declare_only(else_block);
                        }
                        self.block(then_block)
                    }
                    AbsVal::Bool(Some(false)) => {
                        self.diags.push(Diagnostic::warning(
                            "W0005",
                            *line,
                            "condition is always false: the then branch never runs",
                        ));
                        self.declare_only(then_block);
                        if else_block.is_empty() {
                            false
                        } else {
                            self.block(else_block)
                        }
                    }
                    _ => {
                        let before = self.env.clone();
                        let then_returns = self.block(then_block);
                        let after_then = std::mem::replace(&mut self.env, before);
                        let else_returns = if else_block.is_empty() {
                            false
                        } else {
                            self.block(else_block)
                        };
                        self.join_envs(after_then, then_returns, else_returns);
                        then_returns && else_returns
                    }
                }
            }
            Stmt::Return { expr, line } => {
                match expr {
                    Some(e) => {
                        let _ = self.eval(e, *line);
                        self.value_return_lines.push(*line);
                    }
                    None => self.void_return_lines.push(*line),
                }
                true
            }
            Stmt::Expr { expr, line } => {
                let _ = self.eval(expr, *line);
                false
            }
        }
    }

    /// Merges the then-branch environment (moved out) with the current
    /// else-branch environment. A branch that returned contributes no
    /// fall-through state.
    fn join_envs(&mut self, then_env: HashMap<String, Var>, then_ret: bool, else_ret: bool) {
        if then_ret && !else_ret {
            return; // only the else state survives
        }
        // Merge in name order: join() is commutative today, but keeping
        // the walk deterministic means future diagnostics emitted from
        // here can never depend on hash-map iteration order.
        let mut merged: Vec<(String, Var)> = then_env.into_iter().collect();
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, t_var) in merged {
            match self.env.get_mut(&name) {
                Some(e_var) => {
                    if else_ret {
                        // Only the then state survives.
                        *e_var = t_var;
                    } else {
                        e_var.val = e_var.val.join(t_var.val);
                        e_var.assigned = e_var.assigned && t_var.assigned;
                    }
                }
                None => {
                    // Declared only in the then branch; flat namespace
                    // keeps the name alive afterwards.
                    self.env.insert(name, t_var);
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr, line: u32) -> AbsVal {
        match e {
            Expr::Int(v) => AbsVal::Int(Interval::exact(*v)),
            Expr::Double(v) => AbsVal::Dbl(Some(*v)),
            Expr::Bool(v) => AbsVal::Bool(Some(*v)),
            Expr::Var(name) => {
                self.reads.insert(name.clone());
                match self.env.get(name) {
                    Some(var) => {
                        if var.kind == VarKind::Local
                            && !var.assigned
                            && self.warned_uninit.insert(name.clone())
                        {
                            self.diags.push(Diagnostic::warning(
                                "W0007",
                                line,
                                format!(
                                    "local {name:?} is read before any assignment (reads as 0)"
                                ),
                            ));
                        }
                        var.val
                    }
                    None => AbsVal::Int(Interval::TOP),
                }
            }
            Expr::Un { op, expr, line } => {
                let v = self.eval(expr, *line);
                match op {
                    UnOp::Neg => match v {
                        AbsVal::Int(i) => AbsVal::Int(i.neg()),
                        AbsVal::Dbl(d) => AbsVal::Dbl(d.map(|x| -x)),
                        AbsVal::Bool(_) => AbsVal::Bool(None),
                    },
                    UnOp::Not => match v {
                        AbsVal::Bool(b) => AbsVal::Bool(b.map(|x| !x)),
                        _ => AbsVal::Bool(None),
                    },
                }
            }
            Expr::Bin { op, lhs, rhs, line } => self.eval_bin(*op, lhs, rhs, *line),
            Expr::Call { name, args, line } => self.eval_call(name, args, *line),
        }
    }

    fn eval_bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: u32) -> AbsVal {
        // Short-circuit operators mirror the VM: a constant-false `&&`
        // lhs (or constant-true `||` lhs) means the rhs never evaluates,
        // so don't analyze it (its diagnostics would be phantoms).
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(lhs, line);
            return match (op, l) {
                (BinOp::And, AbsVal::Bool(Some(false))) => AbsVal::Bool(Some(false)),
                (BinOp::Or, AbsVal::Bool(Some(true))) => AbsVal::Bool(Some(true)),
                (BinOp::And, AbsVal::Bool(Some(true))) | (BinOp::Or, AbsVal::Bool(Some(false))) => {
                    self.eval(rhs, line)
                }
                _ => {
                    let _ = self.eval(rhs, line);
                    AbsVal::Bool(None)
                }
            };
        }

        let l = self.eval(lhs, line);
        let r = self.eval(rhs, line);

        // Division/modulo safety: the one check with teeth.
        if matches!(op, BinOp::Div | BinOp::Mod) {
            let what = if op == BinOp::Div {
                "division"
            } else {
                "modulo"
            };
            match r {
                AbsVal::Int(i) if i.is_exactly(0) => self.diags.push(Diagnostic::error(
                    "E0001",
                    line,
                    format!("{what} by zero: the divisor is always 0"),
                )),
                AbsVal::Int(i) if i.contains(0) => self.diags.push(Diagnostic::warning(
                    "W0001",
                    line,
                    format!("{what} divisor may be zero (range {}..={})", i.lo, i.hi),
                )),
                AbsVal::Dbl(Some(0.0)) => self.diags.push(Diagnostic::warning(
                    "W0001",
                    line,
                    "division by the constant 0.0 yields infinity or NaN",
                )),
                _ => {}
            }
        }

        match (l, r) {
            (AbsVal::Int(a), AbsVal::Int(b)) => match op {
                BinOp::Add => AbsVal::Int(a.add(b)),
                BinOp::Sub => AbsVal::Int(a.sub(b)),
                BinOp::Mul => AbsVal::Int(a.mul(b)),
                BinOp::Div => AbsVal::Int(a.div(b)),
                BinOp::Mod => AbsVal::Int(a.rem(b)),
                BinOp::Eq => cmp_int(a, b, true),
                BinOp::Ne => cmp_int(a, b, false),
                BinOp::Lt => AbsVal::Bool(if a.hi < b.lo {
                    Some(true)
                } else if a.lo >= b.hi {
                    Some(false)
                } else {
                    None
                }),
                BinOp::Le => AbsVal::Bool(if a.hi <= b.lo {
                    Some(true)
                } else if a.lo > b.hi {
                    Some(false)
                } else {
                    None
                }),
                BinOp::Gt => AbsVal::Bool(if a.lo > b.hi {
                    Some(true)
                } else if a.hi <= b.lo {
                    Some(false)
                } else {
                    None
                }),
                BinOp::Ge => AbsVal::Bool(if a.lo >= b.hi {
                    Some(true)
                } else if a.hi < b.lo {
                    Some(false)
                } else {
                    None
                }),
                BinOp::And | BinOp::Or => AbsVal::Bool(None),
            },
            (AbsVal::Bool(a), AbsVal::Bool(b)) if matches!(op, BinOp::Eq | BinOp::Ne) => {
                // The compiler types `bool == bool` as int 0/1.
                AbsVal::Int(match (a, b) {
                    (Some(x), Some(y)) => Interval::exact(((x == y) == (op == BinOp::Eq)) as i64),
                    _ => Interval::of(0, 1),
                })
            }
            _ => {
                // Mixed/double arithmetic: constant-fold when both sides
                // are known constants, else unknown.
                let (a, b) = (l.as_dbl(), r.as_dbl());
                let fold = |f: fn(f64, f64) -> f64| match (a, b) {
                    (Some(x), Some(y)) => AbsVal::Dbl(Some(f(x, y))),
                    _ => AbsVal::Dbl(None),
                };
                let cmp = |f: fn(f64, f64) -> bool| match (a, b) {
                    (Some(x), Some(y)) => AbsVal::Bool(Some(f(x, y))),
                    _ => AbsVal::Bool(None),
                };
                match op {
                    BinOp::Add => fold(|x, y| x + y),
                    BinOp::Sub => fold(|x, y| x - y),
                    BinOp::Mul => fold(|x, y| x * y),
                    BinOp::Div => fold(|x, y| x / y),
                    BinOp::Eq => cmp(|x, y| x == y),
                    BinOp::Ne => cmp(|x, y| x != y),
                    BinOp::Lt => cmp(|x, y| x < y),
                    BinOp::Le => cmp(|x, y| x <= y),
                    BinOp::Gt => cmp(|x, y| x > y),
                    BinOp::Ge => cmp(|x, y| x >= y),
                    BinOp::Mod | BinOp::And | BinOp::Or => AbsVal::Bool(None),
                }
            }
        }
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], line: u32) -> AbsVal {
        let vals: Vec<AbsVal> = args.iter().map(|a| self.eval(a, line)).collect();
        match (name, vals.as_slice()) {
            ("abs", [AbsVal::Int(i)]) => AbsVal::Int(i.abs()),
            ("abs", [AbsVal::Dbl(d)]) => AbsVal::Dbl(d.map(f64::abs)),
            ("min", [AbsVal::Int(a), AbsVal::Int(b)]) => AbsVal::Int(a.min_with(*b)),
            ("max", [AbsVal::Int(a), AbsVal::Int(b)]) => AbsVal::Int(a.max_with(*b)),
            ("min" | "max", [a, b]) => {
                let (x, y) = (a.as_dbl(), b.as_dbl());
                AbsVal::Dbl(match (x, y) {
                    (Some(x), Some(y)) => Some(if name == "min" { x.min(y) } else { x.max(y) }),
                    _ => None,
                })
            }
            ("out", [slot, _value]) => {
                if let AbsVal::Int(i) = slot {
                    let max = self.max_out_slot as i128;
                    if i.hi < 0 || i.lo > max {
                        self.diags.push(Diagnostic::error(
                            "E0002",
                            line,
                            format!(
                                "out() slot is always out of range: {}..={} vs allowed 0..={}",
                                i.lo, i.hi, self.max_out_slot
                            ),
                        ));
                    } else if i.lo < 0 || i.hi > max {
                        self.diags.push(Diagnostic::warning(
                            "W0002",
                            line,
                            format!(
                                "out() slot may fall outside 0..={} (range {}..={})",
                                self.max_out_slot, i.lo, i.hi
                            ),
                        ));
                    }
                }
                // out() leaves int 0 on the stack.
                AbsVal::Int(Interval::exact(0))
            }
            _ => AbsVal::Int(Interval::TOP),
        }
    }

    fn finish(&mut self, inputs: &[(&str, Type)], program_returns: bool) {
        // Unused statics: one warning each, at the declaration.
        let mut statics: Vec<(&String, &Var)> = self
            .env
            .iter()
            .filter(|(name, v)| v.kind == VarKind::Static && !self.reads.contains(*name))
            .collect();
        statics.sort_by_key(|(_, v)| v.line);
        let unused_statics: Vec<Diagnostic> = statics
            .into_iter()
            .map(|(name, v)| {
                Diagnostic::warning(
                    "W0003",
                    v.line,
                    format!("static variable {name:?} is never read"),
                )
            })
            .collect();
        self.diags.extend(unused_statics);

        // Unused inputs: one combined warning (filters routinely ignore
        // most record fields, so per-input warnings would drown signal).
        let unused: Vec<&str> = inputs
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| !self.reads.contains(*n))
            .collect();
        if !unused.is_empty() && unused.len() < inputs.len() {
            self.diags.push(Diagnostic::warning(
                "W0004",
                0,
                format!("unused inputs: {}", unused.join(", ")),
            ));
        }

        // Inconsistent returns: value returns mixed with void exits.
        if !self.value_return_lines.is_empty() {
            let void_line = self.void_return_lines.first().copied();
            if let Some(line) = void_line {
                self.diags.push(Diagnostic::warning(
                    "W0008",
                    line,
                    "this return yields no value but other paths return one (host sees 0)",
                ));
            } else if !program_returns {
                self.diags.push(Diagnostic::warning(
                    "W0008",
                    0,
                    "some paths return a value but the program can fall off the end (host sees 0)",
                ));
            }
        }
    }
}
