//! Recursive-descent parser producing the E-Code AST.

use crate::lexer::{Tok, Token};
use crate::EcodeError;

/// Declared types in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstType {
    Int,
    Double,
    Bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Double(f64),
    Bool(bool),
    Var(String),
    Un {
        op: UnOp,
        expr: Box<Expr>,
        line: u32,
    },
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Decl {
        is_static: bool,
        ty: AstType,
        name: String,
        init: Option<Expr>,
        line: u32,
    },
    Assign {
        name: String,
        expr: Expr,
        line: u32,
    },
    If {
        cond: Expr,
        then_block: Vec<Stmt>,
        else_block: Vec<Stmt>,
        line: u32,
    },
    Return {
        expr: Option<Expr>,
        line: u32,
    },
    Expr {
        expr: Expr,
        line: u32,
    },
}

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(toks: Vec<Token>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> EcodeError {
        EcodeError::Parse {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), EcodeError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// Parses a whole program (a statement list up to EOF).
    pub fn program(&mut self) -> Result<Vec<Stmt>, EcodeError> {
        let mut stmts = Vec::new();
        while *self.peek() != Tok::Eof {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn ty(&mut self) -> Option<AstType> {
        let t = match self.peek() {
            Tok::KwInt => AstType::Int,
            Tok::KwDouble => AstType::Double,
            Tok::KwBool => AstType::Bool,
            _ => return None,
        };
        self.bump();
        Some(t)
    }

    fn stmt(&mut self) -> Result<Stmt, EcodeError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::KwStatic => {
                self.bump();
                let ty = self
                    .ty()
                    .ok_or_else(|| self.err("expected type after 'static'"))?;
                self.finish_decl(true, ty, line)
            }
            Tok::KwInt | Tok::KwDouble | Tok::KwBool => {
                let ty = self.ty().expect("peeked a type");
                self.finish_decl(false, ty, line)
            }
            Tok::KwIf => self.if_stmt(),
            Tok::KwReturn => {
                self.bump();
                let expr = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Return { expr, line })
            }
            Tok::Ident(name)
                // Lookahead: assignment or expression statement.
                if self.toks[self.pos + 1].tok == Tok::Assign => {
                    self.bump(); // ident
                    self.bump(); // '='
                    let expr = self.expr()?;
                    self.expect(Tok::Semi, "';'")?;
                    Ok(Stmt::Assign { name, expr, line })
                }
            _ => {
                let expr = self.expr()?;
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Expr { expr, line })
            }
        }
    }

    fn finish_decl(&mut self, is_static: bool, ty: AstType, line: u32) -> Result<Stmt, EcodeError> {
        let name = match self.bump() {
            Tok::Ident(n) => n,
            other => return Err(self.err(format!("expected identifier, found {other:?}"))),
        };
        let init = if *self.peek() == Tok::Assign {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi, "';'")?;
        Ok(Stmt::Decl {
            is_static,
            ty,
            name,
            init,
            line,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, EcodeError> {
        let line = self.line();
        self.expect(Tok::KwIf, "'if'")?;
        self.expect(Tok::LParen, "'('")?;
        let cond = self.expr()?;
        self.expect(Tok::RParen, "')'")?;
        let then_block = self.block()?;
        let else_block = if *self.peek() == Tok::KwElse {
            self.bump();
            if *self.peek() == Tok::KwIf {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, EcodeError> {
        self.expect(Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    // Precedence climbing: || < && < == != < relational < additive <
    // multiplicative < unary < primary.

    fn expr(&mut self) -> Result<Expr, EcodeError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, EcodeError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, EcodeError> {
        let mut lhs = self.eq_expr()?;
        while *self.peek() == Tok::AndAnd {
            let line = self.line();
            self.bump();
            let rhs = self.eq_expr()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr, EcodeError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.rel_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr, EcodeError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::LtEq => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::GtEq => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, EcodeError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, EcodeError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, EcodeError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    expr: Box::new(self.unary_expr()?),
                    line,
                })
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Un {
                    op: UnOp::Not,
                    expr: Box::new(self.unary_expr()?),
                    line,
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, EcodeError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Double(v) => Ok(Expr::Double(v)),
            Tok::KwTrue => Ok(Expr::Bool(true)),
            Tok::KwFalse => Ok(Expr::Bool(false)),
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                    Ok(Expr::Call { name, args, line })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            other => Err(EcodeError::Parse {
                line,
                msg: format!("expected expression, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Result<Vec<Stmt>, EcodeError> {
        Parser::new(lex(src)?).program()
    }

    #[test]
    fn parses_declarations() {
        let stmts = parse("static int n = 0; double x; bool b = true;").unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(
            &stmts[0],
            Stmt::Decl { is_static: true, ty: AstType::Int, name, .. } if name == "n"
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Decl {
                is_static: false,
                ty: AstType::Double,
                init: None,
                ..
            }
        ));
    }

    #[test]
    fn precedence_mul_over_add() {
        let stmts = parse("return 1 + 2 * 3;").unwrap();
        let Stmt::Return { expr: Some(e), .. } = &stmts[0] else {
            panic!("not a return");
        };
        // (1 + (2*3))
        let Expr::Bin {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("top is not add: {e:?}");
        };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_cmp_over_and() {
        let stmts = parse("return a < b && c > d;").unwrap();
        let Stmt::Return { expr: Some(e), .. } = &stmts[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Bin { op: BinOp::And, .. }));
    }

    #[test]
    fn if_else_chain() {
        let stmts =
            parse("if (a > 1) { x = 1; } else if (a > 0) { x = 2; } else { x = 3; }").unwrap();
        let Stmt::If { else_block, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(else_block.len(), 1);
        assert!(matches!(&else_block[0], Stmt::If { .. }));
    }

    #[test]
    fn call_with_args() {
        let stmts = parse("out(0, x / n);").unwrap();
        let Stmt::Expr {
            expr: Expr::Call { name, args, .. },
            ..
        } = &stmts[0]
        else {
            panic!()
        };
        assert_eq!(name, "out");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn unary_chain() {
        let stmts = parse("return !-x;").unwrap();
        let Stmt::Return {
            expr:
                Some(Expr::Un {
                    op: UnOp::Not,
                    expr,
                    ..
                }),
            ..
        } = &stmts[0]
        else {
            panic!()
        };
        assert!(matches!(**expr, Expr::Un { op: UnOp::Neg, .. }));
    }

    #[test]
    fn missing_semicolon_errors() {
        assert!(matches!(parse("int x = 3"), Err(EcodeError::Parse { .. })));
    }

    #[test]
    fn unclosed_block_errors() {
        assert!(matches!(
            parse("if (x) { y = 1;"),
            Err(EcodeError::Parse { .. })
        ));
    }
}
