//! The fuel-metered stack VM.

use std::sync::Arc;

use crate::analysis::{MergeClass, MergePlan, MinMaxOp};
use crate::compile::{GlobalInit, Program, Type};
use crate::jit;
use crate::EcodeError;

/// A static's raw bits at instance creation (`f64::to_bits` for doubles).
fn init_raw(init: &GlobalInit) -> i64 {
    match init {
        GlobalInit::Int(v) => *v,
        GlobalInit::Double(v) => v.to_bits() as i64,
        GlobalInit::Bool(v) => *v as i64,
    }
}

/// Why [`Instance::merge_from`] refused to fold two replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The plan or the other instance has a different slot layout than
    /// this instance — they were built from different programs.
    PlanMismatch {
        /// Slots in the supplied [`MergePlan`].
        plan_slots: usize,
        /// Static slots in this instance.
        instance_slots: usize,
    },
    /// A slot is classified `LastWriteWins` or `Opaque`; the program
    /// must be evaluated on a single instance instead.
    NotShardSafe {
        /// Global slot index.
        slot: usize,
        /// The static variable's name.
        name: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::PlanMismatch {
                plan_slots,
                instance_slots,
            } => write!(
                f,
                "merge plan has {plan_slots} slots but the instance has {instance_slots}"
            ),
            MergeError::NotShardSafe { slot, name } => {
                write!(f, "static \"{name}\" (slot {slot}) is not shard-safe")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Bytecode instructions. Typed variants keep the stack representation a
/// plain 64-bit word (floats stored via `to_bits`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    ConstI(i64),
    ConstF(f64),
    LoadInput(u16),
    LoadGlobal(u16),
    LoadLocal(u16),
    StoreGlobal(u16),
    StoreLocal(u16),
    AddI,
    SubI,
    MulI,
    DivI,
    ModI,
    NegI,
    AddF,
    SubF,
    MulF,
    DivF,
    NegF,
    /// Convert top of stack int → double.
    I2F,
    /// Convert second-of-stack int → double (for promoting a left operand
    /// after the right operand is already pushed).
    I2FUnder,
    EqI,
    NeI,
    LtI,
    LeI,
    GtI,
    GeI,
    EqF,
    NeF,
    LtF,
    LeF,
    GtF,
    GeF,
    NotB,
    AbsI,
    AbsF,
    MinI,
    MinF,
    MaxI,
    MaxF,
    /// Pops value (f64) then slot (i64); appends to the run's outputs.
    Out,
    Jmp(u32),
    JmpIfFalse(u32),
    Pop,
    Ret,
    RetVoid,
}

/// A host-supplied input value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer input.
    Int(i64),
    /// Double input.
    Double(f64),
    /// Boolean input.
    Bool(bool),
}

impl Value {
    fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::Double(_) => Type::Double,
            Value::Bool(_) => Type::Bool,
        }
    }

    fn raw(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Double(v) => v.to_bits() as i64,
            Value::Bool(v) => *v as i64,
        }
    }
}

/// The result of one program run.
///
/// `outputs` borrows the instance's reusable output arena, so the hot
/// path produces no allocation per run; copy anything you need to keep
/// before running the instance again.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome<'a> {
    /// Value of the executed `return` (0 if the program fell off the end).
    pub ret: i64,
    /// Instructions executed — the host converts this to CPU time and
    /// charges it as monitoring overhead. Identical whether fuel is
    /// metered per basic block (the default) or per op
    /// ([`Instance::run_per_op`]).
    pub fuel_used: u64,
    /// Values published via `out(slot, value)` during this run.
    pub outputs: &'a [(i64, f64)],
}

/// Operand-stack discipline of one opcode: values it reads from the
/// stack, and its net depth change. The load-time pass in
/// [`Instance::new`] folds these over every control-flow path.
fn stack_effect(op: Op) -> (u32, i32) {
    use Op::*;
    match op {
        ConstI(_) | ConstF(_) | LoadInput(_) | LoadGlobal(_) | LoadLocal(_) => (0, 1),
        StoreGlobal(_) | StoreLocal(_) | Pop => (1, -1),
        AddI | SubI | MulI | DivI | ModI | AddF | SubF | MulF | DivF | EqI | NeI | LtI | LeI
        | GtI | GeI | EqF | NeF | LtF | LeF | GtF | GeF | MinI | MinF | MaxI | MaxF => (2, -1),
        NegI | NegF | I2F | NotB | AbsI | AbsF => (1, 0),
        I2FUnder => (2, 0),
        Out => (2, -2),
        Jmp(_) => (0, 0),
        JmpIfFalse(_) | Ret => (1, -1),
        RetVoid => (0, 0),
    }
}

/// Load-time bytecode validation: walks every control-flow path once,
/// proving (1) all jump targets and fall-throughs stay inside `code`,
/// (2) the operand stack never underflows and has one consistent depth
/// at every pc, and (3) every input/global/local operand index is in
/// bounds. Returns the maximum operand-stack depth.
///
/// The compiler upholds all of this by construction; validating it here
/// turns that contract into a checked invariant the interpreter can
/// rely on — the run loop then uses unchecked stack and table accesses
/// with no per-op bounds tests. A violation is a compiler bug
/// ([`Program`] cannot be built outside this crate), so it panics at
/// instance creation rather than surfacing mid-run.
///
/// Also returns the per-pc entry depths (`-1` = unreachable): the
/// compiled tier seeds its cross-block carry tracking from them.
fn validate(program: &Program) -> (usize, Vec<i32>) {
    let code = &program.code;
    assert!(!code.is_empty(), "E-Code compiler emitted no code");
    let n_inputs = program.inputs.len();
    let n_globals = program.globals.len();
    let n_locals = program.n_locals as usize;
    // depth_at[pc]: operand-stack depth on entry to pc (-1 = not yet seen).
    let mut depth_at = vec![-1i32; code.len()];
    let mut work = vec![(0usize, 0i32)];
    let mut max_depth = 0i32;
    while let Some((pc, depth)) = work.pop() {
        assert!(pc < code.len(), "E-Code control flow escapes the code");
        if depth_at[pc] >= 0 {
            assert_eq!(
                depth_at[pc], depth,
                "E-Code stack depth diverges at pc {pc}"
            );
            continue;
        }
        depth_at[pc] = depth;
        let op = code[pc];
        let (reads, delta) = stack_effect(op);
        assert!(
            depth >= reads as i32,
            "E-Code operand stack underflows at pc {pc}"
        );
        let next = depth + delta;
        max_depth = max_depth.max(next);
        match op {
            Op::LoadInput(i) => assert!((i as usize) < n_inputs, "input index out of range"),
            Op::LoadGlobal(i) | Op::StoreGlobal(i) => {
                assert!((i as usize) < n_globals, "global index out of range")
            }
            Op::LoadLocal(i) | Op::StoreLocal(i) => {
                assert!((i as usize) < n_locals, "local index out of range")
            }
            _ => {}
        }
        match op {
            Op::Jmp(t) => work.push((t as usize, next)),
            Op::JmpIfFalse(t) => {
                work.push((t as usize, next));
                work.push((pc + 1, next));
            }
            Op::Ret | Op::RetVoid => {}
            _ => work.push((pc + 1, next)),
        }
    }
    (max_depth as usize, depth_at)
}

/// Comparison kind carried by fused compare ops and the compiled
/// tier's expression trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    fn from_op(op: Op) -> Option<Cmp> {
        Some(match op {
            Op::EqI => Cmp::Eq,
            Op::NeI => Cmp::Ne,
            Op::LtI => Cmp::Lt,
            Op::LeI => Cmp::Le,
            Op::GtI => Cmp::Gt,
            Op::GeI => Cmp::Ge,
            _ => return None,
        })
    }

    #[inline(always)]
    pub(crate) fn eval(self, l: i64, r: i64) -> bool {
        match self {
            Cmp::Eq => l == r,
            Cmp::Ne => l != r,
            Cmp::Lt => l < r,
            Cmp::Le => l <= r,
            Cmp::Gt => l > r,
            Cmp::Ge => l >= r,
        }
    }

    /// Float comparison with IEEE semantics (identical to the `*F`
    /// compare opcodes).
    #[inline(always)]
    pub(crate) fn eval_f(self, l: f64, r: f64) -> bool {
        match self {
            Cmp::Eq => l == r,
            Cmp::Ne => l != r,
            Cmp::Lt => l < r,
            Cmp::Le => l <= r,
            Cmp::Gt => l > r,
            Cmp::Ge => l >= r,
        }
    }
}

/// The fast-path instruction stream: original ops plus superinstructions
/// fused from the sequences the E-Code compiler emits for the most
/// common analyzer idioms (counter bumps, accumulations, input-vs-const
/// guards). Fusing cuts the interpreter's dispatches per run to roughly
/// a third for typical CPAs.
///
/// Fuel is never charged in fast coordinates: the precharge driver reads
/// `block_fuel` of the *original* code (via `fast2orig`), so `fuel_used`
/// is identical to per-op metering of the unfused program. Jump variants
/// carry both coordinate spaces so the driver can fall back to the
/// checked per-op interpreter (which runs original code) mid-run when
/// the remaining budget gets tight.
#[derive(Debug, Clone, Copy)]
enum FastOp {
    /// An original non-jump op, executed verbatim.
    Plain(Op),
    Jmp {
        fast: u32,
        orig: u32,
    },
    JmpIfFalse {
        fast: u32,
        orig: u32,
    },
    /// `g = g + c` on an int global (LoadGlobal ConstI AddI StoreGlobal).
    IncGlobalI {
        g: u16,
        c: i64,
    },
    /// `g = g + input`, int input promoted into a double global
    /// (LoadGlobal LoadInput I2F AddF StoreGlobal).
    AccGlobalInputF {
        g: u16,
        input: u16,
    },
    /// `g = g + input` on int global and input.
    AccGlobalInputI {
        g: u16,
        input: u16,
    },
    /// Push `input <cmp> c` (LoadInput ConstI CmpI).
    CmpInputCI {
        input: u16,
        cmp: Cmp,
        c: i64,
    },
    /// `if (!(input <cmp> c)) jump` (LoadInput ConstI CmpI JmpIfFalse).
    BrInputCmpCI {
        input: u16,
        cmp: Cmp,
        c: i64,
        fast: u32,
        orig: u32,
    },
    /// `return c` (ConstI Ret).
    RetCI(i64),
}

/// Builds the fused fast-code stream plus the pc maps between the two
/// coordinate spaces. A sequence is only fused when no interior op is a
/// jump target (control could enter mid-sequence otherwise), so every
/// original block start has a fast-code twin — `orig2fast` is defined
/// exactly where the driver needs it.
fn fuse(code: &[Op]) -> (Vec<FastOp>, Vec<u32>, Vec<u32>) {
    let mut is_target = vec![false; code.len()];
    for op in code {
        match *op {
            Op::Jmp(t) | Op::JmpIfFalse(t) => is_target[t as usize] = true,
            _ => {}
        }
    }
    let mut fast: Vec<FastOp> = Vec::new();
    let mut fast2orig: Vec<u32> = Vec::new();
    let mut orig2fast = vec![u32::MAX; code.len()];
    let mut pc = 0usize;
    while pc < code.len() {
        orig2fast[pc] = fast.len() as u32;
        fast2orig.push(pc as u32);
        let w = &code[pc..];
        let fusable = |k: usize| w.len() >= k && (1..k).all(|j| !is_target[pc + j]);
        // Longest pattern first; jump targets are emitted in original
        // coordinates here and rewritten to fast ones below.
        let (op, len) = 'fused: {
            if fusable(5) {
                if let [Op::LoadGlobal(g), Op::LoadInput(i), Op::I2F, Op::AddF, Op::StoreGlobal(g2), ..] =
                    *w
                {
                    if g == g2 {
                        break 'fused (FastOp::AccGlobalInputF { g, input: i }, 5);
                    }
                }
            }
            if fusable(4) {
                match *w {
                    [Op::LoadGlobal(g), Op::ConstI(c), Op::AddI, Op::StoreGlobal(g2), ..]
                        if g == g2 =>
                    {
                        break 'fused (FastOp::IncGlobalI { g, c }, 4)
                    }
                    [Op::LoadGlobal(g), Op::LoadInput(i), Op::AddI, Op::StoreGlobal(g2), ..]
                        if g == g2 =>
                    {
                        break 'fused (FastOp::AccGlobalInputI { g, input: i }, 4)
                    }
                    [Op::LoadInput(i), Op::ConstI(c), cmp, Op::JmpIfFalse(t), ..] => {
                        if let Some(cmp) = Cmp::from_op(cmp) {
                            break 'fused (
                                FastOp::BrInputCmpCI {
                                    input: i,
                                    cmp,
                                    c,
                                    fast: t,
                                    orig: t,
                                },
                                4,
                            );
                        }
                    }
                    _ => {}
                }
            }
            if fusable(3) {
                if let [Op::LoadInput(i), Op::ConstI(c), cmp, ..] = *w {
                    if let Some(cmp) = Cmp::from_op(cmp) {
                        break 'fused (FastOp::CmpInputCI { input: i, cmp, c }, 3);
                    }
                }
            }
            if fusable(2) {
                match *w {
                    [Op::ConstI(c), Op::Ret, ..] => break 'fused (FastOp::RetCI(c), 2),
                    // `push false; jump-if-false` is an unconditional jump
                    // (the `&&` false arm feeding an `if`).
                    [Op::ConstI(0), Op::JmpIfFalse(t), ..] => {
                        break 'fused (FastOp::Jmp { fast: t, orig: t }, 2)
                    }
                    _ => {}
                }
            }
            match w[0] {
                Op::Jmp(t) => (FastOp::Jmp { fast: t, orig: t }, 1),
                Op::JmpIfFalse(t) => (FastOp::JmpIfFalse { fast: t, orig: t }, 1),
                op => (FastOp::Plain(op), 1),
            }
        };
        fast.push(op);
        pc += len;
    }
    for f in &mut fast {
        match f {
            FastOp::Jmp { fast: ft, orig }
            | FastOp::JmpIfFalse { fast: ft, orig }
            | FastOp::BrInputCmpCI { fast: ft, orig, .. } => {
                let mapped = orig2fast[*orig as usize];
                assert!(mapped != u32::MAX, "E-Code jump into a fused sequence");
                *ft = mapped;
            }
            _ => {}
        }
    }
    (fast, fast2orig, orig2fast)
}

/// Which execution tier an [`Instance`] selected at creation.
///
/// Tier selection is an implementation detail for correctness (all
/// tiers are bit-identical on every observable) but an operational fact
/// hosts report: a CPA running compiled costs measurably less per
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// Closure-compiled basic blocks ([`crate::jit`]); falls back to
    /// the checked per-op interpreter mid-run only when the remaining
    /// fuel budget cannot cover a block.
    Compiled,
    /// The fused superinstruction VM with block-granular fuel
    /// precharge.
    Fused,
}

/// Per-analyzer program state: the persistent `static` variables, plus
/// the reusable run arenas (operand stack, locals, raw inputs, outputs)
/// and the block-fuel table. Create one instance per installed CPA; run
/// it once per event — after the first run the hot path never allocates.
#[derive(Debug, Clone)]
pub struct Instance {
    program: Program,
    globals: Vec<i64>,
    /// `block_fuel[pc]`: ops from `pc` through its block terminator
    /// (`Jmp` / `JmpIfFalse` / `Ret` / `RetVoid`), inclusive. `run`
    /// precharges a whole block when it fits in the remaining budget,
    /// replacing the per-op fuel comparison with one check per block.
    block_fuel: Vec<u32>,
    /// Maximum operand-stack depth, proved by [`validate`] at creation.
    max_stack: usize,
    /// Fused fast-path code (see [`FastOp`]) and the pc maps between
    /// fast and original coordinates.
    fast: Vec<FastOp>,
    fast2orig: Vec<u32>,
    orig2fast: Vec<u32>,
    /// The closure-compiled tier, when the program fit the
    /// [`jit::CompileBudget`] — `None` means every run uses the fused
    /// VM. Shared via `Arc` so cloning an instance into digest-plane
    /// replicas doesn't recompile.
    compiled: Option<Arc<jit::CompiledProgram>>,
    stack: Vec<i64>,
    locals: Vec<i64>,
    raw_inputs: Vec<i64>,
    outputs: Vec<(i64, f64)>,
    /// Compiled-tier scratch: operand-stack values crossing a block
    /// boundary. Lives in the instance (not the driver's frame) so the
    /// whole [`jit::Ctx`] borrows at one lifetime.
    carry: [i64; jit::MAX_CARRY],
}

impl Instance {
    /// Creates an instance with statics at their declared initial values.
    /// The program is cheap to clone (bytecode + layout tables).
    ///
    /// Programs within the default [`jit::CompileBudget`] are lowered
    /// to the closure-compiled tier here; everything else runs on the
    /// fused VM. Both are bit-identical on every observable
    /// ([`tier`](Instance::tier) reports which one was selected).
    pub fn new(program: &Program) -> Self {
        Self::with_budget(program, &jit::CompileBudget::default())
    }

    /// [`new`](Instance::new) with an explicit compile budget — hosts
    /// that want to cap compiled-tier memory (or force fallback in
    /// tests) size the budget themselves.
    pub fn with_budget(program: &Program, budget: &jit::CompileBudget) -> Self {
        Self::build(program, Some(budget))
    }

    /// Creates an instance pinned to the fused VM, never the compiled
    /// tier. The differential sweeps use this to run the same program
    /// on both tiers; hosts normally want [`new`](Instance::new).
    pub fn new_fused(program: &Program) -> Self {
        Self::build(program, None)
    }

    fn build(program: &Program, budget: Option<&jit::CompileBudget>) -> Self {
        let globals = program
            .globals
            .iter()
            .map(|(_, _, i)| init_raw(i))
            .collect();
        // Backward pass: the compiler guarantees the last op is a
        // terminator, so every non-terminator has a successor.
        let code = &program.code;
        let mut block_fuel = vec![0u32; code.len()];
        for pc in (0..code.len()).rev() {
            block_fuel[pc] = match code[pc] {
                Op::Jmp(_) | Op::JmpIfFalse(_) | Op::Ret | Op::RetVoid => 1,
                _ => block_fuel[pc + 1] + 1,
            };
        }
        let (max_stack, depth_at) = validate(program);
        let (fast, fast2orig, orig2fast) = fuse(&program.code);
        let compiled = budget.and_then(|b| jit::compile(program, &depth_at, b).map(Arc::new));
        Instance {
            program: program.clone(),
            globals,
            block_fuel,
            max_stack,
            fast,
            fast2orig,
            orig2fast,
            compiled,
            stack: Vec::with_capacity(max_stack),
            locals: Vec::new(),
            raw_inputs: Vec::new(),
            outputs: Vec::new(),
            carry: [0; jit::MAX_CARRY],
        }
    }

    /// `(specialized, total)` compiled-block counts, `None` when the
    /// instance runs fused. Introspection for tests — the perf suite
    /// pins that the representative CPA shapes never regress to the
    /// generic tree-walking closures.
    #[cfg(test)]
    pub(crate) fn compiled_specialization(&self) -> Option<(usize, usize)> {
        self.compiled.as_deref().map(|cp| cp.specialization())
    }

    /// Whether the compiled program carries the whole-program
    /// straight-line fast path (`None` when running fused).
    /// Introspection for tests — the perf suite pins that the
    /// representative CPA shapes parse into it.
    #[cfg(test)]
    pub(crate) fn compiled_whole_path(&self) -> Option<bool> {
        self.compiled.as_deref().map(|cp| cp.whole.is_some())
    }

    /// Which execution tier [`run`](Instance::run) uses for this
    /// instance.
    pub fn tier(&self) -> ExecTier {
        if self.compiled.is_some() {
            ExecTier::Compiled
        } else {
            ExecTier::Fused
        }
    }

    /// Resets the `static` variables to their declared initial values, as
    /// if the instance were freshly created — without reallocating the
    /// program or arenas. Hosts that want fresh statics per evaluation
    /// (e.g. subscription data filters) call this before each run.
    pub fn reset_globals(&mut self) {
        for (g, (_, _, init)) in self.globals.iter_mut().zip(self.program.globals.iter()) {
            *g = init_raw(init);
        }
    }

    /// Raw bits of every static, in slot order (`f64::to_bits` for
    /// doubles). This is the representation shard-differential tests
    /// compare: bitwise, so `NaN == NaN` and `0.0 != -0.0`.
    pub fn raw_globals(&self) -> &[i64] {
        &self.globals
    }

    /// Folds another replica's statics into this instance per `plan` —
    /// the "spend the proof" half of the shard-safety analysis. Both
    /// instances must run the same program `plan` was computed for.
    ///
    /// The folds are exact, not approximate: `Counter` sums deltas with
    /// wrapping arithmetic, `MinMax` takes the integer min/max,
    /// `GatedWrite` keeps the written constant if either side stored it,
    /// `ReadOnly` keeps the (identical) initial value. Each is
    /// associative and commutative on raw bits, and a fresh instance is
    /// the fold's identity — so any shard count and any merge order
    /// reproduce the sequential statics bit-for-bit (assuming trap-free
    /// runs).
    ///
    /// # Errors
    ///
    /// * [`MergeError::PlanMismatch`] if `plan`/`other` don't match this
    ///   instance's slot layout.
    /// * [`MergeError::NotShardSafe`] if any slot is `LastWriteWins` or
    ///   `Opaque` — callers must fall back to single-instance evaluation.
    pub fn merge_from(&mut self, other: &Instance, plan: &MergePlan) -> Result<(), MergeError> {
        let n = self.globals.len();
        if plan.slots.len() != n || other.globals.len() != n {
            return Err(MergeError::PlanMismatch {
                plan_slots: plan.slots.len(),
                instance_slots: n,
            });
        }
        // Validate everything before mutating anything: a failed merge
        // must not leave `self` half-folded.
        for (slot, sp) in plan.slots.iter().enumerate() {
            if !sp.class.shard_safe() {
                return Err(MergeError::NotShardSafe {
                    slot,
                    name: sp.name.clone(),
                });
            }
        }
        for (slot, sp) in plan.slots.iter().enumerate() {
            let a = self.globals[slot];
            let b = other.globals[slot];
            let init = init_raw(&self.program.globals[slot].2);
            self.globals[slot] = match &sp.class {
                MergeClass::ReadOnly => a,
                // a and b each hold init + (their shard's delta sum).
                MergeClass::Counter => a.wrapping_add(b).wrapping_sub(init),
                MergeClass::MinMax(MinMaxOp::Min) => a.min(b),
                MergeClass::MinMax(MinMaxOp::Max) => a.max(b),
                // Whichever side left init wrote the gated constant (or
                // both still hold init and the pick is a no-op).
                MergeClass::GatedWrite { .. } => {
                    if a != init {
                        a
                    } else {
                        b
                    }
                }
                MergeClass::LastWriteWins | MergeClass::Opaque { .. } => {
                    unreachable!("rejected by the shard_safe pre-check")
                }
            };
        }
        Ok(())
    }

    /// Reads a static variable's current value by name (for host-side
    /// inspection of accumulated state).
    pub fn global(&self, name: &str) -> Option<Value> {
        let idx = self
            .program
            .globals
            .iter()
            .position(|(n, _, _)| n == name)?;
        let (_, ty, _) = &self.program.globals[idx];
        let raw = self.globals[idx];
        Some(match ty {
            Type::Int => Value::Int(raw),
            Type::Double => Value::Double(f64::from_bits(raw as u64)),
            Type::Bool => Value::Bool(raw != 0),
        })
    }

    /// Runs the program once over `inputs` with the given fuel budget.
    ///
    /// Fuel is metered per basic block: on entering a block whose
    /// straight-line cost fits the remaining budget, the per-op fuel
    /// comparison is skipped for the whole block. `fuel_used` and the
    /// abort point are bit-identical to per-op metering
    /// ([`run_per_op`](Instance::run_per_op) is the reference).
    ///
    /// # Errors
    ///
    /// * [`EcodeError::BadInputs`] if inputs don't match the declaration.
    /// * [`EcodeError::OutOfFuel`] if the budget is exhausted (statics may
    ///   have been partially updated — the analyzer is expected to be
    ///   deactivated by the controller when this happens).
    /// * [`EcodeError::DivideByZero`] on integer division/modulo by zero.
    pub fn run(&mut self, inputs: &[Value], fuel: u64) -> Result<RunOutcome<'_>, EcodeError> {
        self.marshal(inputs)?;
        self.dispatch(fuel)
    }

    /// Reference metering path: charges and checks fuel before every
    /// opcode, exactly as the VM did before block precharging. Exists so
    /// tests can pin `run`'s exactness claim; hosts should call
    /// [`run`](Instance::run).
    pub fn run_per_op(
        &mut self,
        inputs: &[Value],
        fuel: u64,
    ) -> Result<RunOutcome<'_>, EcodeError> {
        self.marshal(inputs)?;
        self.run_metered(fuel, true)
    }

    /// Runs the program over pre-marshalled raw input bits, skipping the
    /// per-value type check. The caller owns the contract [`run`] enforces
    /// dynamically: `raw[i]` must hold the bit pattern of declared input
    /// `i` (ints/bools as-is, doubles via `f64::to_bits`). Hot ingest
    /// paths that produce columns of raw bits use this to avoid building
    /// `Value`s per record.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Instance::run), except `BadInputs` only triggers on
    /// a length mismatch.
    #[inline]
    pub fn run_raw(&mut self, raw: &[i64], fuel: u64) -> Result<RunOutcome<'_>, EcodeError> {
        if raw.len() != self.program.inputs.len() {
            return Err(EcodeError::BadInputs(format!(
                "expected {} inputs, got {}",
                self.program.inputs.len(),
                raw.len()
            )));
        }
        // Steady-state ingest replays the same arity every event, so the
        // arena is already sized: take the pure-`memcpy` path instead of
        // `clear` + `extend_from_slice` (whose growth check and length
        // bookkeeping cost real time at per-event rates).
        if self.raw_inputs.len() == raw.len() {
            self.raw_inputs.copy_from_slice(raw);
        } else {
            self.raw_inputs.clear();
            self.raw_inputs.extend_from_slice(raw);
        }
        self.dispatch(fuel)
    }

    /// Routes a marshalled run to the tier selected at creation.
    #[inline]
    fn dispatch(&mut self, fuel: u64) -> Result<RunOutcome<'_>, EcodeError> {
        if self.compiled.is_some() {
            self.run_compiled(fuel)
        } else {
            self.run_metered(fuel, false)
        }
    }

    /// One pass validates input types and marshals the raw bits into the
    /// reusable `raw_inputs` arena.
    fn marshal(&mut self, inputs: &[Value]) -> Result<(), EcodeError> {
        if inputs.len() != self.program.inputs.len() {
            return Err(EcodeError::BadInputs(format!(
                "expected {} inputs, got {}",
                self.program.inputs.len(),
                inputs.len()
            )));
        }
        self.raw_inputs.clear();
        for (v, (name, ty)) in inputs.iter().zip(self.program.inputs.iter()) {
            if v.ty() != *ty {
                return Err(EcodeError::BadInputs(format!(
                    "input {name:?} expects {ty:?}, got {:?}",
                    v.ty()
                )));
            }
            self.raw_inputs.push(v.raw());
        }
        Ok(())
    }

    /// Direct mutable view of the static (global) slots, for the batch
    /// evaluator's masked reductions. Crate-internal: external callers go
    /// through [`raw_globals`](Instance::raw_globals) / `merge_from`.
    pub(crate) fn globals_mut(&mut self) -> &mut [i64] {
        &mut self.globals
    }

    /// The compiled-tier driver: direct-threaded block chaining with the
    /// same block-granular fuel precharge as the fused VM. Entering a
    /// block whose straight-line cost fits the remaining budget charges
    /// it up front and runs the block's closure; a block that doesn't
    /// fit runs on the checked per-op interpreter instead (spilling the
    /// carried stack values first), so abort points, `fuel_used`, and
    /// partial statics stay bit-identical to [`run_per_op`](Instance::run_per_op).
    fn run_compiled(&mut self, fuel: u64) -> Result<RunOutcome<'_>, EcodeError> {
        // Split borrows, same discipline as `run_metered`: arenas are
        // reused, so post-warmup this path performs no heap allocation.
        let Instance {
            program,
            globals,
            compiled,
            stack,
            locals,
            raw_inputs,
            outputs,
            carry,
            ..
        } = self;
        let cp = compiled.as_deref().expect("dispatch checked compiled");
        locals.clear();
        locals.resize(program.n_locals as usize, 0);
        outputs.clear();
        // One context for the whole run; each closure call reborrows it.
        let mut ctx = jit::Ctx {
            globals,
            locals,
            inputs: raw_inputs,
            outputs,
            carry,
        };
        // Whole-program fast path: valid only when the budget covers the
        // worst-case path, so no fuel abort is reachable anywhere and the
        // per-block bookkeeping can be skipped outright.
        if let Some(w) = &cp.whole {
            if fuel >= w.max_fuel {
                let (ret, fuel_used) = w.exec(&mut ctx);
                return Ok(RunOutcome {
                    ret,
                    fuel_used,
                    outputs: ctx.outputs,
                });
            }
        }
        let (ret, fuel_used) = drive_compiled(cp, &program.code, stack, &mut ctx, fuel)?;
        Ok(RunOutcome {
            ret,
            fuel_used,
            outputs: ctx.outputs,
        })
    }

    /// Runs the program once per row of a row-major window of raw input
    /// bits (`stride` = the declared input count, rows back to back),
    /// invoking `sink` with each run's outcome in row order. Semantics
    /// are *exactly* `rows.chunks_exact(stride)` fed one at a time to
    /// [`run_raw`](Instance::run_raw) — same per-row fuel budget, same
    /// trap points, same statics evolution, bit-identical outcomes — but
    /// the per-call setup (input marshalling, arena resets, driver
    /// entry) is hoisted out of the row loop, which is where a scalar
    /// call spends a large fraction of its time on small CPAs. Hot
    /// ingest paths that already hold columnar batches (the GPA digest
    /// plane, the bench rings) use this; one-event-at-a-time hosts keep
    /// calling `run_raw`.
    ///
    /// # Errors
    ///
    /// * [`EcodeError::BadInputs`] if the program declares no inputs or
    ///   `rows.len()` is not a multiple of the declared input count
    ///   (nothing is executed).
    /// * Any error a per-row [`run_raw`](Instance::run_raw) sequence
    ///   would produce, at the same row: rows before it have executed
    ///   (and were sunk); statics reflect the partial window, exactly as
    ///   if the caller had looped and stopped at the first error.
    pub fn run_raw_batch<F>(
        &mut self,
        rows: &[i64],
        fuel: u64,
        mut sink: F,
    ) -> Result<(), EcodeError>
    where
        F: FnMut(RunOutcome<'_>),
    {
        let stride = self.program.inputs.len();
        if stride == 0 || !rows.len().is_multiple_of(stride) {
            return Err(EcodeError::BadInputs(format!(
                "batch of {} raw values is not rows of {} inputs",
                rows.len(),
                stride
            )));
        }
        if self.compiled.is_none() {
            // Fused tier: the interpreter rebuilds its operand stack per
            // run anyway, so there is nothing more to hoist than the
            // entry checks above.
            self.raw_inputs.resize(stride, 0);
            for row in rows.chunks_exact(stride) {
                self.raw_inputs.copy_from_slice(row);
                sink(self.run_metered(fuel, false)?);
            }
            return Ok(());
        }
        let Instance {
            program,
            globals,
            compiled,
            stack,
            locals,
            outputs,
            carry,
            ..
        } = self;
        let cp = compiled.as_deref().expect("checked above");
        let code = &program.code;
        let n_locals = program.n_locals as usize;
        locals.clear();
        locals.resize(n_locals, 0);
        // One context for the whole window; per row only the input
        // pointer moves (and the arenas reset), so the driver's setup
        // cost amortizes across the batch.
        let mut ctx = jit::Ctx {
            globals,
            locals,
            inputs: &[],
            outputs,
            carry,
        };
        // Whole-program fast path: the budget is fixed across the
        // window, so the `max_fuel` gate hoists out of the loop — each
        // row is one straight-line call with baked fuel constants.
        if let Some(w) = &cp.whole {
            if fuel >= w.max_fuel {
                for row in rows.chunks_exact(stride) {
                    ctx.inputs = row;
                    if n_locals > 0 {
                        ctx.locals.iter_mut().for_each(|l| *l = 0);
                    }
                    ctx.outputs.clear();
                    let (ret, fuel_used) = w.exec(&mut ctx);
                    sink(RunOutcome {
                        ret,
                        fuel_used,
                        outputs: ctx.outputs,
                    });
                }
                return Ok(());
            }
        }
        for row in rows.chunks_exact(stride) {
            ctx.inputs = row;
            if n_locals > 0 {
                ctx.locals.iter_mut().for_each(|l| *l = 0);
            }
            ctx.outputs.clear();
            let (ret, fuel_used) = drive_compiled(cp, code, stack, &mut ctx, fuel)?;
            sink(RunOutcome {
                ret,
                fuel_used,
                outputs: ctx.outputs,
            });
        }
        Ok(())
    }

    fn run_metered(&mut self, fuel: u64, force_per_op: bool) -> Result<RunOutcome<'_>, EcodeError> {
        // Split borrows: the arenas are reused across runs, so after the
        // first run this path performs no heap allocation.
        let Instance {
            program,
            globals,
            block_fuel,
            max_stack,
            fast,
            fast2orig,
            orig2fast,
            stack,
            locals,
            raw_inputs,
            outputs,
            ..
        } = self;
        locals.clear();
        locals.resize(program.n_locals as usize, 0);
        stack.clear();
        // `Clone` resets a Vec's capacity to its (zero) length, so
        // re-establish it; once warm this is a single compare.
        stack.reserve(*max_stack);
        outputs.clear();
        let mut fuel_used = 0u64;
        let code = program.code.as_ptr();
        let fcode = fast.as_ptr();

        // Every `unsafe` below carries its own SAFETY argument; all of
        // them lean on the same foundation: `validate` proved at program
        // load that control flow stays inside `code`, that the operand
        // stack depth at each pc is consistent (never underflows, never
        // exceeds `max_stack`), and that every input/global/local index
        // is in bounds of the counts these buffers were sized with.
        let sbase = stack.as_mut_ptr();
        let mut sp = 0usize;
        let gbase = globals.as_mut_ptr();
        let lbase = locals.as_mut_ptr();
        let ibase = raw_inputs.as_ptr();

        macro_rules! popi {
            () => {{
                sp -= 1;
                // SAFETY: `validate` proved no pc pops an empty stack, so
                // `sp` was >= 1 and slot `sp - 1` was written by a prior
                // matching push inside the reserved capacity.
                unsafe { *sbase.add(sp) }
            }};
        }
        macro_rules! pushi {
            ($v:expr) => {{
                let v: i64 = $v;
                // SAFETY: `validate` bounds the depth at every pc by
                // `max_stack` and the Vec reserved exactly that capacity,
                // so slot `sp` is inside the allocation.
                unsafe { *sbase.add(sp) = v };
                sp += 1;
            }};
        }
        macro_rules! popf {
            () => {
                f64::from_bits(popi!() as u64)
            };
        }
        macro_rules! pushf {
            ($v:expr) => {
                pushi!(($v).to_bits() as i64)
            };
        }
        macro_rules! binf {
            ($op:tt) => {{ let r = popf!(); let l = popf!(); pushf!(l $op r); }};
        }
        macro_rules! cmpi {
            ($op:tt) => {{ let r = popi!(); let l = popi!(); pushi!((l $op r) as i64); }};
        }
        macro_rules! cmpf {
            ($op:tt) => {{ let r = popf!(); let l = popf!(); pushi!((l $op r) as i64); }};
        }

        // Executes one original non-jump op. Expanded by both the fast
        // loop (for `FastOp::Plain`) and the checked per-op loop; returns
        // exit the function with `outputs` reborrowed from the arena.
        macro_rules! exec_plain {
            ($op:expr) => {
            match $op {
                Op::ConstI(v) => pushi!(v),
                Op::ConstF(v) => pushf!(v),
                // SAFETY: `validate` checked this input index against the
                // input count `raw_inputs` was marshaled to.
                Op::LoadInput(i) => pushi!(unsafe { *ibase.add(i as usize) }),
                // SAFETY: `validate` checked this global index against the
                // schema's global count, which sized `globals`.
                Op::LoadGlobal(i) => pushi!(unsafe { *gbase.add(i as usize) }),
                // SAFETY: `validate` checked this local index against
                // `n_locals`, which sized `locals` above.
                Op::LoadLocal(i) => pushi!(unsafe { *lbase.add(i as usize) }),
                Op::StoreGlobal(i) => {
                    let v = popi!();
                    // SAFETY: same bound as LoadGlobal — `i` is within the
                    // global count that sized `globals`.
                    unsafe { *gbase.add(i as usize) = v };
                }
                Op::StoreLocal(i) => {
                    let v = popi!();
                    // SAFETY: same bound as LoadLocal — `i` is within
                    // `n_locals`, which sized `locals`.
                    unsafe { *lbase.add(i as usize) = v };
                }
                Op::AddI => {
                    let r = popi!();
                    let l = popi!();
                    pushi!(l.wrapping_add(r));
                }
                Op::SubI => {
                    let r = popi!();
                    let l = popi!();
                    pushi!(l.wrapping_sub(r));
                }
                Op::MulI => {
                    let r = popi!();
                    let l = popi!();
                    pushi!(l.wrapping_mul(r));
                }
                Op::DivI => {
                    let r = popi!();
                    let l = popi!();
                    if r == 0 {
                        return Err(EcodeError::DivideByZero);
                    }
                    pushi!(l.wrapping_div(r));
                }
                Op::ModI => {
                    let r = popi!();
                    let l = popi!();
                    if r == 0 {
                        return Err(EcodeError::DivideByZero);
                    }
                    pushi!(l.wrapping_rem(r));
                }
                Op::NegI => {
                    let v = popi!();
                    pushi!(v.wrapping_neg());
                }
                Op::AddF => binf!(+),
                Op::SubF => binf!(-),
                Op::MulF => binf!(*),
                Op::DivF => binf!(/),
                Op::NegF => {
                    let v = popf!();
                    pushf!(-v);
                }
                Op::I2F => {
                    let v = popi!();
                    pushf!(v as f64);
                }
                Op::I2FUnder => {
                    let top = popi!();
                    let under = popi!();
                    pushf!(under as f64);
                    pushi!(top);
                }
                Op::EqI => cmpi!(==),
                Op::NeI => cmpi!(!=),
                Op::LtI => cmpi!(<),
                Op::LeI => cmpi!(<=),
                Op::GtI => cmpi!(>),
                Op::GeI => cmpi!(>=),
                Op::EqF => cmpf!(==),
                Op::NeF => cmpf!(!=),
                Op::LtF => cmpf!(<),
                Op::LeF => cmpf!(<=),
                Op::GtF => cmpf!(>),
                Op::GeF => cmpf!(>=),
                Op::NotB => {
                    let v = popi!();
                    pushi!((v == 0) as i64);
                }
                Op::AbsI => {
                    let v = popi!();
                    pushi!(v.wrapping_abs());
                }
                Op::AbsF => {
                    let v = popf!();
                    pushf!(v.abs());
                }
                Op::MinI => {
                    let r = popi!();
                    let l = popi!();
                    pushi!(l.min(r));
                }
                Op::MinF => {
                    let r = popf!();
                    let l = popf!();
                    pushf!(l.min(r));
                }
                Op::MaxI => {
                    let r = popi!();
                    let l = popi!();
                    pushi!(l.max(r));
                }
                Op::MaxF => {
                    let r = popf!();
                    let l = popf!();
                    pushf!(l.max(r));
                }
                Op::Out => {
                    let value = popf!();
                    let slot = popi!();
                    outputs.push((slot, value));
                }
                Op::Jmp(_) | Op::JmpIfFalse(_) => {
                    unreachable!("jumps are handled by the dispatch loops")
                }
                Op::Pop => {
                    sp -= 1;
                }
                Op::Ret => {
                    let ret = popi!();
                    return Ok(RunOutcome {
                        ret,
                        fuel_used,
                        outputs,
                    });
                }
                Op::RetVoid => {
                    return Ok(RunOutcome {
                        ret: 0,
                        fuel_used,
                        outputs,
                    })
                }
            }
            };
        }

        let mut fpc = 0usize;
        loop {
            // Both pc maps are checked indexes: a corrupted block-entry
            // pc fails loudly here instead of reaching unchecked code.
            let opc = fast2orig[fpc] as usize;
            let blk = u64::from(block_fuel[opc]);
            if !force_per_op && fuel_used + blk <= fuel {
                // The whole block fits: charge its original op count up
                // front and run the fused code with no per-op
                // accounting. Every exit from the block is its
                // terminator (traps discard fuel), so `fuel_used` at any
                // observable point matches per-op metering of the
                // unfused program bit for bit.
                fuel_used += blk;
                loop {
                    // SAFETY: fused jump targets were rewritten into
                    // `fast`'s index space from originals `validate`
                    // proved in bounds, so `fpc` stays inside `fast`.
                    let op = unsafe { *fcode.add(fpc) };
                    fpc += 1;
                    match op {
                        FastOp::Plain(op) => exec_plain!(op),
                        FastOp::Jmp { fast: t, .. } => {
                            fpc = t as usize;
                            break;
                        }
                        FastOp::JmpIfFalse { fast: t, .. } => {
                            if popi!() == 0 {
                                fpc = t as usize;
                            }
                            break;
                        }
                        // SAFETY: `g` came from a validated StoreGlobal,
                        // so it is within the count that sized `globals`.
                        FastOp::IncGlobalI { g, c } => unsafe {
                            let p = gbase.add(g as usize);
                            *p = (*p).wrapping_add(c);
                        },
                        // SAFETY: `g` and `input` came from a validated
                        // StoreGlobal/LoadInput pair, so both indices are
                        // within the counts that sized their buffers.
                        FastOp::AccGlobalInputF { g, input } => unsafe {
                            let p = gbase.add(g as usize);
                            let sum =
                                f64::from_bits(*p as u64) + (*ibase.add(input as usize)) as f64;
                            *p = sum.to_bits() as i64;
                        },
                        // SAFETY: same provenance as AccGlobalInputF —
                        // both indices were validated before fusion.
                        FastOp::AccGlobalInputI { g, input } => unsafe {
                            let p = gbase.add(g as usize);
                            *p = (*p).wrapping_add(*ibase.add(input as usize));
                        },
                        FastOp::CmpInputCI { input, cmp, c } => {
                            // SAFETY: `input` came from a validated
                            // LoadInput, within the marshaled input count.
                            pushi!(cmp.eval(unsafe { *ibase.add(input as usize) }, c) as i64);
                        }
                        FastOp::BrInputCmpCI {
                            input,
                            cmp,
                            c,
                            fast: t,
                            ..
                        } => {
                            // SAFETY: `input` came from a validated
                            // LoadInput, within the marshaled input count.
                            if !cmp.eval(unsafe { *ibase.add(input as usize) }, c) {
                                fpc = t as usize;
                            }
                            break;
                        }
                        FastOp::RetCI(c) => {
                            return Ok(RunOutcome {
                                ret: c,
                                fuel_used,
                                outputs,
                            });
                        }
                    }
                }
            } else {
                // Budget is tight (or the caller asked for the reference
                // path): run the original code, charging and checking
                // fuel before every op.
                let mut pc = opc;
                loop {
                    fuel_used += 1;
                    if fuel_used > fuel {
                        return Err(EcodeError::OutOfFuel);
                    }
                    // SAFETY: `validate` proved every jump target and
                    // fall-through stays inside `code`.
                    let op = unsafe { *code.add(pc) };
                    pc += 1;
                    match op {
                        Op::Jmp(t) => {
                            pc = t as usize;
                            break;
                        }
                        Op::JmpIfFalse(t) => {
                            if popi!() == 0 {
                                pc = t as usize;
                            }
                            break;
                        }
                        op => exec_plain!(op),
                    }
                }
                let nf = orig2fast[pc];
                assert!(nf != u32::MAX, "block entry has no fast-code twin");
                fpc = nf as usize;
            }
        }
    }
}

/// One event through the compiled tier: the direct-threaded block loop
/// shared by [`Instance::run_compiled`] (one context per scalar call)
/// and [`Instance::run_raw_batch`] (one context per row, arenas hoisted
/// across the window). Returns `(ret, fuel_used)`; `out()` values land
/// in `ctx.outputs`.
fn drive_compiled(
    cp: &jit::CompiledProgram,
    code: &[Op],
    stack: &mut Vec<i64>,
    ctx: &mut jit::Ctx<'_>,
    fuel: u64,
) -> Result<(i64, u64), EcodeError> {
    let mut fuel_used = 0u64;
    let mut bi = 0usize;
    loop {
        let b = &cp.blocks[bi];
        if fuel_used + b.fuel <= fuel {
            // Precharge the block's whole span (chain-merged successors
            // included) and run its closure. Every exit is a real
            // terminator (traps discard fuel), exactly as the fused VM
            // meters it. The closure may additionally charge inlined
            // successor spans against the remaining budget — identical
            // decisions to this loop's own precharge — and reports them
            // in `extra`.
            fuel_used += b.fuel;
            let (extra, exit) = (b.run)(ctx, fuel - fuel_used);
            fuel_used += extra;
            match exit {
                jit::Exit::Jump(n) => bi = n as usize,
                jit::Exit::Ret(ret) => return Ok((ret, fuel_used)),
                jit::Exit::Trap => return Err(EcodeError::DivideByZero),
            }
        } else {
            // Budget too tight for a precharge: materialize the carried
            // values on the operand stack and run one
            // original-granularity block per-op with a fuel check
            // before every opcode (merged spans re-enter the loop at
            // each original boundary, re-deciding per block).
            let opc = b.entry_pc as usize;
            stack.clear();
            stack.extend_from_slice(&ctx.carry[..b.carry_in as usize]);
            let exit = exec_block_checked(
                code,
                opc,
                fuel,
                &mut fuel_used,
                stack,
                ctx.globals,
                ctx.locals,
                ctx.inputs,
                ctx.outputs,
            )?;
            match exit {
                BlockExit::Ret(ret) => return Ok((ret, fuel_used)),
                BlockExit::Next(pc) => {
                    // Checked map: a corrupted pc fails loudly instead
                    // of reaching a wrong closure.
                    let nb = cp.pc2block[pc];
                    assert!(nb != u32::MAX, "block entry has no compiled twin");
                    bi = nb as usize;
                    let d = cp.blocks[bi].carry_in as usize;
                    debug_assert_eq!(stack.len(), d, "carry depth diverged");
                    ctx.carry[..d].copy_from_slice(&stack[..d]);
                }
            }
        }
    }
}

/// How [`exec_block_checked`] left its block.
enum BlockExit {
    /// Control continues at this original pc (a block entry).
    Next(usize),
    /// The program returned this value.
    Ret(i64),
}

/// Executes one basic block (from `pc` through its real terminator) of
/// original bytecode, charging and checking fuel before every opcode —
/// the compiled driver's tight-budget fallback. Entirely safe code: the
/// cold path can afford the bounds checks, and keeping it safe means
/// the only unsafe interpreter is the one Miri already covers.
///
/// Semantics must match `run_metered`'s per-op arm exactly: same
/// wrapping arithmetic, same trap points, same fuel charge on the op
/// that exhausts the budget.
#[allow(clippy::too_many_arguments)]
fn exec_block_checked(
    code: &[Op],
    mut pc: usize,
    fuel: u64,
    fuel_used: &mut u64,
    stack: &mut Vec<i64>,
    globals: &mut [i64],
    locals: &mut [i64],
    inputs: &[i64],
    outputs: &mut Vec<(i64, f64)>,
) -> Result<BlockExit, EcodeError> {
    macro_rules! popi {
        () => {
            stack.pop().expect("validate proved no stack underflow")
        };
    }
    macro_rules! popf {
        () => {
            f64::from_bits(popi!() as u64)
        };
    }
    macro_rules! pushf {
        ($v:expr) => {
            stack.push(($v).to_bits() as i64)
        };
    }
    macro_rules! bini {
        ($f:ident) => {{
            let r = popi!();
            let l = popi!();
            stack.push(l.$f(r));
        }};
    }
    macro_rules! binf {
        ($op:tt) => {{ let r = popf!(); let l = popf!(); pushf!(l $op r); }};
    }
    macro_rules! cmpi {
        ($op:tt) => {{ let r = popi!(); let l = popi!(); stack.push((l $op r) as i64); }};
    }
    macro_rules! cmpf {
        ($op:tt) => {{ let r = popf!(); let l = popf!(); stack.push((l $op r) as i64); }};
    }
    loop {
        *fuel_used += 1;
        if *fuel_used > fuel {
            return Err(EcodeError::OutOfFuel);
        }
        let op = code[pc];
        pc += 1;
        match op {
            Op::ConstI(v) => stack.push(v),
            Op::ConstF(v) => pushf!(v),
            Op::LoadInput(i) => stack.push(inputs[i as usize]),
            Op::LoadGlobal(i) => stack.push(globals[i as usize]),
            Op::LoadLocal(i) => stack.push(locals[i as usize]),
            Op::StoreGlobal(i) => globals[i as usize] = popi!(),
            Op::StoreLocal(i) => locals[i as usize] = popi!(),
            Op::AddI => bini!(wrapping_add),
            Op::SubI => bini!(wrapping_sub),
            Op::MulI => bini!(wrapping_mul),
            Op::DivI => {
                let r = popi!();
                let l = popi!();
                if r == 0 {
                    return Err(EcodeError::DivideByZero);
                }
                stack.push(l.wrapping_div(r));
            }
            Op::ModI => {
                let r = popi!();
                let l = popi!();
                if r == 0 {
                    return Err(EcodeError::DivideByZero);
                }
                stack.push(l.wrapping_rem(r));
            }
            Op::NegI => {
                let v = popi!();
                stack.push(v.wrapping_neg());
            }
            Op::AddF => binf!(+),
            Op::SubF => binf!(-),
            Op::MulF => binf!(*),
            Op::DivF => binf!(/),
            Op::NegF => {
                let v = popf!();
                pushf!(-v);
            }
            Op::I2F => {
                let v = popi!();
                pushf!(v as f64);
            }
            Op::I2FUnder => {
                let top = popi!();
                let under = popi!();
                pushf!(under as f64);
                stack.push(top);
            }
            Op::EqI => cmpi!(==),
            Op::NeI => cmpi!(!=),
            Op::LtI => cmpi!(<),
            Op::LeI => cmpi!(<=),
            Op::GtI => cmpi!(>),
            Op::GeI => cmpi!(>=),
            Op::EqF => cmpf!(==),
            Op::NeF => cmpf!(!=),
            Op::LtF => cmpf!(<),
            Op::LeF => cmpf!(<=),
            Op::GtF => cmpf!(>),
            Op::GeF => cmpf!(>=),
            Op::NotB => {
                let v = popi!();
                stack.push((v == 0) as i64);
            }
            Op::AbsI => {
                let v = popi!();
                stack.push(v.wrapping_abs());
            }
            Op::AbsF => {
                let v = popf!();
                pushf!(v.abs());
            }
            Op::MinI => bini!(min),
            Op::MinF => {
                let r = popf!();
                let l = popf!();
                pushf!(l.min(r));
            }
            Op::MaxI => bini!(max),
            Op::MaxF => {
                let r = popf!();
                let l = popf!();
                pushf!(l.max(r));
            }
            Op::Out => {
                let value = popf!();
                let slot = popi!();
                outputs.push((slot, value));
            }
            Op::Pop => {
                popi!();
            }
            Op::Jmp(t) => return Ok(BlockExit::Next(t as usize)),
            Op::JmpIfFalse(t) => {
                let c = popi!();
                return Ok(BlockExit::Next(if c == 0 { t as usize } else { pc }));
            }
            Op::Ret => return Ok(BlockExit::Ret(popi!())),
            Op::RetVoid => return Ok(BlockExit::Ret(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Owned snapshot of a [`RunOutcome`] (which borrows its instance).
    struct OwnedOutcome {
        ret: i64,
        outputs: Vec<(i64, f64)>,
    }

    fn run_once(src: &str, inputs: &[(&str, Type)], vals: &[Value]) -> OwnedOutcome {
        let p = Program::compile(src, inputs).expect("compiles");
        let mut inst = Instance::new(&p);
        let r = inst.run(vals, 100_000).expect("runs");
        OwnedOutcome {
            ret: r.ret,
            outputs: r.outputs.to_vec(),
        }
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(run_once("return 2 + 3 * 4;", &[], &[]).ret, 14);
        assert_eq!(run_once("return (2 + 3) * 4;", &[], &[]).ret, 20);
        assert_eq!(run_once("return 7 / 2;", &[], &[]).ret, 3);
        assert_eq!(run_once("return 7 % 3;", &[], &[]).ret, 1);
        assert_eq!(run_once("return -5;", &[], &[]).ret, -5);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run_once("return 1 < 2 && 3 > 2;", &[], &[]).ret, 1);
        assert_eq!(run_once("return 1 > 2 || 2 >= 2;", &[], &[]).ret, 1);
        assert_eq!(run_once("return !(1 == 1);", &[], &[]).ret, 0);
        assert_eq!(run_once("return 1.5 < 2.0;", &[], &[]).ret, 1);
    }

    #[test]
    fn short_circuit_avoids_rhs() {
        // RHS would divide by zero; short-circuit must skip it.
        let out = run_once("int z = 0; return false && 1 / z == 0;", &[], &[]);
        assert_eq!(out.ret, 0);
        let out = run_once("int z = 0; return true || 1 / z == 0;", &[], &[]);
        assert_eq!(out.ret, 1);
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        assert_eq!(run_once("return 1 + 1.5 > 2.4;", &[], &[]).ret, 1);
        assert_eq!(run_once("return 1.5 + 1 > 2.4;", &[], &[]).ret, 1);
        // double return is rejected:
        assert!(matches!(
            Program::compile("return 1.5;", &[]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn locals_and_if_else() {
        let src = r#"
            int x = 10;
            int y = 0;
            if (x > 5) { y = 1; } else { y = 2; }
            return y;
        "#;
        assert_eq!(run_once(src, &[], &[]).ret, 1);
    }

    #[test]
    fn else_if_chain() {
        let src = r#"
            int grade = 0;
            if (score > 90) { grade = 1; }
            else if (score > 50) { grade = 2; }
            else { grade = 3; }
            return grade;
        "#;
        let p = Program::compile(src, &[("score", Type::Int)]).unwrap();
        let mut i = Instance::new(&p);
        assert_eq!(i.run(&[Value::Int(95)], 1000).unwrap().ret, 1);
        assert_eq!(i.run(&[Value::Int(70)], 1000).unwrap().ret, 2);
        assert_eq!(i.run(&[Value::Int(10)], 1000).unwrap().ret, 3);
    }

    #[test]
    fn statics_persist_across_runs() {
        let src = "static int n = 0; n = n + 1; return n;";
        let p = Program::compile(src, &[]).unwrap();
        let mut i = Instance::new(&p);
        for expect in 1..=5 {
            assert_eq!(i.run(&[], 1000).unwrap().ret, expect);
        }
        assert_eq!(i.global("n"), Some(Value::Int(5)));
        // A fresh instance starts over.
        let mut j = Instance::new(&p);
        assert_eq!(j.run(&[], 1000).unwrap().ret, 1);
    }

    #[test]
    fn inputs_are_read_only() {
        assert!(matches!(
            Program::compile("x = 1;", &[("x", Type::Int)]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn out_collects_values() {
        let src = "out(0, 1.5); out(3, 2 + 2); return 0;";
        let outcome = run_once(src, &[], &[]);
        assert_eq!(outcome.outputs, vec![(0, 1.5), (3, 4.0)]);
    }

    #[test]
    fn builtins() {
        assert_eq!(run_once("return abs(-4);", &[], &[]).ret, 4);
        assert_eq!(run_once("return min(3, 7);", &[], &[]).ret, 3);
        assert_eq!(run_once("return max(3, 7);", &[], &[]).ret, 7);
        assert_eq!(run_once("return min(2.5, 2) < 2.1;", &[], &[]).ret, 1);
    }

    #[test]
    fn fuel_exhaustion_aborts() {
        let p = Program::compile("static int n = 0; n = n + 1; return n;", &[]).unwrap();
        let mut i = Instance::new(&p);
        assert_eq!(i.run(&[], 2), Err(EcodeError::OutOfFuel));
        // A generous budget succeeds and reports usage.
        let outcome = i.run(&[], 1000).unwrap();
        assert!(outcome.fuel_used > 2 && outcome.fuel_used < 20);
    }

    #[test]
    fn divide_by_zero_is_caught() {
        let p = Program::compile("return 1 / x;", &[("x", Type::Int)]).unwrap();
        let mut i = Instance::new(&p);
        assert_eq!(i.run(&[Value::Int(0)], 1000), Err(EcodeError::DivideByZero));
        assert_eq!(i.run(&[Value::Int(2)], 1000).unwrap().ret, 0);
        let p = Program::compile("return 5 % x;", &[("x", Type::Int)]).unwrap();
        assert_eq!(
            Instance::new(&p).run(&[Value::Int(0)], 1000),
            Err(EcodeError::DivideByZero)
        );
    }

    #[test]
    fn bad_inputs_rejected() {
        let p = Program::compile("return x;", &[("x", Type::Int)]).unwrap();
        let mut i = Instance::new(&p);
        assert!(matches!(i.run(&[], 100), Err(EcodeError::BadInputs(_))));
        assert!(matches!(
            i.run(&[Value::Double(1.0)], 100),
            Err(EcodeError::BadInputs(_))
        ));
    }

    #[test]
    fn undeclared_variable_is_type_error() {
        assert!(matches!(
            Program::compile("return nope;", &[]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn redeclaration_rejected() {
        assert!(matches!(
            Program::compile("int x = 1; int x = 2;", &[]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn static_initializer_must_be_constant() {
        assert!(matches!(
            Program::compile("static int n = 1 + 2;", &[]),
            Err(EcodeError::Types { .. })
        ));
        // Negated literals are fine.
        let p = Program::compile("static int n = -5; return n;", &[]).unwrap();
        assert_eq!(Instance::new(&p).run(&[], 100).unwrap().ret, -5);
        // Int literal initializing a double is fine.
        let p = Program::compile("static double d = 2; return d > 1.5;", &[]).unwrap();
        assert_eq!(Instance::new(&p).run(&[], 100).unwrap().ret, 1);
    }

    #[test]
    fn running_average_analyzer_shape() {
        // The canonical CPA: per-class running average latency.
        let src = r#"
            static int count = 0;
            static double total = 0.0;
            if (kind == 8) {
                count = count + 1;
                total = total + latency_us;
                out(0, total / count);
            }
            return count;
        "#;
        let p =
            Program::compile(src, &[("kind", Type::Int), ("latency_us", Type::Double)]).unwrap();
        let mut i = Instance::new(&p);
        i.run(&[Value::Int(8), Value::Double(100.0)], 1000).unwrap();
        i.run(&[Value::Int(3), Value::Double(999.0)], 1000).unwrap(); // filtered
        let r = i.run(&[Value::Int(8), Value::Double(200.0)], 1000).unwrap();
        assert_eq!(r.ret, 2);
        assert_eq!(r.outputs, vec![(0, 150.0)]);
    }

    /// The fused fast path and the unfused per-op reference must agree on
    /// everything observable — return value, fuel, outputs, statics —
    /// across every control-flow path of the canonical CPA shape (all
    /// the fuser's patterns fire: counter bump, accumulate, fused
    /// compare-branches, fused constant return).
    #[test]
    fn fused_fast_path_matches_per_op_reference() {
        let src = r#"
            static int n = 0;
            static double acc = 0.0;
            n = n + 1;
            acc = acc + size;
            if (size > 800 && port_dst == 80) {
                out(0, acc / n);
                return 1;
            }
            return 0;
        "#;
        let p = Program::compile(src, &[("size", Type::Int), ("port_dst", Type::Int)]).unwrap();
        let mut fast = Instance::new(&p);
        let mut reference = Instance::new(&p);
        for (size, port) in [(200, 80), (920, 80), (1200, 5000), (920, 80), (0, 0)] {
            let vals = [Value::Int(size), Value::Int(port)];
            let a = {
                let r = fast.run(&vals, 2000).unwrap();
                (r.ret, r.fuel_used, r.outputs.to_vec())
            };
            let b = {
                let r = reference.run_per_op(&vals, 2000).unwrap();
                (r.ret, r.fuel_used, r.outputs.to_vec())
            };
            assert_eq!(a, b, "fast and reference diverge on ({size}, {port})");
        }
        assert_eq!(fast.global("n"), reference.global("n"));
        assert_eq!(fast.global("acc"), reference.global("acc"));
    }

    /// The load-time validator rejects bytecode whose control flow leaves
    /// the program — at instance creation, not mid-run.
    #[test]
    #[should_panic(expected = "control flow escapes")]
    fn malformed_bytecode_is_rejected_at_instance_creation() {
        let p = Program {
            code: vec![Op::Jmp(9)],
            inputs: vec![],
            globals: vec![],
            n_locals: 0,
        };
        let _ = Instance::new(&p);
    }

    proptest! {
        /// The VM never panics on arbitrary integer inputs; it returns a
        /// result or a well-typed error, and fuel accounting is exact for
        /// straight-line code.
        #[test]
        fn prop_vm_total_on_inputs(a in any::<i64>(), b in any::<i64>()) {
            let p = Program::compile(
                "return (a + b) * 2 - a % max(1, b);",
                &[("a", Type::Int), ("b", Type::Int)],
            ).unwrap();
            let mut i = Instance::new(&p);
            let r = i.run(&[Value::Int(a), Value::Int(b)], 10_000);
            prop_assert!(r.is_ok() || r == Err(EcodeError::DivideByZero));
        }

        /// Fuel used is deterministic: same program, same inputs, same fuel.
        #[test]
        fn prop_fuel_deterministic(x in -1000i64..1000) {
            let p = Program::compile(
                "int y = 0; if (x > 0) { y = x * 2; } else { y = -x; } return y;",
                &[("x", Type::Int)],
            ).unwrap();
            let mut i1 = Instance::new(&p);
            let mut i2 = Instance::new(&p);
            let r1 = i1.run(&[Value::Int(x)], 10_000).unwrap();
            let r2 = i2.run(&[Value::Int(x)], 10_000).unwrap();
            prop_assert_eq!(r1.fuel_used, r2.fuel_used);
            prop_assert_eq!(r1.ret, r2.ret);
        }
    }
}
