//! The fuel-metered stack VM.

use crate::compile::{GlobalInit, Program, Type};
use crate::EcodeError;

/// Bytecode instructions. Typed variants keep the stack representation a
/// plain 64-bit word (floats stored via `to_bits`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    ConstI(i64),
    ConstF(f64),
    LoadInput(u16),
    LoadGlobal(u16),
    LoadLocal(u16),
    StoreGlobal(u16),
    StoreLocal(u16),
    AddI,
    SubI,
    MulI,
    DivI,
    ModI,
    NegI,
    AddF,
    SubF,
    MulF,
    DivF,
    NegF,
    /// Convert top of stack int → double.
    I2F,
    /// Convert second-of-stack int → double (for promoting a left operand
    /// after the right operand is already pushed).
    I2FUnder,
    EqI,
    NeI,
    LtI,
    LeI,
    GtI,
    GeI,
    EqF,
    NeF,
    LtF,
    LeF,
    GtF,
    GeF,
    NotB,
    AbsI,
    AbsF,
    MinI,
    MinF,
    MaxI,
    MaxF,
    /// Pops value (f64) then slot (i64); appends to the run's outputs.
    Out,
    Jmp(u32),
    JmpIfFalse(u32),
    Pop,
    Ret,
    RetVoid,
}

/// A host-supplied input value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer input.
    Int(i64),
    /// Double input.
    Double(f64),
    /// Boolean input.
    Bool(bool),
}

impl Value {
    fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::Double(_) => Type::Double,
            Value::Bool(_) => Type::Bool,
        }
    }

    fn raw(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Double(v) => v.to_bits() as i64,
            Value::Bool(v) => *v as i64,
        }
    }
}

/// The result of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Value of the executed `return` (0 if the program fell off the end).
    pub ret: i64,
    /// Instructions executed — the host converts this to CPU time and
    /// charges it as monitoring overhead.
    pub fuel_used: u64,
    /// Values published via `out(slot, value)` during this run.
    pub outputs: Vec<(i64, f64)>,
}

/// Per-analyzer program state: the persistent `static` variables.
/// Create one instance per installed CPA; run it once per event.
#[derive(Debug, Clone)]
pub struct Instance {
    program: Program,
    globals: Vec<i64>,
}

impl Instance {
    /// Creates an instance with statics at their declared initial values.
    /// The program is cheap to clone (bytecode + layout tables).
    pub fn new(program: &Program) -> Self {
        let globals = program
            .globals
            .iter()
            .map(|(_, _, init)| match init {
                GlobalInit::Int(v) => *v,
                GlobalInit::Double(v) => v.to_bits() as i64,
                GlobalInit::Bool(v) => *v as i64,
            })
            .collect();
        Instance {
            program: program.clone(),
            globals,
        }
    }

    /// Reads a static variable's current value by name (for host-side
    /// inspection of accumulated state).
    pub fn global(&self, name: &str) -> Option<Value> {
        let idx = self
            .program
            .globals
            .iter()
            .position(|(n, _, _)| n == name)?;
        let (_, ty, _) = &self.program.globals[idx];
        let raw = self.globals[idx];
        Some(match ty {
            Type::Int => Value::Int(raw),
            Type::Double => Value::Double(f64::from_bits(raw as u64)),
            Type::Bool => Value::Bool(raw != 0),
        })
    }

    /// Runs the program once over `inputs` with the given fuel budget.
    ///
    /// # Errors
    ///
    /// * [`EcodeError::BadInputs`] if inputs don't match the declaration.
    /// * [`EcodeError::OutOfFuel`] if the budget is exhausted (statics may
    ///   have been partially updated — the analyzer is expected to be
    ///   deactivated by the controller when this happens).
    /// * [`EcodeError::DivideByZero`] on integer division/modulo by zero.
    pub fn run(&mut self, inputs: &[Value], fuel: u64) -> Result<RunOutcome, EcodeError> {
        if inputs.len() != self.program.inputs.len() {
            return Err(EcodeError::BadInputs(format!(
                "expected {} inputs, got {}",
                self.program.inputs.len(),
                inputs.len()
            )));
        }
        for (v, (name, ty)) in inputs.iter().zip(self.program.inputs.iter()) {
            if v.ty() != *ty {
                return Err(EcodeError::BadInputs(format!(
                    "input {name:?} expects {ty:?}, got {:?}",
                    v.ty()
                )));
            }
        }
        let raw_inputs: Vec<i64> = inputs.iter().map(Value::raw).collect();
        let mut locals = vec![0i64; self.program.n_locals as usize];
        let mut stack: Vec<i64> = Vec::with_capacity(16);
        let mut outputs = Vec::new();
        let mut pc = 0usize;
        let mut fuel_used = 0u64;
        let code = &self.program.code;

        macro_rules! popi {
            () => {
                stack.pop().expect("compiler guarantees stack discipline")
            };
        }
        macro_rules! popf {
            () => {
                f64::from_bits(popi!() as u64)
            };
        }
        macro_rules! pushf {
            ($v:expr) => {
                stack.push(($v).to_bits() as i64)
            };
        }
        macro_rules! binf {
            ($op:tt) => {{ let r = popf!(); let l = popf!(); pushf!(l $op r); }};
        }
        macro_rules! cmpi {
            ($op:tt) => {{ let r = popi!(); let l = popi!(); stack.push((l $op r) as i64); }};
        }
        macro_rules! cmpf {
            ($op:tt) => {{ let r = popf!(); let l = popf!(); stack.push((l $op r) as i64); }};
        }

        loop {
            fuel_used += 1;
            if fuel_used > fuel {
                return Err(EcodeError::OutOfFuel);
            }
            let op = code[pc];
            pc += 1;
            match op {
                Op::ConstI(v) => stack.push(v),
                Op::ConstF(v) => pushf!(v),
                Op::LoadInput(i) => stack.push(raw_inputs[i as usize]),
                Op::LoadGlobal(i) => stack.push(self.globals[i as usize]),
                Op::LoadLocal(i) => stack.push(locals[i as usize]),
                Op::StoreGlobal(i) => self.globals[i as usize] = popi!(),
                Op::StoreLocal(i) => locals[i as usize] = popi!(),
                Op::AddI => {
                    let r = popi!();
                    let l = popi!();
                    stack.push(l.wrapping_add(r));
                }
                Op::SubI => {
                    let r = popi!();
                    let l = popi!();
                    stack.push(l.wrapping_sub(r));
                }
                Op::MulI => {
                    let r = popi!();
                    let l = popi!();
                    stack.push(l.wrapping_mul(r));
                }
                Op::DivI => {
                    let r = popi!();
                    let l = popi!();
                    if r == 0 {
                        return Err(EcodeError::DivideByZero);
                    }
                    stack.push(l.wrapping_div(r));
                }
                Op::ModI => {
                    let r = popi!();
                    let l = popi!();
                    if r == 0 {
                        return Err(EcodeError::DivideByZero);
                    }
                    stack.push(l.wrapping_rem(r));
                }
                Op::NegI => {
                    let v = popi!();
                    stack.push(v.wrapping_neg());
                }
                Op::AddF => binf!(+),
                Op::SubF => binf!(-),
                Op::MulF => binf!(*),
                Op::DivF => binf!(/),
                Op::NegF => {
                    let v = popf!();
                    pushf!(-v);
                }
                Op::I2F => {
                    let v = popi!();
                    pushf!(v as f64);
                }
                Op::I2FUnder => {
                    let top = popi!();
                    let under = popi!();
                    pushf!(under as f64);
                    stack.push(top);
                }
                Op::EqI => cmpi!(==),
                Op::NeI => cmpi!(!=),
                Op::LtI => cmpi!(<),
                Op::LeI => cmpi!(<=),
                Op::GtI => cmpi!(>),
                Op::GeI => cmpi!(>=),
                Op::EqF => cmpf!(==),
                Op::NeF => cmpf!(!=),
                Op::LtF => cmpf!(<),
                Op::LeF => cmpf!(<=),
                Op::GtF => cmpf!(>),
                Op::GeF => cmpf!(>=),
                Op::NotB => {
                    let v = popi!();
                    stack.push((v == 0) as i64);
                }
                Op::AbsI => {
                    let v = popi!();
                    stack.push(v.wrapping_abs());
                }
                Op::AbsF => {
                    let v = popf!();
                    pushf!(v.abs());
                }
                Op::MinI => {
                    let r = popi!();
                    let l = popi!();
                    stack.push(l.min(r));
                }
                Op::MinF => {
                    let r = popf!();
                    let l = popf!();
                    pushf!(l.min(r));
                }
                Op::MaxI => {
                    let r = popi!();
                    let l = popi!();
                    stack.push(l.max(r));
                }
                Op::MaxF => {
                    let r = popf!();
                    let l = popf!();
                    pushf!(l.max(r));
                }
                Op::Out => {
                    let value = popf!();
                    let slot = popi!();
                    outputs.push((slot, value));
                }
                Op::Jmp(t) => pc = t as usize,
                Op::JmpIfFalse(t) => {
                    if popi!() == 0 {
                        pc = t as usize;
                    }
                }
                Op::Pop => {
                    popi!();
                }
                Op::Ret => {
                    let ret = popi!();
                    return Ok(RunOutcome {
                        ret,
                        fuel_used,
                        outputs,
                    });
                }
                Op::RetVoid => {
                    return Ok(RunOutcome {
                        ret: 0,
                        fuel_used,
                        outputs,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn run_once(src: &str, inputs: &[(&str, Type)], vals: &[Value]) -> RunOutcome {
        let p = Program::compile(src, inputs).expect("compiles");
        Instance::new(&p).run(vals, 100_000).expect("runs")
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(run_once("return 2 + 3 * 4;", &[], &[]).ret, 14);
        assert_eq!(run_once("return (2 + 3) * 4;", &[], &[]).ret, 20);
        assert_eq!(run_once("return 7 / 2;", &[], &[]).ret, 3);
        assert_eq!(run_once("return 7 % 3;", &[], &[]).ret, 1);
        assert_eq!(run_once("return -5;", &[], &[]).ret, -5);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run_once("return 1 < 2 && 3 > 2;", &[], &[]).ret, 1);
        assert_eq!(run_once("return 1 > 2 || 2 >= 2;", &[], &[]).ret, 1);
        assert_eq!(run_once("return !(1 == 1);", &[], &[]).ret, 0);
        assert_eq!(run_once("return 1.5 < 2.0;", &[], &[]).ret, 1);
    }

    #[test]
    fn short_circuit_avoids_rhs() {
        // RHS would divide by zero; short-circuit must skip it.
        let out = run_once("int z = 0; return false && 1 / z == 0;", &[], &[]);
        assert_eq!(out.ret, 0);
        let out = run_once("int z = 0; return true || 1 / z == 0;", &[], &[]);
        assert_eq!(out.ret, 1);
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        assert_eq!(run_once("return 1 + 1.5 > 2.4;", &[], &[]).ret, 1);
        assert_eq!(run_once("return 1.5 + 1 > 2.4;", &[], &[]).ret, 1);
        // double return is rejected:
        assert!(matches!(
            Program::compile("return 1.5;", &[]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn locals_and_if_else() {
        let src = r#"
            int x = 10;
            int y = 0;
            if (x > 5) { y = 1; } else { y = 2; }
            return y;
        "#;
        assert_eq!(run_once(src, &[], &[]).ret, 1);
    }

    #[test]
    fn else_if_chain() {
        let src = r#"
            int grade = 0;
            if (score > 90) { grade = 1; }
            else if (score > 50) { grade = 2; }
            else { grade = 3; }
            return grade;
        "#;
        let p = Program::compile(src, &[("score", Type::Int)]).unwrap();
        let mut i = Instance::new(&p);
        assert_eq!(i.run(&[Value::Int(95)], 1000).unwrap().ret, 1);
        assert_eq!(i.run(&[Value::Int(70)], 1000).unwrap().ret, 2);
        assert_eq!(i.run(&[Value::Int(10)], 1000).unwrap().ret, 3);
    }

    #[test]
    fn statics_persist_across_runs() {
        let src = "static int n = 0; n = n + 1; return n;";
        let p = Program::compile(src, &[]).unwrap();
        let mut i = Instance::new(&p);
        for expect in 1..=5 {
            assert_eq!(i.run(&[], 1000).unwrap().ret, expect);
        }
        assert_eq!(i.global("n"), Some(Value::Int(5)));
        // A fresh instance starts over.
        let mut j = Instance::new(&p);
        assert_eq!(j.run(&[], 1000).unwrap().ret, 1);
    }

    #[test]
    fn inputs_are_read_only() {
        assert!(matches!(
            Program::compile("x = 1;", &[("x", Type::Int)]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn out_collects_values() {
        let src = "out(0, 1.5); out(3, 2 + 2); return 0;";
        let outcome = run_once(src, &[], &[]);
        assert_eq!(outcome.outputs, vec![(0, 1.5), (3, 4.0)]);
    }

    #[test]
    fn builtins() {
        assert_eq!(run_once("return abs(-4);", &[], &[]).ret, 4);
        assert_eq!(run_once("return min(3, 7);", &[], &[]).ret, 3);
        assert_eq!(run_once("return max(3, 7);", &[], &[]).ret, 7);
        assert_eq!(run_once("return min(2.5, 2) < 2.1;", &[], &[]).ret, 1);
    }

    #[test]
    fn fuel_exhaustion_aborts() {
        let p = Program::compile("static int n = 0; n = n + 1; return n;", &[]).unwrap();
        let mut i = Instance::new(&p);
        assert_eq!(i.run(&[], 2), Err(EcodeError::OutOfFuel));
        // A generous budget succeeds and reports usage.
        let outcome = i.run(&[], 1000).unwrap();
        assert!(outcome.fuel_used > 2 && outcome.fuel_used < 20);
    }

    #[test]
    fn divide_by_zero_is_caught() {
        let p = Program::compile("return 1 / x;", &[("x", Type::Int)]).unwrap();
        let mut i = Instance::new(&p);
        assert_eq!(i.run(&[Value::Int(0)], 1000), Err(EcodeError::DivideByZero));
        assert_eq!(i.run(&[Value::Int(2)], 1000).unwrap().ret, 0);
        let p = Program::compile("return 5 % x;", &[("x", Type::Int)]).unwrap();
        assert_eq!(
            Instance::new(&p).run(&[Value::Int(0)], 1000),
            Err(EcodeError::DivideByZero)
        );
    }

    #[test]
    fn bad_inputs_rejected() {
        let p = Program::compile("return x;", &[("x", Type::Int)]).unwrap();
        let mut i = Instance::new(&p);
        assert!(matches!(i.run(&[], 100), Err(EcodeError::BadInputs(_))));
        assert!(matches!(
            i.run(&[Value::Double(1.0)], 100),
            Err(EcodeError::BadInputs(_))
        ));
    }

    #[test]
    fn undeclared_variable_is_type_error() {
        assert!(matches!(
            Program::compile("return nope;", &[]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn redeclaration_rejected() {
        assert!(matches!(
            Program::compile("int x = 1; int x = 2;", &[]),
            Err(EcodeError::Types { .. })
        ));
    }

    #[test]
    fn static_initializer_must_be_constant() {
        assert!(matches!(
            Program::compile("static int n = 1 + 2;", &[]),
            Err(EcodeError::Types { .. })
        ));
        // Negated literals are fine.
        let p = Program::compile("static int n = -5; return n;", &[]).unwrap();
        assert_eq!(Instance::new(&p).run(&[], 100).unwrap().ret, -5);
        // Int literal initializing a double is fine.
        let p = Program::compile("static double d = 2; return d > 1.5;", &[]).unwrap();
        assert_eq!(Instance::new(&p).run(&[], 100).unwrap().ret, 1);
    }

    #[test]
    fn running_average_analyzer_shape() {
        // The canonical CPA: per-class running average latency.
        let src = r#"
            static int count = 0;
            static double total = 0.0;
            if (kind == 8) {
                count = count + 1;
                total = total + latency_us;
                out(0, total / count);
            }
            return count;
        "#;
        let p =
            Program::compile(src, &[("kind", Type::Int), ("latency_us", Type::Double)]).unwrap();
        let mut i = Instance::new(&p);
        i.run(&[Value::Int(8), Value::Double(100.0)], 1000).unwrap();
        i.run(&[Value::Int(3), Value::Double(999.0)], 1000).unwrap(); // filtered
        let r = i.run(&[Value::Int(8), Value::Double(200.0)], 1000).unwrap();
        assert_eq!(r.ret, 2);
        assert_eq!(r.outputs, vec![(0, 150.0)]);
    }

    proptest! {
        /// The VM never panics on arbitrary integer inputs; it returns a
        /// result or a well-typed error, and fuel accounting is exact for
        /// straight-line code.
        #[test]
        fn prop_vm_total_on_inputs(a in any::<i64>(), b in any::<i64>()) {
            let p = Program::compile(
                "return (a + b) * 2 - a % max(1, b);",
                &[("a", Type::Int), ("b", Type::Int)],
            ).unwrap();
            let mut i = Instance::new(&p);
            let r = i.run(&[Value::Int(a), Value::Int(b)], 10_000);
            prop_assert!(r.is_ok() || r == Err(EcodeError::DivideByZero));
        }

        /// Fuel used is deterministic: same program, same inputs, same fuel.
        #[test]
        fn prop_fuel_deterministic(x in -1000i64..1000) {
            let p = Program::compile(
                "int y = 0; if (x > 0) { y = x * 2; } else { y = -x; } return y;",
                &[("x", Type::Int)],
            ).unwrap();
            let r1 = Instance::new(&p).run(&[Value::Int(x)], 10_000).unwrap();
            let r2 = Instance::new(&p).run(&[Value::Int(x)], 10_000).unwrap();
            prop_assert_eq!(r1.fuel_used, r2.fuel_used);
            prop_assert_eq!(r1.ret, r2.ret);
        }
    }
}
