//! The compiled execution tier: closure-compiled basic blocks.
//!
//! The paper's CPAs were *natively* code-generated into the running
//! kernel; the fused VM (superinstructions + block-granular fuel
//! precharge) is the last interpreter tax on that path. This module
//! removes it for the programs that matter: [`compile`] lowers
//! already-validated bytecode into **one monomorphized Rust closure per
//! basic block** — constant operands baked into the closure's captures,
//! per-statement expression trees reconstructed from the stack code so a
//! whole `acc = acc + size;` costs one store instead of five dispatches
//! — chained by direct-threaded block indices (each block's closure
//! returns the next block to run).
//!
//! # Tier selection and fallback
//!
//! [`Instance::new`](crate::Instance::new) compiles every program that
//! passes `validate()` and fits [`CompileBudget`]; anything else
//! transparently falls back to the fused VM. The lowering itself also
//! bails (returns `None`) on shapes it cannot prove equivalent — an
//! operand-stack residue at a store, or more cross-block stack carries
//! than [`CompileBudget::max_carry`] — rather than guess.
//!
//! # Observable equivalence
//!
//! The compiled tier is required to be **bit-identical** to the per-op
//! reference VM on every observable: return value, `fuel_used`, trap
//! kind and partial statics at the trap point, and `out()` ordering.
//! The driver ([`Instance::run`](crate::Instance::run) routes here when
//! a program compiled) reuses the same `block_fuel` precharge as the
//! fused VM, so fuel accounting is identical by construction; when the
//! remaining budget cannot cover a block, the driver spills the carried
//! stack values and executes that one block on the checked per-op
//! interpreter instead, preserving exact abort points. Within a block,
//! expression trees evaluate in bytecode push order (left subtree, right
//! subtree, operator), statements flush in program order, and values
//! carried across block boundaries (short-circuit `&&`/`||` joins)
//! evaluate before the branch condition — the same order the stack
//! machine produced them. The generative sweeps in
//! `tests/verifier.rs` assert this equivalence across all three tiers
//! for hundreds of programs.

use std::fmt;

use crate::compile::Program;
use crate::vm::{Cmp, Op};
use crate::EcodeError;

/// Hard cap on operand-stack values carried across a block boundary.
/// Short-circuit joins in real E-Code carry one or two; the array lives
/// in the driver's stack frame, so the cap keeps block entry/exit
/// allocation-free.
pub(crate) const MAX_CARRY: usize = 4;

/// Size heuristic gating the compiled tier. Programs beyond these
/// bounds still run — on the fused VM — they just aren't worth the
/// per-block closure graph (compile time and memory scale with block
/// count, and CPAs installed on the event hot path are small by
/// doctrine: the verifier already bounds their fuel).
#[derive(Debug, Clone)]
pub struct CompileBudget {
    /// Maximum basic blocks (entry points) to compile.
    pub max_blocks: usize,
    /// Maximum bytecode length to consider compiling.
    pub max_ops: usize,
    /// Maximum cross-block stack carries (clamped to an internal cap of
    /// 4; joins deeper than that fall back to the fused VM).
    pub max_carry: usize,
}

impl Default for CompileBudget {
    fn default() -> Self {
        CompileBudget {
            max_blocks: 256,
            max_ops: 4096,
            max_carry: MAX_CARRY,
        }
    }
}

/// Mutable run state a block closure executes against. Borrows the
/// instance's reusable arenas, so a compiled run allocates nothing
/// post-warmup (proven by `tests/zero_alloc.rs`).
pub(crate) struct Ctx<'a> {
    pub(crate) globals: &'a mut [i64],
    pub(crate) locals: &'a mut [i64],
    pub(crate) inputs: &'a [i64],
    pub(crate) outputs: &'a mut Vec<(i64, f64)>,
    /// Operand-stack values crossing the current block boundary.
    pub(crate) carry: &'a mut [i64; MAX_CARRY],
}

/// How a block closure left the block. Kept two words with no drop
/// glue — the driver matches on this once per block, so a `Result`
/// carrying the (String-bearing) `EcodeError` would put an allocation's
/// worth of move/drop bookkeeping on the hot path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Exit {
    /// Continue at this block index (direct-threaded chaining).
    Jump(u32),
    /// The program returned this value.
    Ret(i64),
    /// Integer division/modulo by zero — the only trap a block body can
    /// raise (fuel is the driver's job, input marshalling the caller's).
    Trap,
}

/// A block closure. The `u64` argument is the fuel budget remaining
/// *after* the block's own precharged span; specialized closures that
/// inlined conditional successors (see [`spec_node`]) charge each taken
/// arm against it and report the extra consumption in the returned
/// `u64` (always `0` for closures that never execute past their own
/// span). An arm that doesn't fit is not entered — the closure exits
/// with `Exit::Jump` at that boundary and the driver re-decides there,
/// exactly as if the arm had never been inlined.
type BlockFn = Box<dyn Fn(&mut Ctx<'_>, u64) -> (u64, Exit) + Send + Sync>;

/// One compiled basic block: the closure plus the coordinates the
/// driver needs for fuel precharge and the checked per-op fallback.
pub(crate) struct Block {
    /// Original-bytecode pc of the block entry (indexes `block_fuel`).
    pub(crate) entry_pc: u32,
    /// Operand-stack values this block consumes from `Ctx::carry`.
    pub(crate) carry_in: u8,
    /// Whether [`specialize`] produced this closure (fully
    /// monomorphized straight-line code) as opposed to the generic
    /// tree-walking fallback. Introspection only — tests pin that the
    /// representative CPA shapes never regress to the tree-walker.
    pub(crate) specialized: bool,
    /// Total fuel this closure's span covers: the block's own ops plus
    /// every chain-merged successor's (see `merge_chains`). The driver
    /// precharges this against the remaining budget; when it doesn't
    /// fit, execution re-enters at `entry_pc` on the checked per-op
    /// interpreter, which meters the original unmerged ops — so merged
    /// and unmerged runs stay bit-identical on every abort path.
    pub(crate) fuel: u64,
    /// Executes the block body and terminator.
    pub(crate) run: BlockFn,
}

/// A program lowered to a graph of per-block closures. Built once at
/// [`Instance::new`](crate::Instance::new) behind an `Arc` (instances
/// clone into digest-plane worker threads), immutable thereafter.
pub struct CompiledProgram {
    pub(crate) blocks: Vec<Block>,
    /// Original pc → block index (`u32::MAX` where no block starts);
    /// the per-op fallback uses it to re-enter compiled code at the
    /// next block boundary.
    pub(crate) pc2block: Vec<u32>,
    /// Whole-program straight-line fast path (see [`Whole`]), for
    /// programs matching the guarded-reporter shape. Taken only when
    /// the fuel budget covers `Whole::max_fuel`.
    pub(crate) whole: Option<Whole>,
}

impl CompiledProgram {
    /// `(specialized, total)` block counts — how much of the program is
    /// straight-line monomorphized code vs the generic tree-walker.
    pub(crate) fn specialization(&self) -> (usize, usize) {
        let spec = self.blocks.iter().filter(|b| b.specialized).count();
        (spec, self.blocks.len())
    }
}

impl fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (spec, total) = self.specialization();
        f.debug_struct("CompiledProgram")
            .field("blocks", &total)
            .field("specialized", &spec)
            .field("whole", &self.whole.is_some())
            .finish()
    }
}

/// Reconstructed expression tree for one stack value. Evaluation order
/// (left subtree, right subtree, operator) is exactly the bytecode's
/// push order, so traps fire at the same point with the same partial
/// state.
#[derive(Debug, Clone, PartialEq)]
enum Ex {
    /// Value carried in from the predecessor block (`Ctx::carry` slot).
    Carry(u8),
    ConstI(i64),
    ConstF(f64),
    Input(u16),
    Global(u16),
    Local(u16),
    Bin(Bin, Box<Ex>, Box<Ex>),
    Un(Un, Box<Ex>),
    CmpI(Cmp, Box<Ex>, Box<Ex>),
    CmpF(Cmp, Box<Ex>, Box<Ex>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Bin {
    AddI,
    SubI,
    MulI,
    DivI,
    ModI,
    AddF,
    SubF,
    MulF,
    DivF,
    MinI,
    MinF,
    MaxI,
    MaxF,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Un {
    NegI,
    NegF,
    NotB,
    AbsI,
    AbsF,
    I2F,
}

/// One statement's effect, flushed from the symbolic stack in program
/// order.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    StoreGlobal(u16, Ex),
    StoreLocal(u16, Ex),
    /// `out(slot, value)` — slot expression evaluates first (it was
    /// pushed first).
    Out(Ex, Ex),
    /// Expression statement: evaluate for effect (traps), discard.
    Eval(Ex),
}

/// Block terminator, after constant-folding `JmpIfFalse` on a constant
/// condition. Targets are block indices after linking.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    Jmp(u32),
    /// `if (cond == 0) goto f_target else goto t_target` — E-Code's
    /// `JmpIfFalse` with the fall-through edge made explicit.
    Br {
        cond: Ex,
        on_false: u32,
        on_true: u32,
    },
    Ret(Ex),
    RetC(i64),
}

/// A block between symbolic lowering and closure codegen.
struct Lowered {
    entry_pc: u32,
    carry_in: u8,
    steps: Vec<Step>,
    /// Stack values live across the terminator, bottom-up. For
    /// `Jmp`/`Br` they become the successor's carries; for returns they
    /// are evaluated for traps and discarded (the bytecode computed
    /// them before the return value).
    carry_out: Vec<Ex>,
    term: Term,
    /// Fuel of the covered span: this block's op count, plus every
    /// chain-merged successor's.
    fuel: u64,
}

fn f64_of(bits: i64) -> f64 {
    f64::from_bits(bits as u64)
}

fn bits_of(v: f64) -> i64 {
    v.to_bits() as i64
}

/// Evaluates an expression tree against the run state. All indices were
/// proven in bounds by `validate` at instance creation, so the safe
/// slice indexing below never panics (and the branch predictor eats the
/// checks); this module deliberately contains no `unsafe`.
fn eval(ex: &Ex, ctx: &Ctx<'_>) -> Result<i64, EcodeError> {
    Ok(match ex {
        Ex::Carry(i) => ctx.carry[*i as usize],
        Ex::ConstI(v) => *v,
        Ex::ConstF(v) => bits_of(*v),
        Ex::Input(i) => ctx.inputs[*i as usize],
        Ex::Global(i) => ctx.globals[*i as usize],
        Ex::Local(i) => ctx.locals[*i as usize],
        Ex::Bin(op, l, r) => {
            let l = eval(l, ctx)?;
            let r = eval(r, ctx)?;
            match op {
                Bin::AddI => l.wrapping_add(r),
                Bin::SubI => l.wrapping_sub(r),
                Bin::MulI => l.wrapping_mul(r),
                Bin::DivI => {
                    if r == 0 {
                        return Err(EcodeError::DivideByZero);
                    }
                    l.wrapping_div(r)
                }
                Bin::ModI => {
                    if r == 0 {
                        return Err(EcodeError::DivideByZero);
                    }
                    l.wrapping_rem(r)
                }
                Bin::AddF => bits_of(f64_of(l) + f64_of(r)),
                Bin::SubF => bits_of(f64_of(l) - f64_of(r)),
                Bin::MulF => bits_of(f64_of(l) * f64_of(r)),
                Bin::DivF => bits_of(f64_of(l) / f64_of(r)),
                Bin::MinI => l.min(r),
                Bin::MinF => bits_of(f64_of(l).min(f64_of(r))),
                Bin::MaxI => l.max(r),
                Bin::MaxF => bits_of(f64_of(l).max(f64_of(r))),
            }
        }
        Ex::Un(op, e) => {
            let v = eval(e, ctx)?;
            match op {
                Un::NegI => v.wrapping_neg(),
                Un::NegF => bits_of(-f64_of(v)),
                Un::NotB => (v == 0) as i64,
                Un::AbsI => v.wrapping_abs(),
                Un::AbsF => bits_of(f64_of(v).abs()),
                Un::I2F => bits_of(v as f64),
            }
        }
        Ex::CmpI(cmp, l, r) => {
            let l = eval(l, ctx)?;
            let r = eval(r, ctx)?;
            cmp.eval(l, r) as i64
        }
        Ex::CmpF(cmp, l, r) => {
            let l = eval(l, ctx)?;
            let r = eval(r, ctx)?;
            cmp.eval_f(f64_of(l), f64_of(r)) as i64
        }
    })
}

fn exec_step(s: &Step, ctx: &mut Ctx<'_>) -> Result<(), EcodeError> {
    match s {
        Step::StoreGlobal(g, e) => {
            let v = eval(e, ctx)?;
            ctx.globals[*g as usize] = v;
        }
        Step::StoreLocal(l, e) => {
            let v = eval(e, ctx)?;
            ctx.locals[*l as usize] = v;
        }
        Step::Out(slot, value) => {
            let s = eval(slot, ctx)?;
            let v = eval(value, ctx)?;
            ctx.outputs.push((s, f64_of(v)));
        }
        Step::Eval(e) => {
            eval(e, ctx)?;
        }
    }
    Ok(())
}

/// Lowers every reachable basic block of `program` and compiles each to
/// a closure. Returns `None` when the program exceeds `budget` or a
/// block's stack discipline can't be proven statement-shaped — the
/// caller falls back to the fused VM.
///
/// `depth_at[pc]` is the operand-stack depth on entry to `pc` computed
/// by `validate` (−1 = unreachable).
pub(crate) fn compile(
    program: &Program,
    depth_at: &[i32],
    budget: &CompileBudget,
) -> Option<CompiledProgram> {
    let code = &program.code;
    if code.len() > budget.max_ops {
        return None;
    }
    let max_carry = budget.max_carry.min(MAX_CARRY);

    // Block entries: program start, every jump target, and the
    // fall-through edge of every conditional branch — exactly the pcs
    // where the fused VM's outer loop can land. Interior jump targets
    // do not split a block: like the fused VM, a block runs from its
    // entry through the next real terminator, and `block_fuel[entry]`
    // covers that same span.
    let mut entries: Vec<usize> = Vec::new();
    let mut seen = vec![false; code.len()];
    let mark = |pc: usize, entries: &mut Vec<usize>, seen: &mut Vec<bool>| {
        if depth_at[pc] >= 0 && !seen[pc] {
            seen[pc] = true;
            entries.push(pc);
        }
    };
    mark(0, &mut entries, &mut seen);
    for (pc, op) in code.iter().enumerate() {
        if depth_at[pc] < 0 {
            continue; // dead code: never entered, never lowered
        }
        match *op {
            Op::Jmp(t) => mark(t as usize, &mut entries, &mut seen),
            Op::JmpIfFalse(t) => {
                mark(t as usize, &mut entries, &mut seen);
                mark(pc + 1, &mut entries, &mut seen);
            }
            _ => {}
        }
    }
    entries.sort_unstable();
    if entries.len() > budget.max_blocks {
        return None;
    }
    let mut pc2block = vec![u32::MAX; code.len()];
    for (bi, &pc) in entries.iter().enumerate() {
        pc2block[pc] = bi as u32;
    }

    let mut lowered = Vec::with_capacity(entries.len());
    for &entry in &entries {
        lowered.push(lower_block(
            code,
            entry,
            depth_at[entry] as usize,
            max_carry,
        )?);
    }
    merge_chains(&mut lowered, &pc2block);
    // Link terminator targets from pc space to block indices.
    for lb in &mut lowered {
        let link = |pc: &mut u32| -> Option<()> {
            let b = pc2block[*pc as usize];
            debug_assert!(b != u32::MAX, "branch to a non-entry pc");
            *pc = b;
            Some(())
        };
        match &mut lb.term {
            Term::Jmp(t) => link(t)?,
            Term::Br {
                on_false, on_true, ..
            } => {
                link(on_false)?;
                link(on_true)?;
            }
            Term::Ret(_) | Term::RetC(_) => {}
        }
    }

    // Specialization runs after linking so `spec_node` can follow
    // branch edges and inline small specialized successors, and so
    // `parse_whole` sees merged spans and block-index targets.
    let whole = parse_whole(&lowered);
    let specs: Vec<Option<BlockFn>> = (0..lowered.len())
        .map(|i| {
            spec_node(&lowered, i, INLINE_DEPTH).map(|root| -> BlockFn {
                Box::new(move |ctx: &mut Ctx<'_>, fuel_left: u64| root.exec(ctx, fuel_left))
            })
        })
        .collect();
    let blocks = lowered
        .into_iter()
        .zip(specs)
        .map(|(lb, spec)| codegen(lb, spec))
        .collect();
    Some(CompiledProgram {
        blocks,
        pc2block,
        whole,
    })
}

/// Inlines unconditional-jump chains: a block ending in `Jmp(T)` runs
/// `T` unconditionally, so `T`'s statements and terminator are copied
/// into the predecessor and the two closures become one — the
/// short-circuit lowering's trampoline blocks (`[] → Jmp`, carry-compute
/// → join, `Jmp → RetC`) collapse into their destinations, saving an
/// indirect call per hop on every event.
///
/// `T` itself stays in the block list: other edges (and the per-op
/// fallback, which re-enters at original pc boundaries) still target it.
/// The merged block's `fuel` grows by `T`'s span, so the driver's
/// precharge covers exactly the ops the merged closure executes — when
/// that doesn't fit the remaining budget, the driver re-enters at the
/// *original* entry pc per-op, which stops at the unmerged `Jmp` and
/// re-decides at `T`; both routes are bit-identical to the reference.
///
/// Carried values are substituted into the successor's expressions,
/// which delays their evaluation past the jump — sound only when the
/// expression is invariant over anything a statement can write (inputs
/// and constants; no globals/locals, no traps), so merging is skipped
/// otherwise.
fn merge_chains(lowered: &mut [Lowered], pc2block: &[u32]) {
    // Reverse order makes single-pass transitive: forward jump targets
    // are fully merged before their predecessors consider them.
    for i in (0..lowered.len()).rev() {
        // A cycle of empty blocks could ping-pong; the fuse cap bounds
        // the work (and any real chain is far shorter).
        for _ in 0..8 {
            let Term::Jmp(t_pc) = lowered[i].term else {
                break;
            };
            let j = pc2block[t_pc as usize] as usize;
            if j == i
                || !lowered[i].carry_out.iter().all(invariant)
                || lowered[i].steps.len() + lowered[j].steps.len() > 8
            {
                break;
            }
            debug_assert_eq!(lowered[j].carry_in as usize, lowered[i].carry_out.len());
            let carries = std::mem::take(&mut lowered[i].carry_out);
            let steps: Vec<Step> = lowered[j]
                .steps
                .iter()
                .map(|s| subst_step(s, &carries))
                .collect();
            let carry_out: Vec<Ex> = lowered[j]
                .carry_out
                .iter()
                .map(|e| subst(e, &carries))
                .collect();
            let term = match &lowered[j].term {
                Term::Jmp(t) => Term::Jmp(*t),
                Term::Br {
                    cond,
                    on_false,
                    on_true,
                } => Term::Br {
                    cond: subst(cond, &carries),
                    on_false: *on_false,
                    on_true: *on_true,
                },
                Term::Ret(e) => Term::Ret(subst(e, &carries)),
                Term::RetC(c) => Term::RetC(*c),
            };
            let fuel = lowered[j].fuel;
            let lb = &mut lowered[i];
            lb.steps.extend(steps);
            lb.carry_out = carry_out;
            lb.term = term;
            lb.fuel += fuel;
        }
    }
}

/// Whether delaying `ex`'s evaluation past arbitrary statements is
/// unobservable: only inputs and constants (inputs never change within
/// a run), combined trap-free.
fn invariant(ex: &Ex) -> bool {
    match ex {
        Ex::Input(_) | Ex::ConstI(_) | Ex::ConstF(_) => true,
        Ex::Global(_) | Ex::Local(_) | Ex::Carry(_) => false,
        Ex::Bin(op, l, r) => !matches!(op, Bin::DivI | Bin::ModI) && invariant(l) && invariant(r),
        Ex::Un(_, e) => invariant(e),
        Ex::CmpI(_, l, r) | Ex::CmpF(_, l, r) => invariant(l) && invariant(r),
    }
}

/// Replaces `Carry(i)` with the predecessor's carried expression.
fn subst(ex: &Ex, carries: &[Ex]) -> Ex {
    match ex {
        Ex::Carry(i) => carries[*i as usize].clone(),
        Ex::Bin(op, l, r) => Ex::Bin(
            *op,
            Box::new(subst(l, carries)),
            Box::new(subst(r, carries)),
        ),
        Ex::Un(op, e) => Ex::Un(*op, Box::new(subst(e, carries))),
        Ex::CmpI(c, l, r) => Ex::CmpI(*c, Box::new(subst(l, carries)), Box::new(subst(r, carries))),
        Ex::CmpF(c, l, r) => Ex::CmpF(*c, Box::new(subst(l, carries)), Box::new(subst(r, carries))),
        other => other.clone(),
    }
}

fn subst_step(s: &Step, carries: &[Ex]) -> Step {
    match s {
        Step::StoreGlobal(g, e) => Step::StoreGlobal(*g, subst(e, carries)),
        Step::StoreLocal(l, e) => Step::StoreLocal(*l, subst(e, carries)),
        Step::Out(slot, value) => Step::Out(subst(slot, carries), subst(value, carries)),
        Step::Eval(e) => Step::Eval(subst(e, carries)),
    }
}

/// Symbolically executes one block (entry through its real terminator),
/// reconstructing per-statement expression trees from the stack code.
fn lower_block(code: &[Op], entry: usize, carry_in: usize, max_carry: usize) -> Option<Lowered> {
    if carry_in > max_carry {
        return None;
    }
    let mut sym: Vec<Ex> = (0..carry_in).map(|i| Ex::Carry(i as u8)).collect();
    let mut steps = Vec::new();
    // A store/out/pop must leave only entry carries pending beneath it:
    // anything else would reorder evaluation (the pending tree would
    // run *after* the store where the bytecode ran it before). The
    // compiler's statement discipline guarantees this; bail, don't
    // trust.
    let carries_only = |sym: &[Ex]| sym.iter().all(|e| matches!(e, Ex::Carry(_)));
    let mut pc = entry;
    loop {
        let op = code[pc];
        pc += 1;
        match op {
            Op::ConstI(v) => sym.push(Ex::ConstI(v)),
            Op::ConstF(v) => sym.push(Ex::ConstF(v)),
            Op::LoadInput(i) => sym.push(Ex::Input(i)),
            Op::LoadGlobal(i) => sym.push(Ex::Global(i)),
            Op::LoadLocal(i) => sym.push(Ex::Local(i)),
            Op::StoreGlobal(g) => {
                let e = sym.pop()?;
                if !carries_only(&sym) {
                    return None;
                }
                steps.push(Step::StoreGlobal(g, e));
            }
            Op::StoreLocal(l) => {
                let e = sym.pop()?;
                if !carries_only(&sym) {
                    return None;
                }
                steps.push(Step::StoreLocal(l, e));
            }
            Op::Out => {
                let value = sym.pop()?;
                let slot = sym.pop()?;
                if !carries_only(&sym) {
                    return None;
                }
                steps.push(Step::Out(slot, value));
            }
            Op::Pop => {
                let e = sym.pop()?;
                if !carries_only(&sym) {
                    return None;
                }
                // Evaluate for effect: a discarded `1 / x` still traps.
                // A provably trap-free discard (no int div/mod inside)
                // is dropped outright — nothing can observe it, and fuel
                // was precharged for the whole block either way.
                if can_trap(&e) {
                    steps.push(Step::Eval(e));
                }
            }
            Op::I2F => {
                let e = sym.pop()?;
                sym.push(Ex::Un(Un::I2F, Box::new(e)));
            }
            Op::I2FUnder => {
                let top = sym.pop()?;
                let under = sym.pop()?;
                sym.push(Ex::Un(Un::I2F, Box::new(under)));
                sym.push(top);
            }
            Op::NegI => un(&mut sym, Un::NegI)?,
            Op::NegF => un(&mut sym, Un::NegF)?,
            Op::NotB => un(&mut sym, Un::NotB)?,
            Op::AbsI => un(&mut sym, Un::AbsI)?,
            Op::AbsF => un(&mut sym, Un::AbsF)?,
            Op::AddI => bin(&mut sym, Bin::AddI)?,
            Op::SubI => bin(&mut sym, Bin::SubI)?,
            Op::MulI => bin(&mut sym, Bin::MulI)?,
            Op::DivI => bin(&mut sym, Bin::DivI)?,
            Op::ModI => bin(&mut sym, Bin::ModI)?,
            Op::AddF => bin(&mut sym, Bin::AddF)?,
            Op::SubF => bin(&mut sym, Bin::SubF)?,
            Op::MulF => bin(&mut sym, Bin::MulF)?,
            Op::DivF => bin(&mut sym, Bin::DivF)?,
            Op::MinI => bin(&mut sym, Bin::MinI)?,
            Op::MinF => bin(&mut sym, Bin::MinF)?,
            Op::MaxI => bin(&mut sym, Bin::MaxI)?,
            Op::MaxF => bin(&mut sym, Bin::MaxF)?,
            Op::EqI => cmp_i(&mut sym, Cmp::Eq)?,
            Op::NeI => cmp_i(&mut sym, Cmp::Ne)?,
            Op::LtI => cmp_i(&mut sym, Cmp::Lt)?,
            Op::LeI => cmp_i(&mut sym, Cmp::Le)?,
            Op::GtI => cmp_i(&mut sym, Cmp::Gt)?,
            Op::GeI => cmp_i(&mut sym, Cmp::Ge)?,
            Op::EqF => cmp_f(&mut sym, Cmp::Eq)?,
            Op::NeF => cmp_f(&mut sym, Cmp::Ne)?,
            Op::LtF => cmp_f(&mut sym, Cmp::Lt)?,
            Op::LeF => cmp_f(&mut sym, Cmp::Le)?,
            Op::GtF => cmp_f(&mut sym, Cmp::Gt)?,
            Op::GeF => cmp_f(&mut sym, Cmp::Ge)?,
            Op::Jmp(t) => {
                if sym.len() > max_carry {
                    return None;
                }
                return Some(Lowered {
                    entry_pc: entry as u32,
                    carry_in: carry_in as u8,
                    steps,
                    carry_out: sym,
                    term: Term::Jmp(t),
                    fuel: (pc - entry) as u64,
                });
            }
            Op::JmpIfFalse(t) => {
                let cond = sym.pop()?;
                if sym.len() > max_carry {
                    return None;
                }
                // `push 0; jump-if-false` is the `&&` false arm feeding
                // an `if` — an unconditional jump, same fold the fused
                // VM applies.
                let term = match cond {
                    Ex::ConstI(0) => Term::Jmp(t),
                    Ex::ConstI(_) => Term::Jmp(pc as u32),
                    cond => Term::Br {
                        cond,
                        on_false: t,
                        on_true: pc as u32,
                    },
                };
                return Some(Lowered {
                    entry_pc: entry as u32,
                    carry_in: carry_in as u8,
                    steps,
                    carry_out: sym,
                    term,
                    fuel: (pc - entry) as u64,
                });
            }
            Op::Ret => {
                let e = sym.pop()?;
                if sym.len() > max_carry {
                    return None;
                }
                let term = match e {
                    Ex::ConstI(c) => Term::RetC(c),
                    e => Term::Ret(e),
                };
                return Some(Lowered {
                    entry_pc: entry as u32,
                    carry_in: carry_in as u8,
                    steps,
                    carry_out: sym,
                    term,
                    fuel: (pc - entry) as u64,
                });
            }
            Op::RetVoid => {
                if sym.len() > max_carry {
                    return None;
                }
                return Some(Lowered {
                    entry_pc: entry as u32,
                    carry_in: carry_in as u8,
                    steps,
                    carry_out: sym,
                    term: Term::RetC(0),
                    fuel: (pc - entry) as u64,
                });
            }
        }
    }
}

fn bin(sym: &mut Vec<Ex>, op: Bin) -> Option<()> {
    let r = sym.pop()?;
    let l = sym.pop()?;
    sym.push(Ex::Bin(op, Box::new(l), Box::new(r)));
    Some(())
}

fn un(sym: &mut Vec<Ex>, op: Un) -> Option<()> {
    let e = sym.pop()?;
    sym.push(Ex::Un(op, Box::new(e)));
    Some(())
}

fn cmp_i(sym: &mut Vec<Ex>, cmp: Cmp) -> Option<()> {
    let r = sym.pop()?;
    let l = sym.pop()?;
    sym.push(Ex::CmpI(cmp, Box::new(l), Box::new(r)));
    Some(())
}

fn cmp_f(sym: &mut Vec<Ex>, cmp: Cmp) -> Option<()> {
    let r = sym.pop()?;
    let l = sym.pop()?;
    sym.push(Ex::CmpF(cmp, Box::new(l), Box::new(r)));
    Some(())
}

/// Whether evaluating `ex` can raise a trap. Only integer division and
/// modulo trap; everything else (float ops included — IEEE divides by
/// zero quietly) is pure.
fn can_trap(ex: &Ex) -> bool {
    match ex {
        Ex::Bin(op, l, r) => matches!(op, Bin::DivI | Bin::ModI) || can_trap(l) || can_trap(r),
        Ex::Un(_, e) => can_trap(e),
        Ex::CmpI(_, l, r) | Ex::CmpF(_, l, r) => can_trap(l) || can_trap(r),
        Ex::Carry(_)
        | Ex::ConstI(_)
        | Ex::ConstF(_)
        | Ex::Input(_)
        | Ex::Global(_)
        | Ex::Local(_) => false,
    }
}

/// Turns one lowered block into its closure. The hot analyzer idioms
/// (counter bump + accumulate + guard, short-circuit arms and joins,
/// ratio publication, constant returns) get fully monomorphized
/// closures — straight-line machine code, one indirect call per block;
/// everything else gets the generic tree-walking closure, which is
/// still correct for arbitrary shapes.
fn codegen(lb: Lowered, spec: Option<BlockFn>) -> Block {
    let Lowered {
        entry_pc,
        carry_in,
        steps,
        carry_out,
        term,
        fuel,
    } = lb;
    let specialized = spec.is_some();
    let run = spec.unwrap_or_else(|| {
        Box::new(move |ctx: &mut Ctx<'_>, _fuel_left: u64| {
            for s in &steps {
                if exec_step(s, ctx).is_err() {
                    return (0, Exit::Trap);
                }
            }
            // Pre-terminator stack values evaluate before the
            // condition/return expression (bytecode computed them
            // first), into a scratch so reads of the *current* carries
            // still see entry values.
            let mut tmp = [0i64; MAX_CARRY];
            let k = carry_out.len();
            for (slot, e) in tmp.iter_mut().zip(carry_out.iter()) {
                match eval(e, ctx) {
                    Ok(v) => *slot = v,
                    Err(_) => return (0, Exit::Trap),
                }
            }
            let exit = match &term {
                Term::Jmp(t) => {
                    ctx.carry[..k].copy_from_slice(&tmp[..k]);
                    Exit::Jump(*t)
                }
                Term::Br {
                    cond,
                    on_false,
                    on_true,
                } => {
                    let c = match eval(cond, ctx) {
                        Ok(c) => c,
                        Err(_) => return (0, Exit::Trap),
                    };
                    ctx.carry[..k].copy_from_slice(&tmp[..k]);
                    Exit::Jump(if c == 0 { *on_false } else { *on_true })
                }
                Term::Ret(e) => match eval(e, ctx) {
                    Ok(v) => Exit::Ret(v),
                    Err(_) => return (0, Exit::Trap),
                },
                Term::RetC(c) => Exit::Ret(*c),
            };
            (0, exit)
        })
    });
    Block {
        entry_pc,
        carry_in,
        specialized,
        fuel,
        run,
    }
}

/// A trap-free scalar the specialized closures read directly — the
/// operand universe of the CPA hot path: inputs, globals, constants,
/// carried join values, and the `global % nonzero-const` epoch test.
#[derive(Debug, Clone, Copy)]
enum Scal {
    In(u16),
    Gl(u16),
    C(i64),
    Carry(u8),
    /// `global % c` with a nonzero constant — trap-free by construction
    /// (`as_scal` refuses `c == 0` so the generic path raises the trap).
    GlModC(u16, i64),
}

impl Scal {
    #[inline(always)]
    fn get(self, ctx: &Ctx<'_>) -> i64 {
        match self {
            Scal::In(i) => ctx.inputs[i as usize],
            Scal::Gl(g) => ctx.globals[g as usize],
            Scal::C(c) => c,
            Scal::Carry(i) => ctx.carry[i as usize],
            Scal::GlModC(g, c) => ctx.globals[g as usize].wrapping_rem(c),
        }
    }
}

fn as_scal(ex: &Ex) -> Option<Scal> {
    Some(match ex {
        Ex::Input(i) => Scal::In(*i),
        Ex::Global(g) => Scal::Gl(*g),
        Ex::ConstI(c) => Scal::C(*c),
        Ex::Carry(i) => Scal::Carry(*i),
        Ex::Bin(Bin::ModI, l, r) => match (&**l, &**r) {
            (Ex::Global(g), Ex::ConstI(c)) if *c != 0 => Scal::GlModC(*g, *c),
            _ => return None,
        },
        _ => return None,
    })
}

/// A trap-free int value: a scalar, an integer comparison of two
/// scalars (producing 0/1), or a strength-reduced divisibility test.
/// Serves as branch condition (`truthy`), carried join value, and
/// return value (`get`).
#[derive(Debug, Clone, Copy)]
enum ValK {
    S(Scal),
    Cmp(Cmp, Scal, Scal),
    /// `(global % c == 0)` (or `!=` when `ne`) with a constant divisor,
    /// computed without hardware division: `n` is divisible by
    /// `d = odd << k` iff its low `k` bits are zero and `n·odd⁻¹ (mod
    /// 2⁶⁴) ≤ ⌊(2⁶⁴−1)/odd⌋. The epoch tests CPAs gate their reports
    /// on (`events % 1000 == 0`) hit this every event, and `idiv` is
    /// the single most expensive instruction the hot path would
    /// otherwise retire; the fused VM can't do this because its
    /// divisor is a stack operand, not a compile-time capture.
    DivC {
        g: u16,
        ne: bool,
        /// Low-bit mask for the divisor's power-of-two factor.
        mask: u64,
        /// Modular inverse of the divisor's odd part (mod 2⁶⁴).
        inv: u64,
        /// `u64::MAX / odd_part` — divisibility threshold.
        thr: u64,
    },
}

impl ValK {
    #[inline(always)]
    fn get(self, ctx: &Ctx<'_>) -> i64 {
        match self {
            ValK::S(s) => s.get(ctx),
            ValK::Cmp(cmp, l, r) => cmp.eval(l.get(ctx), r.get(ctx)) as i64,
            ValK::DivC { .. } => self.truthy(ctx) as i64,
        }
    }

    #[inline(always)]
    fn truthy(self, ctx: &Ctx<'_>) -> bool {
        match self {
            ValK::S(s) => s.get(ctx) != 0,
            ValK::Cmp(cmp, l, r) => cmp.eval(l.get(ctx), r.get(ctx)),
            ValK::DivC {
                g,
                ne,
                mask,
                inv,
                thr,
            } => {
                // Truncated `%` makes divisibility sign-independent, so
                // test the magnitude (`unsigned_abs` is exact even for
                // i64::MIN).
                let n = ctx.globals[g as usize].unsigned_abs();
                let divisible = n & mask == 0 && n.wrapping_mul(inv) <= thr;
                divisible != ne
            }
        }
    }
}

/// Builds the divisibility test for constant divisor `c` (`None` only
/// for `c == 0`, which `as_scal` already refused).
fn div_test(g: u16, c: i64, ne: bool) -> Option<ValK> {
    let d = c.unsigned_abs();
    if d == 0 {
        return None;
    }
    let k = d.trailing_zeros();
    let odd = d >> k;
    // Newton's iteration doubles correct low bits each round; five
    // rounds from a 4-bit-correct seed cover all 64.
    let mut inv: u64 = odd;
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(odd.wrapping_mul(inv)));
    }
    debug_assert_eq!(odd.wrapping_mul(inv), 1);
    Some(ValK::DivC {
        g,
        ne,
        mask: (1u64 << k) - 1,
        inv,
        thr: u64::MAX / odd,
    })
}

fn as_valk(ex: &Ex) -> Option<ValK> {
    if let Ex::CmpI(cmp, l, r) = ex {
        let l = as_scal(l)?;
        let r = as_scal(r)?;
        // Strength-reduce `g % c == 0` / `!= 0` to a multiply-and-mask
        // divisibility test (either operand order).
        match (*cmp, l, r) {
            (Cmp::Eq | Cmp::Ne, Scal::GlModC(g, c), Scal::C(0))
            | (Cmp::Eq | Cmp::Ne, Scal::C(0), Scal::GlModC(g, c)) => {
                return div_test(g, c, *cmp == Cmp::Ne)
            }
            _ => {}
        }
        return Some(ValK::Cmp(*cmp, l, r));
    }
    Some(ValK::S(as_scal(ex)?))
}

/// The published value of a specialized `out(const-slot, ...)` — the
/// reporting shapes CPAs produce.
#[derive(Debug, Clone, Copy)]
enum OutK {
    /// `double-global / int-global` — the ratio report.
    RatioFI { num: u16, den: u16 },
    /// An int global, promoted to double.
    IntGl(u16),
    /// A double global, raw bits.
    DblGl(u16),
    /// A constant.
    Const(f64),
}

impl OutK {
    #[inline(always)]
    fn value(self, ctx: &Ctx<'_>) -> f64 {
        match self {
            OutK::RatioFI { num, den } => {
                f64_of(ctx.globals[num as usize]) / ctx.globals[den as usize] as f64
            }
            OutK::IntGl(g) => ctx.globals[g as usize] as f64,
            OutK::DblGl(g) => f64_of(ctx.globals[g as usize]),
            OutK::Const(v) => v,
        }
    }
}

fn as_outk(ex: &Ex) -> Option<OutK> {
    Some(match ex {
        Ex::ConstF(v) => OutK::Const(*v),
        Ex::Un(Un::I2F, inner) => match &**inner {
            Ex::Global(g) => OutK::IntGl(*g),
            Ex::ConstI(c) => OutK::Const(*c as f64),
            _ => return None,
        },
        Ex::Global(g) => OutK::DblGl(*g),
        Ex::Bin(Bin::DivF, l, r) => match (&**l, &**r) {
            (Ex::Global(num), Ex::Un(Un::I2F, d)) => match &**d {
                Ex::Global(den) => OutK::RatioFI {
                    num: *num,
                    den: *den,
                },
                _ => return None,
            },
            _ => return None,
        },
        _ => return None,
    })
}

/// One specialized, trap-free statement: a monomorphized global update
/// or an `out()` publication with a constant slot.
#[derive(Debug, Clone, Copy)]
enum FStep {
    U(GUpd),
    Pub { slot: i64, out: OutK },
}

#[inline(always)]
fn run_fsteps(fsteps: &[FStep], ctx: &mut Ctx<'_>) {
    for s in fsteps {
        match *s {
            FStep::U(u) => u.apply(ctx),
            FStep::Pub { slot, out } => {
                let v = out.value(ctx);
                ctx.outputs.push((slot, v));
            }
        }
    }
}

/// Classifies every step as a packable trap-free statement, or refuses
/// the specialization (`None` → generic closure). Capped so the `Vec`
/// stays small; longer runs are rare and the generic path handles them.
fn as_fsteps(steps: &[Step]) -> Option<Vec<FStep>> {
    if steps.len() > 6 {
        return None;
    }
    steps
        .iter()
        .map(|s| match s {
            Step::StoreGlobal(..) => as_gupd(s).map(FStep::U),
            Step::Out(Ex::ConstI(slot), value) => {
                as_outk(value).map(|out| FStep::Pub { slot: *slot, out })
            }
            _ => None,
        })
        .collect()
}

/// How deep [`spec_node`] follows branch/carry edges when inlining
/// specialized successors into one closure. Three levels cover the
/// canonical CPA control shapes (guard → `&&` arm → join → report)
/// end-to-end, so a whole event costs one indirect call.
const INLINE_DEPTH: usize = 3;

/// A fully-monomorphized block body plus terminator — the unit
/// [`spec_node`] builds and one closure executes. Unlike the generic
/// tree-walker, a node's terminator can *inline* its successors (see
/// [`SpecArm`]), so control flows through `exec`'s loop instead of
/// bouncing back to the driver at every block boundary. Everything in a
/// node is trap-free by construction ([`FStep`]/[`ValK`]/[`OutK`] admit
/// no int div/mod), so specialized closures never exit with
/// [`Exit::Trap`].
struct SpecNode {
    fsteps: Vec<FStep>,
    term: SpecTerm,
}

enum SpecTerm {
    /// Unconditional handoff to the driver (target not inlined —
    /// `merge_chains` already folded the foldable ones).
    Jump(u32),
    RetC(i64),
    /// `return <scalar or cmp>;` — the `&&`/`||` join value or a final
    /// comparison returned directly.
    RetV(ValK),
    /// The `&&` middle arm: compute the carried value (usually a
    /// comparison flag) into carry slot 0, then continue into the join.
    CarryJmp {
        v: ValK,
        arm: SpecArm,
    },
    /// Guard branch — `if (size > 1000)`, `if (n % 100 == 0)`, the `&&`
    /// join on a carried flag.
    Br {
        cond: ValK,
        f: SpecArm,
        t: SpecArm,
    },
}

/// One successor edge of a specialized terminator. When the target
/// block specialized too (`node` is `Some`), taking the edge *enters*
/// the target inside the same closure invocation — after charging the
/// target's full precharge span (`fuel`, its merged-span fuel, exactly
/// what the driver would have precharged on dispatch) against the
/// remaining budget. When the target didn't specialize, or the charge
/// doesn't fit, the closure exits with `Exit::Jump(block)` *without
/// executing any of the target*, and the driver re-decides there — so
/// inlined and non-inlined runs are bit-identical on every path,
/// including fuel-exhaustion aborts.
struct SpecArm {
    fuel: u64,
    block: u32,
    node: Option<Box<SpecNode>>,
}

impl SpecArm {
    #[inline(always)]
    fn enter(&self, fuel_left: &mut u64, extra: &mut u64) -> Option<&SpecNode> {
        let node = self.node.as_deref()?;
        if self.fuel > *fuel_left {
            return None;
        }
        *fuel_left -= self.fuel;
        *extra += self.fuel;
        Some(node)
    }
}

impl SpecNode {
    /// Executes the node graph iteratively. `fuel_left` is the budget
    /// remaining after the root block's own precharged span; the
    /// returned `u64` is the extra fuel charged for inlined successors
    /// that were entered.
    fn exec(&self, ctx: &mut Ctx<'_>, mut fuel_left: u64) -> (u64, Exit) {
        let mut extra = 0u64;
        let mut cur = self;
        loop {
            run_fsteps(&cur.fsteps, ctx);
            match &cur.term {
                SpecTerm::Jump(t) => return (extra, Exit::Jump(*t)),
                SpecTerm::RetC(c) => return (extra, Exit::Ret(*c)),
                SpecTerm::RetV(v) => return (extra, Exit::Ret(v.get(ctx))),
                SpecTerm::CarryJmp { v, arm } => {
                    // The carry materializes whether or not the arm is
                    // entered: on a bail the driver (or the per-op
                    // fallback, which spills it) picks it up from `ctx`.
                    ctx.carry[0] = v.get(ctx);
                    match arm.enter(&mut fuel_left, &mut extra) {
                        Some(node) => cur = node,
                        None => return (extra, Exit::Jump(arm.block)),
                    }
                }
                SpecTerm::Br { cond, f, t } => {
                    let arm = if cond.truthy(ctx) { t } else { f };
                    match arm.enter(&mut fuel_left, &mut extra) {
                        Some(node) => cur = node,
                        None => return (extra, Exit::Jump(arm.block)),
                    }
                }
            }
        }
    }
}

/// Builds the specialized node graph for block `i`, inlining successor
/// blocks up to `depth` edges deep. Returns `None` when any step or
/// terminator falls outside the monomorphized universe — the block gets
/// the generic tree-walking closure instead, which is still correct for
/// arbitrary shapes. Runs after `merge_chains` and terminator linking,
/// so targets are block indices and `fuel` values are merged spans.
fn spec_node(lowered: &[Lowered], i: usize, depth: usize) -> Option<SpecNode> {
    let lb = &lowered[i];
    let fsteps = as_fsteps(&lb.steps)?;
    // Carried values feeding a successor must be materialized; the
    // specialized shapes handle the two carry layouts the short-circuit
    // lowering produces (none, or one trap-free value).
    let term = match (&lb.carry_out[..], &lb.term) {
        ([], Term::Jmp(t)) => SpecTerm::Jump(*t),
        ([], Term::RetC(c)) => SpecTerm::RetC(*c),
        ([], Term::Ret(e)) => SpecTerm::RetV(as_valk(e)?),
        (
            [],
            Term::Br {
                cond,
                on_false,
                on_true,
            },
        ) => SpecTerm::Br {
            cond: as_valk(cond)?,
            f: spec_arm(lowered, *on_false, depth),
            t: spec_arm(lowered, *on_true, depth),
        },
        ([one], Term::Jmp(t)) => SpecTerm::CarryJmp {
            v: as_valk(one)?,
            arm: spec_arm(lowered, *t, depth),
        },
        _ => return None,
    };
    Some(SpecNode { fsteps, term })
}

fn spec_arm(lowered: &[Lowered], block: u32, depth: usize) -> SpecArm {
    let node = if depth > 0 {
        spec_node(lowered, block as usize, depth - 1).map(Box::new)
    } else {
        None
    };
    SpecArm {
        fuel: lowered[block as usize].fuel,
        block,
        node,
    }
}

/// Whole-program fast path: the "guarded reporter" shape canonical CPAs
/// lower to —
///
/// ```text
/// prologue updates;
/// if (c1 [&& c2]) { then-updates; [return k;] }
/// return <const | scalar | cond ? a : b>;
/// ```
///
/// — parsed off the linked block graph into one straight-line structure
/// with **per-path fuel totals baked in at compile time**. Executing it
/// costs a couple of predictable branches and the statements themselves:
/// no per-block dispatch, no driver round-trips, no fuel bookkeeping.
///
/// That last elision is only sound because `exec` is gated: the driver
/// takes this path **only when the caller's budget covers `max_fuel`**,
/// the worst-case path total. Under that precondition no fuel abort is
/// reachable on any path, every piece is trap-free by construction
/// ([`FStep`]/[`ValK`] admit no int div/mod), and the returned
/// `fuel_used` is the exact per-path block-span sum the block driver
/// would have precharged — so outcomes are bit-identical to the other
/// tiers. Budgets below `max_fuel` (and shapes that don't parse) run
/// the per-block driver with its exact abort semantics instead.
pub(crate) struct Whole {
    pro: Box<[FStep]>,
    kind: WKind,
    /// Worst-case path fuel; `exec` requires `budget >= max_fuel`.
    pub(crate) max_fuel: u64,
}

/// A return leaf: the value the program exits with.
#[derive(Clone, Copy)]
enum WLeaf {
    C(i64),
    V(ValK),
}

impl WLeaf {
    #[inline(always)]
    fn get(self, ctx: &Ctx<'_>) -> i64 {
        match self {
            WLeaf::C(c) => c,
            WLeaf::V(v) => v.get(ctx),
        }
    }
}

/// How a continuation ends. `Cond` is one conditional-return level —
/// the shape short-circuit return joins (`return a && b;`) lower to —
/// with each side's remaining block fuel baked in.
enum WTail {
    Leaf(WLeaf),
    Cond {
        c: ValK,
        t: WLeaf,
        ft: u64,
        f: WLeaf,
        ff: u64,
    },
}

impl WTail {
    #[inline(always)]
    fn exec(&self, ctx: &mut Ctx<'_>, base: u64) -> (i64, u64) {
        match self {
            WTail::Leaf(l) => (l.get(ctx), base),
            WTail::Cond { c, t, ft, f, ff } => {
                if c.truthy(ctx) {
                    (t.get(ctx), base + ft)
                } else {
                    (f.get(ctx), base + ff)
                }
            }
        }
    }

    fn max_fuel(&self) -> u64 {
        match self {
            WTail::Leaf(_) => 0,
            WTail::Cond { ft, ff, .. } => (*ft).max(*ff),
        }
    }
}

/// One straight-line continuation: statements, then a tail. `fuel` is
/// the block-span total of every block the continuation covers (minus
/// `Cond`'s per-side extras, which the tail adds itself).
struct WCont {
    steps: Box<[FStep]>,
    tail: WTail,
    fuel: u64,
}

impl WCont {
    #[inline(always)]
    fn exec(&self, ctx: &mut Ctx<'_>, base: u64) -> (i64, u64) {
        run_fsteps(&self.steps, ctx);
        self.tail.exec(ctx, base + self.fuel)
    }

    fn max_fuel(&self) -> u64 {
        self.fuel + self.tail.max_fuel()
    }
}

/// The second leg of a short-circuit guard (`… && c`): its condition,
/// the fuel of the blocks the leg traverses, and where a false lands.
struct WLeg {
    c: ValK,
    fuel: u64,
    els: WCont,
}

// The size skew between the two variants is fine: one `WKind` exists
// per compiled program, not per run.
#[allow(clippy::large_enum_variant)]
enum WKind {
    /// No guard: prologue flows straight into the tail.
    Plain { tail: WTail, fuel: u64 },
    /// `if (c1 [&& leg2.c]) { then } else { els }` — the guard shape.
    Guard {
        b0_fuel: u64,
        c1: ValK,
        leg2: Option<WLeg>,
        then: WCont,
        els: WCont,
    },
}

impl Whole {
    /// Runs the whole program. Caller must hold `budget >= max_fuel`.
    #[inline]
    pub(crate) fn exec(&self, ctx: &mut Ctx<'_>) -> (i64, u64) {
        run_fsteps(&self.pro, ctx);
        match &self.kind {
            WKind::Plain { tail, fuel } => tail.exec(ctx, *fuel),
            WKind::Guard {
                b0_fuel,
                c1,
                leg2,
                then,
                els,
            } => {
                if !c1.truthy(ctx) {
                    return els.exec(ctx, *b0_fuel);
                }
                let mut pre = *b0_fuel;
                if let Some(leg) = leg2 {
                    pre += leg.fuel;
                    if !leg.c.truthy(ctx) {
                        return leg.els.exec(ctx, pre);
                    }
                }
                then.exec(ctx, pre)
            }
        }
    }
}

/// A return leaf at block `j`: a bare return, or the carry-compute →
/// `return carry` join pair the short-circuit lowering leaves when the
/// carried value reads mutable state (so `merge_chains` couldn't fold
/// it). Returns the leaf and the block-span fuel it covers.
fn parse_ret_leaf(lowered: &[Lowered], j: u32) -> Option<(WLeaf, u64)> {
    let b = &lowered[j as usize];
    if b.carry_in != 0 || !b.steps.is_empty() {
        return None;
    }
    match (&b.carry_out[..], &b.term) {
        ([], Term::RetC(c)) => Some((WLeaf::C(*c), b.fuel)),
        ([], Term::Ret(e)) => Some((WLeaf::V(as_valk(e)?), b.fuel)),
        ([e], Term::Jmp(jj)) => {
            let jb = &lowered[*jj as usize];
            if jb.carry_in == 1
                && jb.steps.is_empty()
                && jb.carry_out.is_empty()
                && matches!(&jb.term, Term::Ret(Ex::Carry(0)))
            {
                Some((WLeaf::V(as_valk(e)?), b.fuel + jb.fuel))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// A continuation starting at block `j`: statements plus a return tail,
/// where the tail may be one conditional-return level (both the merged
/// `Br`-on-condition form and the unmerged carry-compute → `Br`-on-carry
/// join form).
fn parse_cont(lowered: &[Lowered], j: u32) -> Option<WCont> {
    let b = &lowered[j as usize];
    if b.carry_in != 0 {
        return None;
    }
    let steps = as_fsteps(&b.steps)?.into_boxed_slice();
    let (tail, fuel) = match (&b.carry_out[..], &b.term) {
        ([], Term::RetC(c)) => (WTail::Leaf(WLeaf::C(*c)), b.fuel),
        ([], Term::Ret(e)) => (WTail::Leaf(WLeaf::V(as_valk(e)?)), b.fuel),
        (
            [],
            Term::Br {
                cond,
                on_false,
                on_true,
            },
        ) => {
            let (f, ff) = parse_ret_leaf(lowered, *on_false)?;
            let (t, ft) = parse_ret_leaf(lowered, *on_true)?;
            (
                WTail::Cond {
                    c: as_valk(cond)?,
                    t,
                    ft,
                    f,
                    ff,
                },
                b.fuel,
            )
        }
        ([e], Term::Jmp(jj)) => {
            let jb = &lowered[*jj as usize];
            if jb.carry_in != 1 || !jb.steps.is_empty() {
                return None;
            }
            match (&jb.carry_out[..], &jb.term) {
                ([], Term::Ret(Ex::Carry(0))) => {
                    (WTail::Leaf(WLeaf::V(as_valk(e)?)), b.fuel + jb.fuel)
                }
                (
                    [],
                    Term::Br {
                        cond: Ex::Carry(0),
                        on_false,
                        on_true,
                    },
                ) => {
                    let (f, ff) = parse_ret_leaf(lowered, *on_false)?;
                    let (t, ft) = parse_ret_leaf(lowered, *on_true)?;
                    (
                        WTail::Cond {
                            c: as_valk(e)?,
                            t,
                            ft,
                            f,
                            ff,
                        },
                        b.fuel + jb.fuel,
                    )
                }
                _ => return None,
            }
        }
        _ => return None,
    };
    Some(WCont { steps, tail, fuel })
}

/// Parses the linked block graph into the whole-program shape, or
/// `None` when the program doesn't fit it (the per-block driver remains
/// fully general). Runs after `merge_chains` and linking, so `fuel`
/// values are merged spans and targets are block indices — the per-path
/// totals baked here are exactly the driver's precharge sums.
fn parse_whole(lowered: &[Lowered]) -> Option<Whole> {
    let b0 = &lowered[0];
    let (cond, on_false, on_true) = match &b0.term {
        Term::Br {
            cond,
            on_false,
            on_true,
        } if b0.carry_out.is_empty() => (cond, *on_false, *on_true),
        _ => {
            let cont = parse_cont(lowered, 0)?;
            let max_fuel = cont.max_fuel();
            return Some(Whole {
                pro: cont.steps,
                kind: WKind::Plain {
                    tail: cont.tail,
                    fuel: cont.fuel,
                },
                max_fuel,
            });
        }
    };
    let pro = as_fsteps(&b0.steps)?.into_boxed_slice();
    let c1 = as_valk(cond)?;
    let els = parse_cont(lowered, on_false)?;
    // The true edge is either the guard's second short-circuit leg
    // (re-branching before any statement runs) or the then-block itself.
    let tb = &lowered[on_true as usize];
    let (leg2, then) = match (&tb.steps[..], &tb.carry_out[..], &tb.term) {
        // `merge_chains` folded the `&&` join: a bare re-branch.
        (
            [],
            [],
            Term::Br {
                cond,
                on_false: f2,
                on_true: t2,
            },
        ) => (
            Some(WLeg {
                c: as_valk(cond)?,
                fuel: tb.fuel,
                els: parse_cont(lowered, *f2)?,
            }),
            parse_cont(lowered, *t2)?,
        ),
        // Unmerged leg: carry-compute into the join's branch-on-carry.
        ([], [e2], Term::Jmp(jj))
            if matches!(
                &lowered[*jj as usize].term,
                Term::Br {
                    cond: Ex::Carry(0),
                    ..
                }
            ) && lowered[*jj as usize].carry_in == 1
                && lowered[*jj as usize].steps.is_empty()
                && lowered[*jj as usize].carry_out.is_empty() =>
        {
            let Term::Br {
                on_false: f2,
                on_true: t2,
                ..
            } = &lowered[*jj as usize].term
            else {
                unreachable!("matched above");
            };
            (
                Some(WLeg {
                    c: as_valk(e2)?,
                    fuel: tb.fuel + lowered[*jj as usize].fuel,
                    els: parse_cont(lowered, *f2)?,
                }),
                parse_cont(lowered, *t2)?,
            )
        }
        _ => (None, parse_cont(lowered, on_true)?),
    };
    let inner = match &leg2 {
        Some(leg) => leg.fuel + then.max_fuel().max(leg.els.max_fuel()),
        None => then.max_fuel(),
    };
    let max_fuel = b0.fuel + els.max_fuel().max(inner);
    Some(Whole {
        pro,
        kind: WKind::Guard {
            b0_fuel: b0.fuel,
            c1,
            leg2,
            then,
            els,
        },
        max_fuel,
    })
}

/// A trap-free single-global update statement, monomorphized. These are
/// the statements CPAs spend their lives in; `apply` is branchless
/// straight-line code over validated indices.
#[derive(Debug, Clone, Copy)]
enum GUpd {
    /// `g = g + c` (int).
    IncC {
        g: u16,
        c: i64,
    },
    /// `g = g + input` (int).
    AccInI {
        g: u16,
        i: u16,
    },
    /// `g = g + input` (int input promoted into a double global).
    AccInF {
        g: u16,
        i: u16,
    },
    /// `g = min(g, input)` / `g = max(g, input)` (int).
    MinIn {
        g: u16,
        i: u16,
    },
    MaxIn {
        g: u16,
        i: u16,
    },
    /// `g = a - b` over two globals (int) — span/delta folds like
    /// `span = hi - lo`.
    SubGG {
        g: u16,
        a: u16,
        b: u16,
    },
    /// `g = <constant>` (raw bits — int, bool, or double).
    SetC {
        g: u16,
        raw: i64,
    },
    /// `g = input` (raw bits match: int/bool input into same-typed global).
    SetIn {
        g: u16,
        i: u16,
    },
}

impl GUpd {
    #[inline(always)]
    fn apply(self, ctx: &mut Ctx<'_>) {
        match self {
            GUpd::IncC { g, c } => {
                let p = &mut ctx.globals[g as usize];
                *p = p.wrapping_add(c);
            }
            GUpd::AccInI { g, i } => {
                let v = ctx.inputs[i as usize];
                let p = &mut ctx.globals[g as usize];
                *p = p.wrapping_add(v);
            }
            GUpd::AccInF { g, i } => {
                let v = ctx.inputs[i as usize] as f64;
                let p = &mut ctx.globals[g as usize];
                *p = bits_of(f64_of(*p) + v);
            }
            GUpd::MinIn { g, i } => {
                let v = ctx.inputs[i as usize];
                let p = &mut ctx.globals[g as usize];
                *p = (*p).min(v);
            }
            GUpd::MaxIn { g, i } => {
                let v = ctx.inputs[i as usize];
                let p = &mut ctx.globals[g as usize];
                *p = (*p).max(v);
            }
            GUpd::SubGG { g, a, b } => {
                let v = ctx.globals[a as usize].wrapping_sub(ctx.globals[b as usize]);
                ctx.globals[g as usize] = v;
            }
            GUpd::SetC { g, raw } => ctx.globals[g as usize] = raw,
            GUpd::SetIn { g, i } => ctx.globals[g as usize] = ctx.inputs[i as usize],
        }
    }
}

fn as_gupd(step: &Step) -> Option<GUpd> {
    let Step::StoreGlobal(g, ex) = step else {
        return None;
    };
    let g = *g;
    match ex {
        Ex::ConstI(c) => Some(GUpd::SetC { g, raw: *c }),
        Ex::ConstF(v) => Some(GUpd::SetC {
            g,
            raw: bits_of(*v),
        }),
        Ex::Input(i) => Some(GUpd::SetIn { g, i: *i }),
        Ex::Bin(op, l, r) => match (op, &**l, &**r) {
            (Bin::AddI, Ex::Global(g2), Ex::ConstI(c)) if *g2 == g => Some(GUpd::IncC { g, c: *c }),
            (Bin::AddI, Ex::Global(g2), Ex::Input(i)) if *g2 == g => {
                Some(GUpd::AccInI { g, i: *i })
            }
            (Bin::AddF, Ex::Global(g2), Ex::Un(Un::I2F, inner)) if *g2 == g => {
                if let Ex::Input(i) = &**inner {
                    Some(GUpd::AccInF { g, i: *i })
                } else {
                    None
                }
            }
            (Bin::MinI, Ex::Global(g2), Ex::Input(i)) if *g2 == g => Some(GUpd::MinIn { g, i: *i }),
            (Bin::MaxI, Ex::Global(g2), Ex::Input(i)) if *g2 == g => Some(GUpd::MaxIn { g, i: *i }),
            (Bin::SubI, Ex::Global(a), Ex::Global(b)) => Some(GUpd::SubGG { g, a: *a, b: *b }),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecTier, Instance, Type, Value};

    const INPUTS: [(&str, Type); 2] = [("size", Type::Int), ("port", Type::Int)];

    /// The canonical counting-CPA shape: branches, float accumulation,
    /// an output, and a short-circuit join.
    const CPA_SRC: &str = r#"
        static int n = 0;
        static double total = 0.0;
        if (size > 1000 && port == 2049) {
            n = n + 1;
            total = total + size;
            out(0, total / n);
        }
        return n % 10 == 0 && n > 0;
    "#;

    fn program(src: &str) -> Program {
        Program::compile(src, &INPUTS).unwrap()
    }

    /// Runs both tiers over the same input stream and asserts every
    /// observable matches bit-for-bit.
    fn assert_tiers_agree(src: &str) {
        let p = program(src);
        let mut compiled = Instance::new(&p);
        let mut fused = Instance::new_fused(&p);
        assert_eq!(fused.tier(), ExecTier::Fused);
        for i in 0..50i64 {
            let inputs = [
                Value::Int(i * 500 % 3000),
                Value::Int(if i % 3 == 0 { 2049 } else { 80 }),
            ];
            let a = compiled
                .run(&inputs, 1_000)
                .map(|o| (o.ret, o.fuel_used, o.outputs.to_vec()));
            let b = fused
                .run(&inputs, 1_000)
                .map(|o| (o.ret, o.fuel_used, o.outputs.to_vec()));
            assert_eq!(a, b, "tier divergence at event {i}");
            assert_eq!(compiled.raw_globals(), fused.raw_globals());
        }
    }

    /// The perf claim rests on the hot CPA idioms getting monomorphized
    /// closures, not the generic tree-walker — pin it so a lowering or
    /// specialization change can't silently regress `cpa_eval` to 1x.
    #[test]
    fn canonical_cpa_shapes_fully_specialize() {
        let inputs: [(&str, Type); 7] = [
            ("kind", Type::Int),
            ("pid", Type::Int),
            ("wall", Type::Int),
            ("size", Type::Int),
            ("aux", Type::Int),
            ("port_src", Type::Int),
            ("port_dst", Type::Int),
        ];
        for (name, src) in [
            (
                "ratio",
                r#"
                static int n = 0;
                static double acc = 0.0;
                n = n + 1;
                acc = acc + size;
                if (size > 800 && port_dst == 80) {
                    out(0, acc / n);
                    return 1;
                }
                return 0;
            "#,
            ),
            (
                "gated_counter",
                r#"
                static int seen = 0;
                static int nfs = 0;
                static int big = 0;
                seen = seen + 1;
                if (port_dst == 2049 && size > 1000) {
                    nfs = nfs + 1;
                    big = max(big, size);
                }
                return nfs > 0 && seen % 100 == 0;
            "#,
            ),
            (
                "latency_minmax",
                r#"
                static int events = 0;
                static int lo = 9223372036854775807;
                static int hi = 0;
                static int span = 0;
                events = events + 1;
                lo = min(lo, wall);
                hi = max(hi, wall);
                span = hi - lo;
                if (events % 1000 == 0) { out(1, span); }
                return 0;
            "#,
            ),
        ] {
            let p = Program::compile(src, &inputs).unwrap();
            let inst = Instance::new(&p);
            assert_eq!(inst.tier(), ExecTier::Compiled, "{name} must compile");
            let (spec, total) = inst.compiled_specialization().unwrap();
            assert_eq!(
                spec, total,
                "{name}: only {spec}/{total} blocks specialized"
            );
            assert_eq!(
                inst.compiled_whole_path(),
                Some(true),
                "{name} must parse into the whole-program fast path"
            );
        }
    }

    #[test]
    fn default_budget_compiles_the_canonical_cpa() {
        let p = program(CPA_SRC);
        assert_eq!(Instance::new(&p).tier(), ExecTier::Compiled);
        assert_tiers_agree(CPA_SRC);
    }

    #[test]
    fn new_fused_opts_out_of_compilation() {
        let p = program(CPA_SRC);
        assert_eq!(Instance::new_fused(&p).tier(), ExecTier::Fused);
    }

    #[test]
    fn block_budget_exceeded_falls_back_to_fused() {
        let p = program(CPA_SRC);
        let tiny = CompileBudget {
            max_blocks: 1,
            ..CompileBudget::default()
        };
        let mut inst = Instance::with_budget(&p, &tiny);
        assert_eq!(inst.tier(), ExecTier::Fused);
        // Fallback is transparent: the instance still runs correctly.
        let out = inst
            .run(&[Value::Int(1500), Value::Int(2049)], 1_000)
            .unwrap();
        assert_eq!(out.ret, 0); // n == 1, not a multiple of 10
    }

    #[test]
    fn op_budget_exceeded_falls_back_to_fused() {
        let p = program(CPA_SRC);
        let tiny = CompileBudget {
            max_ops: 2,
            ..CompileBudget::default()
        };
        assert_eq!(Instance::with_budget(&p, &tiny).tier(), ExecTier::Fused);
    }

    #[test]
    fn carry_budget_exceeded_falls_back_to_fused() {
        // `port != 0 && size / port > 3` joins with one carried stack
        // value, so a zero-carry budget cannot lower it.
        let src = "return port != 0 && size / port > 3;";
        let p = program(src);
        let zero_carry = CompileBudget {
            max_carry: 0,
            ..CompileBudget::default()
        };
        assert_eq!(
            Instance::with_budget(&p, &zero_carry).tier(),
            ExecTier::Fused
        );
        // ... while the default budget takes it compiled, identically.
        assert_eq!(Instance::new(&p).tier(), ExecTier::Compiled);
        assert_tiers_agree(src);
    }

    #[test]
    fn deep_carry_shape_falls_back_even_on_default_budget() {
        // Four pending booleans below the short-circuit join put five
        // values on the stack at the join entry — past MAX_CARRY. This
        // shape is non-compilable by design and must run fused —
        // correctly — without the host doing anything.
        let src =
            "return size > 0 == (port > 0 == (size > 1 == (port > 1 == (size > 2 && port > 2))));";
        let p = program(src);
        let inst = Instance::new(&p);
        assert_eq!(
            inst.tier(),
            ExecTier::Fused,
            "deeper-than-MAX_CARRY joins must fall back"
        );
        assert_tiers_agree(src);
    }

    #[test]
    fn compiled_runs_match_per_op_reference_under_tight_fuel() {
        // Precharge fallback: when the remaining budget cannot cover a
        // block, the compiled driver must degrade to checked per-op
        // execution with identical trap points and fuel accounting.
        let p = program(CPA_SRC);
        let bound = p.static_fuel_bound();
        let mut compiled = Instance::new(&p);
        let mut reference = Instance::new(&p);
        assert_eq!(compiled.tier(), ExecTier::Compiled);
        for fuel in [bound, bound / 2 + 1, 3, 1] {
            for i in 0..20i64 {
                let inputs = [Value::Int(i * 700 % 2500), Value::Int(2049)];
                let a = compiled
                    .run(&inputs, fuel)
                    .map(|o| (o.ret, o.fuel_used, o.outputs.to_vec()));
                let b = reference
                    .run_per_op(&inputs, fuel)
                    .map(|o| (o.ret, o.fuel_used, o.outputs.to_vec()));
                assert_eq!(a, b, "fuel={fuel} event={i}");
                assert_eq!(compiled.raw_globals(), reference.raw_globals());
            }
        }
    }
}
