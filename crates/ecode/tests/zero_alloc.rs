//! Regression test for the compiled execution tier's allocation
//! discipline: after warmup, running a compiled E-Code program a million
//! times — block closures, cross-block carries, fuel precharge, output
//! publication, and the starved-budget per-op fallback — must never
//! touch the heap. The closures borrow the instance's reusable arenas
//! (`ecode::jit::Ctx`); a stray `Vec`/`Box` in a block body would break
//! always-on monitoring budgets exactly like one in `Kprof::emit`.
//!
//! This file is its own test binary so the counting `#[global_allocator]`
//! observes only this test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use ecode::{ExecTier, Instance, Program, Type};

/// Counts every allocation and every (re)allocation on the test thread
/// while [`TRACK`] is set; frees — and libtest's harness threads, which
/// allocate at their own pace — are not interesting here.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized so the first access inside `alloc` itself never
    // allocates.
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    TRACK.with(|t| {
        if t.get() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// SAFETY: pure pass-through to `System`, which upholds the GlobalAlloc
// contract; the only addition is a thread-local counter bump that never
// allocates or touches the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`;
        // forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this `layout`; forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        // SAFETY: caller guarantees `ptr`/`layout` validity per the
        // GlobalAlloc contract; forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The canonical hot-path CPA shape: branches, a short-circuit join
/// (cross-block carry), float accumulation, and an `out()` publication.
const CPA_SRC: &str = r#"
    static int n = 0;
    static double total = 0.0;
    if (size > 1000 && port == 2049) {
        n = n + 1;
        total = total + size;
        out(0, total / n);
    }
    return n % 10 == 0 && n > 0;
"#;

const INPUTS: [(&str, Type); 2] = [("size", Type::Int), ("port", Type::Int)];

#[test]
fn million_compiled_runs_allocate_nothing_after_warmup() {
    let program = Program::compile(CPA_SRC, &INPUTS).unwrap();
    let fuel = program.static_fuel_bound();
    let mut inst = Instance::new(&program);
    assert_eq!(
        inst.tier(),
        ExecTier::Compiled,
        "test is vacuous unless the program takes the compiled tier"
    );

    // Warmup: the outputs arena and locals grow to steady state on the
    // first few runs (both paths of the branch get exercised).
    for i in 0..10_000i64 {
        let raw = [i * 500 % 3000, if i % 3 == 0 { 2049 } else { 80 }];
        inst.run_raw(&raw, fuel).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    TRACK.with(|t| t.set(true));
    let mut flagged = 0u64;
    for i in 10_000..1_010_000i64 {
        let raw = [i * 500 % 3000, if i % 3 == 0 { 2049 } else { 80 }];
        let out = inst.run_raw(&raw, fuel).unwrap();
        if out.ret != 0 {
            flagged += 1;
        }
    }
    // The starved-budget per-op fallback spills carries to the (already
    // warmed) stack arena; it must be allocation-free too.
    for i in 0..1_000i64 {
        let raw = [i * 500 % 3000, 2049];
        let _ = inst.run_raw(&raw, 3);
    }
    // And the batch entry point: the hoisted context borrows the same
    // arenas, so a whole window must also run without touching the heap
    // (the row buffer is the caller's).
    TRACK.with(|t| t.set(false));
    let mut rows = Vec::with_capacity(2 * 4096);
    for i in 0..4096i64 {
        rows.push(i * 500 % 3000);
        rows.push(if i % 3 == 0 { 2049 } else { 80 });
    }
    TRACK.with(|t| t.set(true));
    inst.run_raw_batch(&rows, fuel, |out| {
        if out.ret != 0 {
            flagged += 1;
        }
    })
    .unwrap();
    TRACK.with(|t| t.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "compiled tier allocated {} times across 1M post-warmup runs",
        after - before
    );
    // Sanity: the loop really did take the accumulate-and-flag path.
    assert!(flagged > 0);
}
