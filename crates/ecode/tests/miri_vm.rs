//! Miri smoke suite for the VM's unsafe interpreter paths.
//!
//! `ci.sh` runs this file under `cargo +nightly miri test` when Miri is
//! installed (and as a plain test otherwise). The cases are deliberately
//! tiny — Miri executes ~100x slower than native — but together they
//! drive every unsafe site in `vm.rs`: the fused fast loop, the per-op
//! reference loop, each fused super-instruction, the stack push/pop
//! macros, and the arena-reuse path across repeated runs, plus the
//! error exits (out-of-fuel, divide-by-zero) that unwind mid-loop.

use ecode::{EcodeError, Instance, Program, Type, Value};

fn compile(src: &str, inputs: &[(&str, Type)]) -> Program {
    Program::compile(src, inputs).expect("fixture compiles")
}

#[test]
fn fused_counter_and_per_op_agree() {
    // `n = n + 1` lowers to the IncGlobalI super-instruction on the
    // fused path; the per-op path interprets the original opcodes.
    let p = compile(
        "static int n = 0;\n n = n + 1;\n return n;",
        &[("size", Type::Int)],
    );
    let mut fused = Instance::new(&p);
    let mut per_op = Instance::new(&p);
    for i in 1..=8i64 {
        let a = fused.run(&[Value::Int(i)], 1_000).unwrap().ret;
        let b = per_op.run_per_op(&[Value::Int(i)], 1_000).unwrap().ret;
        assert_eq!(a, i);
        assert_eq!(a, b);
    }
}

#[test]
fn accumulators_and_outputs() {
    // Exercises AccGlobalInput (int and double), mixed promotion, and
    // the out() builtin writing through the shared output buffer.
    let p = compile(
        "static int events = 0;\n\
         static double total = 0.0;\n\
         events = events + 1;\n\
         total = total + 1.5 * size;\n\
         out(0, total / events);\n\
         return events;",
        &[("size", Type::Int)],
    );
    let mut inst = Instance::new(&p);
    for run in 1..=4i64 {
        let out = inst.run(&[Value::Int(100)], 10_000).unwrap();
        assert_eq!(out.ret, run);
        assert_eq!(out.outputs.len(), 1);
        let (slot, mean) = out.outputs[0];
        assert_eq!(slot, 0);
        assert!((mean - 150.0).abs() < 1e-9);
    }
}

#[test]
fn branches_take_both_paths() {
    // CmpInputCI / BrInputCmpCI fusions plus the jump-target rewrite:
    // run once down each side of the branch.
    let p = compile(
        "static int big = 0;\n\
         static int small = 0;\n\
         if (size > 1000) { big = big + 1; } else { small = small + 1; }\n\
         return big - small;",
        &[("size", Type::Int)],
    );
    let mut inst = Instance::new(&p);
    assert_eq!(inst.run(&[Value::Int(2000)], 1_000).unwrap().ret, 1);
    assert_eq!(inst.run(&[Value::Int(10)], 1_000).unwrap().ret, 0);
    let mut per_op = Instance::new(&p);
    assert_eq!(
        per_op.run_per_op(&[Value::Int(2000)], 1_000).unwrap().ret,
        1
    );
    assert_eq!(per_op.run_per_op(&[Value::Int(10)], 1_000).unwrap().ret, 0);
}

#[test]
fn out_of_fuel_aborts_cleanly_on_both_paths() {
    let p = compile(
        "static int n = 0;\n n = n + size + size + size;\n return n;",
        &[("size", Type::Int)],
    );
    let mut inst = Instance::new(&p);
    assert!(matches!(
        inst.run(&[Value::Int(1)], 1),
        Err(EcodeError::OutOfFuel)
    ));
    assert!(matches!(
        inst.run_per_op(&[Value::Int(1)], 1),
        Err(EcodeError::OutOfFuel)
    ));
    // The instance stays usable after an abort (arenas are reset per
    // run, not poisoned).
    assert!(inst.run(&[Value::Int(1)], 1_000).is_ok());
}

#[test]
fn divide_by_zero_aborts_cleanly() {
    let p = compile("return 10 / size;", &[("size", Type::Int)]);
    let mut inst = Instance::new(&p);
    assert!(matches!(
        inst.run(&[Value::Int(0)], 1_000),
        Err(EcodeError::DivideByZero)
    ));
    assert!(matches!(
        inst.run_per_op(&[Value::Int(0)], 1_000),
        Err(EcodeError::DivideByZero)
    ));
    assert_eq!(inst.run(&[Value::Int(5)], 1_000).unwrap().ret, 2);
}

#[test]
fn globals_reset_and_arena_reuse() {
    let p = compile(
        "static int n = 0;\n n = n + 1;\n return n;",
        &[("size", Type::Int)],
    );
    let mut inst = Instance::new(&p);
    for _ in 0..3 {
        inst.run(&[Value::Int(0)], 1_000).unwrap();
    }
    assert_eq!(inst.global("n"), Some(Value::Int(3)));
    inst.reset_globals();
    assert_eq!(inst.run(&[Value::Int(0)], 1_000).unwrap().ret, 1);
}
