//! Batch-entry and strength-reduction differentials.
//!
//! `Instance::run_raw_batch` is documented as *exactly* a per-row
//! `run_raw` loop with the per-call setup hoisted — same outcomes, same
//! statics evolution, and the same trap at the same row. These tests
//! hold it to that contract on both execution tiers, across budgets
//! that exercise the whole-program fast path (budget ≥ worst-case path)
//! and the per-block driver (starved budgets, mid-window aborts).
//!
//! The divisibility tests pin the compiled tier's strength-reduced
//! `g % c == 0` (mask + multiplicative-inverse, no hardware division)
//! against the per-op reference on the values where such reductions
//! classically go wrong: negatives, `i64::MIN`, powers of two, odd and
//! mixed divisors, and `c == 1`.

use ecode::{EcodeError, ExecTier, Instance, Program, Type, Value};

const INPUTS: [(&str, Type); 2] = [("size", Type::Int), ("port", Type::Int)];

/// Representative shapes for the batch contract: the guarded-reporter
/// whole-path shape, a divisibility-gated counter, a min/max fold, and
/// an input-dependent trap (division by a sometimes-zero input).
const BATCH_PROGRAMS: [&str; 4] = [
    "static int n = 0;\nstatic double acc = 0.0;\nn = n + 1;\nacc = acc + size;\nif (size > 800 && port == 80) { out(0, acc / n); return 1; }\nreturn 0;",
    "static int seen = 0;\nseen = seen + 1;\nreturn seen % 100 == 0;",
    "static int lo = 9223372036854775807;\nstatic int hi = 0;\nlo = min(lo, size);\nhi = max(hi, size);\nreturn hi - lo;",
    "return size / port;",
];

type Sig = (
    Vec<(i64, u64, Vec<(i64, f64)>)>,
    Option<EcodeError>,
    Vec<i64>,
);

fn batch_sig(inst: &mut Instance, rows: &[i64], fuel: u64) -> Sig {
    let mut sunk = Vec::new();
    let err = inst
        .run_raw_batch(rows, fuel, |o| {
            sunk.push((o.ret, o.fuel_used, o.outputs.to_vec()))
        })
        .err();
    (sunk, err, inst.raw_globals().to_vec())
}

fn scalar_sig(inst: &mut Instance, rows: &[i64], fuel: u64) -> Sig {
    let mut sunk = Vec::new();
    let mut err = None;
    for row in rows.chunks_exact(2) {
        match inst.run_raw(row, fuel) {
            Ok(o) => sunk.push((o.ret, o.fuel_used, o.outputs.to_vec())),
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    (sunk, err, inst.raw_globals().to_vec())
}

fn window() -> Vec<i64> {
    // 257 rows (not a power of two) mixing guard hits (size > 800 with
    // port == 80), misses, and zero ports (trap rows for `size / port`).
    let mut rows = Vec::with_capacity(2 * 257);
    for i in 0..257i64 {
        rows.push(200 + (i % 9) * 150);
        rows.push(if i % 3 == 0 { 80 } else { i % 5 });
    }
    rows
}

#[test]
fn run_raw_batch_matches_per_row_run_raw() {
    let rows = window();
    for src in BATCH_PROGRAMS {
        let p = Program::compile(src, &INPUTS).unwrap();
        let bound = p.static_fuel_bound();
        // Budgets straddling the whole-path gate (≥ worst-case path uses
        // the straight-line fast path; anything lower drives per block)
        // plus starved budgets that abort mid-program.
        for budget in [bound, bound.saturating_sub(2), bound / 2 + 1, 3] {
            for mk in [
                Instance::new as fn(&Program) -> Instance,
                Instance::new_fused,
            ] {
                let b = batch_sig(&mut mk(&p), &rows, budget);
                let s = scalar_sig(&mut mk(&p), &rows, budget);
                assert_eq!(
                    b, s,
                    "batch diverged from per-row scalar (budget {budget}) on\n{src}"
                );
            }
        }
    }
}

#[test]
fn run_raw_batch_rejects_ragged_windows() {
    let p = Program::compile(BATCH_PROGRAMS[0], &INPUTS).unwrap();
    let bound = p.static_fuel_bound();
    let mut inst = Instance::new(&p);
    let before = inst.raw_globals().to_vec();
    let mut sunk = 0usize;
    let err = inst.run_raw_batch(&[1, 2, 3], bound, |_| sunk += 1);
    assert!(matches!(err, Err(EcodeError::BadInputs(_))), "{err:?}");
    assert_eq!(sunk, 0, "a ragged window must execute nothing");
    assert_eq!(inst.raw_globals(), &before[..], "statics must be untouched");
}

#[test]
fn divisibility_tests_match_reference_on_edge_values() {
    // Divisors by reduction class: 1 (always divisible), powers of two
    // (mask only), odd (inverse only), mixed even (mask + inverse), and
    // the largest odd divisor.
    let divisors: [i64; 7] = [1, 2, 7, 8, 100, 4096, i64::MAX];
    let values: [i64; 18] = [
        0,
        1,
        -1,
        2,
        -2,
        7,
        -7,
        8,
        -8,
        100,
        -100,
        4095,
        4096,
        -4096,
        i64::MAX,
        i64::MAX - 1,
        i64::MIN,
        i64::MIN + 1,
    ];
    for c in divisors {
        for op in ["==", "!="] {
            let src = format!("static int g = 0;\ng = size;\nreturn g % {c} {op} 0;");
            let p = Program::compile(&src, &INPUTS).unwrap();
            let bound = p.static_fuel_bound();
            let mut comp = Instance::new(&p);
            assert_eq!(
                comp.tier(),
                ExecTier::Compiled,
                "divisibility shape must take the compiled tier:\n{src}"
            );
            let mut fused = Instance::new_fused(&p);
            let mut refr = Instance::new(&p);
            for v in values {
                let want = refr
                    .run_per_op(&[Value::Int(v), Value::Int(0)], bound)
                    .map(|o| o.ret)
                    .unwrap();
                assert_eq!(want, ((v % c == 0) == (op == "==")) as i64, "reference");
                let got = comp.run_raw(&[v, 0], bound).map(|o| o.ret).unwrap();
                assert_eq!(got, want, "compiled diverged at g = {v} on\n{src}");
                let gotf = fused.run_raw(&[v, 0], bound).map(|o| o.ret).unwrap();
                assert_eq!(gotf, want, "fused diverged at g = {v} on\n{src}");
            }
        }
    }
}
