//! Verifier acceptance tests.
//!
//! Two halves:
//!
//! 1. **Golden diagnostics** — one test per diagnostic code, pinning the
//!    code, severity, line number, and message wording. These are the
//!    contract operators script against; change them deliberately.
//! 2. **Soundness** — a seeded generator produces random well-formed
//!    programs; for each one the static fuel bound must dominate the
//!    fuel the VM actually consumes, and the optimized program must be
//!    observationally identical to the original (same returns, same
//!    `out()` stream, same trap behavior) across persistent-static runs.

use ecode::{verify, Diagnostic, Instance, Program, Severity, Type, Value, VerifyLimits};

const INPUTS: [(&str, Type); 2] = [("size", Type::Int), ("port", Type::Int)];

/// All findings for `src` under default limits, whether or not the
/// program was admitted.
fn diags(src: &str) -> Vec<Diagnostic> {
    match verify(src, &INPUTS, &VerifyLimits::default()) {
        Ok(v) => v.report().warnings.clone(),
        Err(e) => e.diagnostics,
    }
}

fn find<'a>(diags: &'a [Diagnostic], code: &str) -> &'a Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected a {code} diagnostic, got {diags:#?}"))
}

#[test]
fn e0001_guaranteed_division_by_zero() {
    let ds = diags("return size / 0;");
    let d = find(&ds, "E0001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 1);
    assert_eq!(d.message, "division by zero: the divisor is always 0");
}

#[test]
fn e0001_guaranteed_modulo_by_zero_via_folded_divisor() {
    // The divisor is not literally zero, but interval analysis proves it.
    let ds = diags("int z = 2 - 2;\nreturn size % z;");
    let d = find(&ds, "E0001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 2);
    assert_eq!(d.message, "modulo by zero: the divisor is always 0");
}

#[test]
fn e0002_out_slot_always_out_of_range() {
    let ds = diags("out(99, 1.0);\nreturn 0;");
    let d = find(&ds, "E0002");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 1);
    assert_eq!(
        d.message,
        "out() slot is always out of range: 99..=99 vs allowed 0..=63"
    );
}

#[test]
fn e0003_fuel_bound_over_budget() {
    let err = verify(
        "int a = size + 1;\nreturn a + a + a;",
        &INPUTS,
        &VerifyLimits::with_max_fuel(3),
    )
    .unwrap_err();
    let d = find(&err.diagnostics, "E0003");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 0, "a fuel bound is a program-wide finding");
    assert!(
        d.message.contains("exceeds the host budget 3"),
        "got {:?}",
        d.message
    );
}

#[test]
fn e0004_compile_error_carries_line() {
    let ds = diags("int x = 1;\nint y = ;\nreturn x;");
    let d = find(&ds, "E0004");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 2);
    assert!(
        d.message.starts_with("does not compile:"),
        "{:?}",
        d.message
    );
}

#[test]
fn w0001_possible_division_by_zero() {
    let ds = diags("return size / port;");
    let d = find(&ds, "W0001");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert!(
        d.message.contains("division divisor may be zero"),
        "got {:?}",
        d.message
    );
}

#[test]
fn w0002_out_slot_may_be_out_of_range() {
    let ds = diags("out(size, 1.0);\nreturn 0;");
    let d = find(&ds, "W0002");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert!(
        d.message.contains("out() slot may fall outside 0..=63"),
        "got {:?}",
        d.message
    );
}

#[test]
fn w0003_unused_static() {
    let ds = diags("static int n = 0;\nreturn size;");
    let d = find(&ds, "W0003");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert_eq!(d.message, "static variable \"n\" is never read");
}

#[test]
fn w0004_unused_inputs_combined() {
    let ds = diags("return size;");
    let d = find(&ds, "W0004");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 0);
    assert_eq!(d.message, "unused inputs: port");
}

#[test]
fn w0004_suppressed_when_no_input_is_read() {
    // Constant filters legitimately ignore every field.
    let ds = diags("return 1;");
    assert!(
        !ds.iter().any(|d| d.code == "W0004"),
        "constant programs must not warn about inputs: {ds:#?}"
    );
}

#[test]
fn w0005_dead_branch() {
    let ds = diags("if (2 < 1) { return 1; }\nreturn 0;");
    let d = find(&ds, "W0005");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert_eq!(
        d.message,
        "condition is always false: the then branch never runs"
    );
}

#[test]
fn w0006_unreachable_after_return() {
    let ds = diags("return 0;\nreturn 1;");
    let d = find(&ds, "W0006");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 2);
    assert_eq!(d.message, "unreachable code: every path already returned");
}

#[test]
fn w0007_uninitialized_local_read() {
    let ds = diags("int x;\nreturn x + size;");
    let d = find(&ds, "W0007");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 2);
    assert!(
        d.message.contains("read before any assignment"),
        "got {:?}",
        d.message
    );
}

#[test]
fn w0008_inconsistent_returns() {
    let ds = diags("if (size > 0) { return 1; }\nreturn;");
    let d = find(&ds, "W0008");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 2);
    assert!(d.message.contains("host sees 0"), "got {:?}", d.message);
}

#[test]
fn w0008_fall_off_the_end() {
    let ds = diags("if (size > 0) { return 1; }");
    let d = find(&ds, "W0008");
    assert_eq!(d.line, 0);
    assert!(
        d.message.contains("fall off the end"),
        "got {:?}",
        d.message
    );
}

#[test]
fn rejection_renders_rustc_style_with_source_excerpt() {
    let err = verify("return size / 0;", &INPUTS, &VerifyLimits::default()).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("error[E0001]"), "got:\n{text}");
    assert!(text.contains("--> line 1"), "got:\n{text}");
    assert!(text.contains("return size / 0;"), "got:\n{text}");
}

#[test]
fn report_shows_optimization_shrinking_the_bound() {
    let v = verify(
        "if (1 < 2) { return size; }\nreturn port;",
        &INPUTS,
        &VerifyLimits::default(),
    )
    .unwrap();
    let r = v.report();
    assert!(
        r.fuel_bound < r.unoptimized_fuel_bound,
        "dead-branch elimination should shrink the bound: {r:#?}"
    );
    assert!(r.code_len < r.unoptimized_code_len, "{r:#?}");
}

// ---------------------------------------------------------------------
// Soundness: generated programs.
// ---------------------------------------------------------------------

/// Deterministic xorshift64* generator so the sweep reproduces exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Gen {
    rng: Rng,
    /// Every name visible so far (inputs, locals, statics).
    vars: Vec<String>,
    /// Names assignment may target (locals and statics, not inputs).
    assignable: Vec<String>,
    next_id: u32,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: Rng::new(seed),
            vars: vec!["size".into(), "port".into()],
            assignable: Vec::new(),
            next_id: 0,
        }
    }

    /// An int-typed expression. Divisors are restricted to shapes the
    /// checker cannot prove zero (nonzero literals, `abs(e) + 1`) so the
    /// generator never trips E0001 — runtime zero is still possible and
    /// must trap identically in original and optimized programs.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.below(3) == 0 {
            return match self.rng.below(3) {
                0 => format!("{}", self.rng.below(19) as i64 - 9),
                _ => {
                    let i = self.rng.below(self.vars.len() as u64) as usize;
                    self.vars[i].clone()
                }
            };
        }
        match self.rng.below(8) {
            0 => format!("({} + {})", self.expr(depth - 1), self.expr(depth - 1)),
            1 => format!("({} - {})", self.expr(depth - 1), self.expr(depth - 1)),
            2 => format!("({} * {})", self.expr(depth - 1), self.expr(depth - 1)),
            3 => format!("({} / {})", self.expr(depth - 1), self.divisor(depth - 1)),
            4 => format!("({} % {})", self.expr(depth - 1), self.divisor(depth - 1)),
            5 => format!("abs({})", self.expr(depth - 1)),
            6 => format!(
                "{}({}, {})",
                if self.rng.below(2) == 0 { "min" } else { "max" },
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            _ => format!("(-{})", self.expr(depth - 1)),
        }
    }

    fn divisor(&mut self, depth: u32) -> String {
        const SAFE: [&str; 6] = ["2", "3", "5", "7", "9", "-3"];
        if self.rng.below(2) == 0 {
            SAFE[self.rng.below(SAFE.len() as u64) as usize].to_owned()
        } else {
            format!("(abs({}) + 1)", self.expr(depth))
        }
    }

    fn cond(&mut self, depth: u32) -> String {
        const CMP: [&str; 6] = ["<", "<=", ">", ">=", "==", "!="];
        let base = format!(
            "({} {} {})",
            self.expr(depth),
            CMP[self.rng.below(CMP.len() as u64) as usize],
            self.expr(depth)
        );
        if depth > 0 && self.rng.below(4) == 0 {
            let rhs = self.cond(depth - 1);
            let op = if self.rng.below(2) == 0 { "&&" } else { "||" };
            format!("({base} {op} {rhs})")
        } else {
            base
        }
    }

    fn stmts(&mut self, n: u64, depth: u32, out: &mut String) {
        for _ in 0..n {
            match self.rng.below(6) {
                0 => {
                    let name = format!("v{}", self.next_id);
                    self.next_id += 1;
                    let init = self.expr(2);
                    out.push_str(&format!("int {name} = {init};\n"));
                    self.vars.push(name.clone());
                    self.assignable.push(name);
                }
                1 => {
                    let name = format!("s{}", self.next_id);
                    self.next_id += 1;
                    let lit = self.rng.below(19) as i64 - 9;
                    out.push_str(&format!("static int {name} = {lit};\n"));
                    self.vars.push(name.clone());
                    self.assignable.push(name);
                }
                2 if !self.assignable.is_empty() => {
                    let i = self.rng.below(self.assignable.len() as u64) as usize;
                    let name = self.assignable[i].clone();
                    let e = self.expr(2);
                    out.push_str(&format!("{name} = {e};\n"));
                }
                3 => {
                    let slot = self.rng.below(64);
                    let e = self.expr(2);
                    out.push_str(&format!("out({slot}, {e});\n"));
                }
                4 if depth > 0 => {
                    let c = self.cond(1);
                    out.push_str(&format!("if ({c}) {{\n"));
                    let n_then = self.rng.below(3) + 1;
                    self.stmts(n_then, depth - 1, out);
                    if self.rng.below(2) == 0 {
                        out.push_str("} else {\n");
                        let n_else = self.rng.below(3) + 1;
                        self.stmts(n_else, depth - 1, out);
                    }
                    out.push_str("}\n");
                }
                _ => {
                    let e = self.expr(2);
                    out.push_str(&format!("{e};\n"));
                }
            }
        }
    }

    fn program(mut self) -> String {
        let mut src = String::new();
        let n = self.rng.below(8) + 2;
        self.stmts(n, 2, &mut src);
        let ret = self.expr(2);
        src.push_str(&format!("return {ret};\n"));
        src
    }
}

/// The two soundness properties, for one program over one input history
/// (statics persist across the runs, so order matters):
///
/// * the static fuel bound dominates observed fuel, for both the
///   original and the optimized program;
/// * the optimized program is observationally identical to the original
///   (return value, `out()` stream, and trap behavior per run).
fn check_soundness(src: &str, history: &[(i64, i64)]) {
    let orig = Program::compile(src, &INPUTS)
        .unwrap_or_else(|e| panic!("generator emitted invalid program: {e}\n{src}"));
    let orig_bound = orig.static_fuel_bound();

    let limits = VerifyLimits {
        max_fuel: u64::MAX,
        max_out_slot: 63,
    };
    let verified = verify(src, &INPUTS, &limits)
        .unwrap_or_else(|e| panic!("generator tripped the verifier: {e}\n{src}"));
    let (opt, report) = verified.into_parts();
    assert_eq!(report.unoptimized_fuel_bound, orig_bound, "{src}");
    assert!(
        report.fuel_bound <= report.unoptimized_fuel_bound,
        "optimization must never raise the bound: {report:#?}\n{src}"
    );

    let mut orig_inst = Instance::new(&orig);
    let mut opt_inst = Instance::new(&opt);
    for &(a, b) in history {
        let inputs = [Value::Int(a), Value::Int(b)];
        let r_orig = orig_inst.run(&inputs, orig_bound);
        let r_opt = opt_inst.run(&inputs, report.fuel_bound);
        match (r_orig, r_opt) {
            (Ok(o), Ok(p)) => {
                assert!(o.fuel_used <= orig_bound, "bound unsound on\n{src}");
                assert!(p.fuel_used <= report.fuel_bound, "bound unsound on\n{src}");
                assert_eq!(o.ret, p.ret, "inputs ({a}, {b}) on\n{src}");
                assert_eq!(o.outputs, p.outputs, "inputs ({a}, {b}) on\n{src}");
            }
            (Err(eo), Err(ep)) => assert_eq!(eo, ep, "inputs ({a}, {b}) on\n{src}"),
            (o, p) => panic!("trap divergence on inputs ({a}, {b}): {o:?} vs {p:?}\n{src}"),
        }
    }

    // Block-fuel exactness: `run` meters fuel per basic block (precharging
    // blocks that fit the remaining budget) while `run_per_op` is the
    // reference per-op path. Over the same history — at the full bound and
    // at starved budgets that force mid-program aborts — both must report
    // identical fuel, results, and trap behavior.
    for budget in [orig_bound, orig_bound / 2 + 1, 3, 1] {
        let mut blk_inst = Instance::new(&orig);
        let mut ref_inst = Instance::new(&orig);
        for &(a, b) in history {
            let inputs = [Value::Int(a), Value::Int(b)];
            let r_blk = blk_inst.run(&inputs, budget);
            let r_ref = ref_inst.run_per_op(&inputs, budget);
            match (r_blk, r_ref) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(
                        x.fuel_used, y.fuel_used,
                        "block metering must be fuel-exact (budget {budget}, inputs ({a}, {b})) on\n{src}"
                    );
                    assert_eq!(x.ret, y.ret, "budget {budget} on\n{src}");
                    assert_eq!(x.outputs, y.outputs, "budget {budget} on\n{src}");
                }
                (Err(x), Err(y)) => assert_eq!(x, y, "budget {budget} on\n{src}"),
                (x, y) => panic!(
                    "metering divergence (budget {budget}, inputs ({a}, {b})): {x:?} vs {y:?}\n{src}"
                ),
            }
        }
    }
}

#[test]
fn generated_programs_bound_sound_and_optimizer_equivalent() {
    let mut sweep = Rng::new(0x5157_0f00d);
    for seed in 0..300u64 {
        let src = Gen::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 1).program();
        let mut history = vec![
            (0, 0),
            (1, -1),
            (i64::MAX, i64::MIN),
            (-1, i64::MAX),
            (4096, 7),
        ];
        for _ in 0..3 {
            history.push((sweep.next() as i64, sweep.next() as i64));
        }
        check_soundness(&src, &history);
    }
}

#[cfg(test)]
mod props {
    #[allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fuel-bound soundness and optimizer equivalence over
        /// proptest-chosen seeds and inputs (the deterministic sweep
        /// above covers fixed seeds; this explores further).
        #[test]
        fn prop_bound_sound_and_optimizer_equivalent(
            seed in any::<u64>(),
            a in any::<i64>(),
            b in any::<i64>(),
            c in any::<i64>(),
            d in any::<i64>(),
        ) {
            let src = Gen::new(seed).program();
            check_soundness(&src, &[(a, b), (c, d), (b, a), (0, 0)]);
        }

        /// The verifier is total: arbitrary source never panics it.
        #[test]
        fn prop_verify_total(src in ".{0,200}") {
            let _ = verify(&src, &INPUTS, &VerifyLimits::default());
        }
    }
}
