//! Verifier acceptance tests.
//!
//! Two halves:
//!
//! 1. **Golden diagnostics** — one test per diagnostic code, pinning the
//!    code, severity, line number, and message wording. These are the
//!    contract operators script against; change them deliberately.
//! 2. **Soundness** — a seeded generator produces random well-formed
//!    programs; for each one the static fuel bound must dominate the
//!    fuel the VM actually consumes, and the optimized program must be
//!    observationally identical to the original (same returns, same
//!    `out()` stream, same trap behavior) across persistent-static runs.

use ecode::{
    verify, Diagnostic, ExecTier, Instance, MergeClass, MinMaxOp, Program, Severity, Type, Value,
    VerifyLimits,
};

const INPUTS: [(&str, Type); 2] = [("size", Type::Int), ("port", Type::Int)];

/// All findings for `src` under default limits, whether or not the
/// program was admitted.
fn diags(src: &str) -> Vec<Diagnostic> {
    match verify(src, &INPUTS, &VerifyLimits::default()) {
        Ok(v) => v.report().warnings.clone(),
        Err(e) => e.diagnostics,
    }
}

fn find<'a>(diags: &'a [Diagnostic], code: &str) -> &'a Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected a {code} diagnostic, got {diags:#?}"))
}

#[test]
fn e0001_guaranteed_division_by_zero() {
    let ds = diags("return size / 0;");
    let d = find(&ds, "E0001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 1);
    assert_eq!(d.message, "division by zero: the divisor is always 0");
}

#[test]
fn e0001_guaranteed_modulo_by_zero_via_folded_divisor() {
    // The divisor is not literally zero, but interval analysis proves it.
    let ds = diags("int z = 2 - 2;\nreturn size % z;");
    let d = find(&ds, "E0001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 2);
    assert_eq!(d.message, "modulo by zero: the divisor is always 0");
}

#[test]
fn e0002_out_slot_always_out_of_range() {
    let ds = diags("out(99, 1.0);\nreturn 0;");
    let d = find(&ds, "E0002");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 1);
    assert_eq!(
        d.message,
        "out() slot is always out of range: 99..=99 vs allowed 0..=63"
    );
}

#[test]
fn e0003_fuel_bound_over_budget() {
    let err = verify(
        "int a = size + 1;\nreturn a + a + a;",
        &INPUTS,
        &VerifyLimits::with_max_fuel(3),
    )
    .unwrap_err();
    let d = find(&err.diagnostics, "E0003");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 0, "a fuel bound is a program-wide finding");
    assert!(
        d.message.contains("exceeds the host budget 3"),
        "got {:?}",
        d.message
    );
}

#[test]
fn e0004_compile_error_carries_line() {
    let ds = diags("int x = 1;\nint y = ;\nreturn x;");
    let d = find(&ds, "E0004");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 2);
    assert!(
        d.message.starts_with("does not compile:"),
        "{:?}",
        d.message
    );
}

#[test]
fn w0001_possible_division_by_zero() {
    let ds = diags("return size / port;");
    let d = find(&ds, "W0001");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert!(
        d.message.contains("division divisor may be zero"),
        "got {:?}",
        d.message
    );
}

#[test]
fn w0002_out_slot_may_be_out_of_range() {
    let ds = diags("out(size, 1.0);\nreturn 0;");
    let d = find(&ds, "W0002");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert!(
        d.message.contains("out() slot may fall outside 0..=63"),
        "got {:?}",
        d.message
    );
}

#[test]
fn w0003_unused_static() {
    let ds = diags("static int n = 0;\nreturn size;");
    let d = find(&ds, "W0003");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert_eq!(d.message, "static variable \"n\" is never read");
}

#[test]
fn w0004_unused_inputs_combined() {
    let ds = diags("return size;");
    let d = find(&ds, "W0004");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 0);
    assert_eq!(d.message, "unused inputs: port");
}

#[test]
fn w0004_suppressed_when_no_input_is_read() {
    // Constant filters legitimately ignore every field.
    let ds = diags("return 1;");
    assert!(
        !ds.iter().any(|d| d.code == "W0004"),
        "constant programs must not warn about inputs: {ds:#?}"
    );
}

#[test]
fn w0005_dead_branch() {
    let ds = diags("if (2 < 1) { return 1; }\nreturn 0;");
    let d = find(&ds, "W0005");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 1);
    assert_eq!(
        d.message,
        "condition is always false: the then branch never runs"
    );
}

#[test]
fn w0006_unreachable_after_return() {
    let ds = diags("return 0;\nreturn 1;");
    let d = find(&ds, "W0006");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 2);
    assert_eq!(d.message, "unreachable code: every path already returned");
}

#[test]
fn w0007_uninitialized_local_read() {
    let ds = diags("int x;\nreturn x + size;");
    let d = find(&ds, "W0007");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 2);
    assert!(
        d.message.contains("read before any assignment"),
        "got {:?}",
        d.message
    );
}

#[test]
fn w0008_inconsistent_returns() {
    let ds = diags("if (size > 0) { return 1; }\nreturn;");
    let d = find(&ds, "W0008");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 2);
    assert!(d.message.contains("host sees 0"), "got {:?}", d.message);
}

#[test]
fn w0008_fall_off_the_end() {
    let ds = diags("if (size > 0) { return 1; }");
    let d = find(&ds, "W0008");
    assert_eq!(d.line, 0);
    assert!(
        d.message.contains("fall off the end"),
        "got {:?}",
        d.message
    );
}

#[test]
fn rejection_renders_rustc_style_with_source_excerpt() {
    let err = verify("return size / 0;", &INPUTS, &VerifyLimits::default()).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("error[E0001]"), "got:\n{text}");
    assert!(text.contains("--> line 1"), "got:\n{text}");
    assert!(text.contains("return size / 0;"), "got:\n{text}");
}

#[test]
fn report_shows_optimization_shrinking_the_bound() {
    let v = verify(
        "if (1 < 2) { return size; }\nreturn port;",
        &INPUTS,
        &VerifyLimits::default(),
    )
    .unwrap();
    let r = v.report();
    assert!(
        r.fuel_bound < r.unoptimized_fuel_bound,
        "dead-branch elimination should shrink the bound: {r:#?}"
    );
    assert!(r.code_len < r.unoptimized_code_len, "{r:#?}");
}

// ---------------------------------------------------------------------
// Merge analysis: golden diagnostics and lattice classification.
// ---------------------------------------------------------------------

/// The merge plan for `src` under limits that admit everything else.
fn merge_plan(src: &str) -> ecode::MergePlan {
    let limits = VerifyLimits {
        max_fuel: u64::MAX,
        ..VerifyLimits::default()
    };
    verify(src, &INPUTS, &limits)
        .unwrap_or_else(|e| panic!("program should verify: {e}\n{src}"))
        .report()
        .merge_plan
        .clone()
}

fn class_of<'a>(plan: &'a ecode::MergePlan, name: &str) -> &'a MergeClass {
    &plan
        .slots
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no slot {name} in {plan:#?}"))
        .class
}

#[test]
fn merge_plan_classifies_the_lattice() {
    let plan = merge_plan(
        "static int hits = 0;\n\
         static int lo = 1000;\n\
         static int hi = 0;\n\
         static int flag = 0;\n\
         static int last = 0;\n\
         static int weird = 0;\n\
         hits = hits + 1;\n\
         lo = min(lo, size);\n\
         hi = max(hi, size - port);\n\
         if (size > 100) { flag = 7; }\n\
         last = size;\n\
         weird = weird * 2;\n\
         out(0, hits);\n\
         return lo + hi + last + weird;",
    );
    assert_eq!(class_of(&plan, "hits"), &MergeClass::Counter);
    assert_eq!(class_of(&plan, "lo"), &MergeClass::MinMax(MinMaxOp::Min));
    assert_eq!(class_of(&plan, "hi"), &MergeClass::MinMax(MinMaxOp::Max));
    assert_eq!(
        class_of(&plan, "flag"),
        &MergeClass::GatedWrite { value_bits: 7 }
    );
    assert_eq!(class_of(&plan, "last"), &MergeClass::LastWriteWins);
    assert!(
        matches!(class_of(&plan, "weird"), MergeClass::Opaque { .. }),
        "{plan:#?}"
    );
    assert!(!plan.fully_mergeable());
    let blocked: Vec<&str> = plan.unsafe_slots().map(|s| s.name.as_str()).collect();
    assert_eq!(blocked, ["last", "weird"]);
}

#[test]
fn merge_plan_read_only_and_unread_statics() {
    let plan = merge_plan("static int cfg = 9;\nreturn size + cfg;");
    assert_eq!(class_of(&plan, "cfg"), &MergeClass::ReadOnly);
    assert!(plan.fully_mergeable());
}

#[test]
fn float_accumulation_is_opaque_but_gated_doubles_merge() {
    // IEEE addition is not associative: the fold would drift per shard
    // count, so a float accumulator must force single-instance fallback.
    let plan = merge_plan("static double acc = 0.0;\nacc = acc + size;\nout(0, acc);\nreturn 0;");
    let MergeClass::Opaque { reason, .. } = class_of(&plan, "acc") else {
        panic!("float accumulator must be opaque: {plan:#?}");
    };
    assert!(reason.contains("floating-point"), "{reason}");

    // A gated write of a double constant is compared as raw bits — exact.
    let plan =
        merge_plan("static double seen = 0.0;\nif (size > 0) { seen = 2.5; }\nreturn seen > 1.0;");
    assert_eq!(
        class_of(&plan, "seen"),
        &MergeClass::GatedWrite {
            value_bits: 2.5f64.to_bits() as i64
        }
    );
}

/// The early-return shape that breaks naive "mark the branch body"
/// control-dependence schemes: the counter bump sits *after* the
/// static-guarded `if`, but only runs when the guard let execution fall
/// through — it is control-dependent and must not classify as Counter.
#[test]
fn store_after_a_static_guarded_early_return_is_opaque() {
    let plan = merge_plan(
        "static int g = 0;\n\
         static int count = 0;\n\
         if (g > 0) { return 1; }\n\
         count = count + 1;\n\
         return 0;",
    );
    assert!(
        matches!(class_of(&plan, "count"), MergeClass::Opaque { .. }),
        "store is control-dependent on g: {plan:#?}"
    );
}

/// Converse precision check: once a static-guarded branch rejoins,
/// later independent branches are *not* poisoned by it.
#[test]
fn rejoined_control_flow_does_not_poison_later_updates() {
    let plan = merge_plan(
        "static int g = 0;\n\
         static int c = 0;\n\
         if (g > 0) { out(0, 1); }\n\
         if (size > 0) { c = c + 1; }\n\
         return c + g;",
    );
    assert_eq!(class_of(&plan, "c"), &MergeClass::Counter, "{plan:#?}");
}

/// The join-laundering shape: both arms of a static-conditioned branch
/// assign a local an input-only value. The two cells abstract equal
/// (untainted `Mixed`), but the runtime value depends on which way the
/// static branch went — the delta fed to the counter is path-dependent,
/// so the slot must not classify as shard-safe.
#[test]
fn equal_looking_join_of_path_dependent_values_is_opaque() {
    let plan = merge_plan(
        "static int g = 0;\n\
         static int acc = 0;\n\
         int x = 0;\n\
         if (g > 0) { x = size; } else { x = port; }\n\
         acc = acc + x;\n\
         g = g + 1;\n\
         return acc;",
    );
    let MergeClass::Opaque { reason, .. } = class_of(&plan, "acc") else {
        panic!("path-dependent delta must be opaque: {plan:#?}");
    };
    assert!(reason.contains("depends on static state"), "{reason}");
    // The bump after the rejoin is path-independent and stays a counter.
    assert_eq!(class_of(&plan, "g"), &MergeClass::Counter, "{plan:#?}");

    // Converse precision: the same shape under an input-only condition
    // picks the delta from the event alone — still a mergeable counter.
    let plan = merge_plan(
        "static int acc = 0;\n\
         int x = 0;\n\
         if (size > 0) { x = size; } else { x = port; }\n\
         acc = acc + x;\n\
         return acc;",
    );
    assert_eq!(class_of(&plan, "acc"), &MergeClass::Counter, "{plan:#?}");
}

#[test]
fn m0001_opaque_slot_golden() {
    // Hand-written Opaque program: the increment is gated on the
    // counter's own value, so shards diverge on when the gate closes.
    let src = "static int n = 0;\nif (n < 100) { n = n + size; }\nreturn n;";
    // Without `require_mergeable` the program is admitted (plan Opaque).
    let v = verify(src, &INPUTS, &VerifyLimits::default()).expect("admissible single-instance");
    assert!(!v.report().merge_plan.fully_mergeable());
    // With it, rejection is a golden M0001.
    let err = verify(src, &INPUTS, &VerifyLimits::default().require_mergeable()).unwrap_err();
    let d = find(&err.diagnostics, "M0001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 0, "merge findings are program-wide");
    assert_eq!(
        d.message,
        "static variable \"n\" is not shard-mergeable: \
         store at pc 7 is control-dependent on static state"
    );
}

#[test]
fn m0001_last_write_wins_golden() {
    let src = "static int last = 0;\nlast = size;\nreturn last;";
    let err = verify(src, &INPUTS, &VerifyLimits::default().require_mergeable()).unwrap_err();
    let d = find(&err.diagnostics, "M0001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.line, 0);
    assert_eq!(
        d.message,
        "static variable \"last\" is not shard-mergeable: last write wins \
         across shards and no tiebreak key is available"
    );
}

#[test]
fn w0009_mergeable_but_unused_golden() {
    let ds = diags("static int n = 0;\nn = n + 1;\nreturn size;");
    let d = find(&ds, "W0009");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 0);
    assert_eq!(
        d.message,
        "static variable \"n\" is mergeable (counter) but its value never \
         escapes — it feeds no output, return, branch, or other static"
    );
    // Reading the counter anywhere silences the lint.
    let ds = diags("static int n = 0;\nn = n + 1;\nreturn n;");
    assert!(!ds.iter().any(|d| d.code == "W0009"), "{ds:#?}");
}

// ---------------------------------------------------------------------
// Soundness: generated programs.
// ---------------------------------------------------------------------

/// Deterministic xorshift64* generator so the sweep reproduces exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Gen {
    rng: Rng,
    /// Every name visible so far (inputs, locals, statics).
    vars: Vec<String>,
    /// Names assignment may target (locals and statics, not inputs).
    assignable: Vec<String>,
    next_id: u32,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: Rng::new(seed),
            vars: vec!["size".into(), "port".into()],
            assignable: Vec::new(),
            next_id: 0,
        }
    }

    /// An int-typed expression. Divisors are restricted to shapes the
    /// checker cannot prove zero (nonzero literals, `abs(e) + 1`) so the
    /// generator never trips E0001 — runtime zero is still possible and
    /// must trap identically in original and optimized programs.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.below(3) == 0 {
            return match self.rng.below(3) {
                0 => format!("{}", self.rng.below(19) as i64 - 9),
                _ => {
                    let i = self.rng.below(self.vars.len() as u64) as usize;
                    self.vars[i].clone()
                }
            };
        }
        match self.rng.below(8) {
            0 => format!("({} + {})", self.expr(depth - 1), self.expr(depth - 1)),
            1 => format!("({} - {})", self.expr(depth - 1), self.expr(depth - 1)),
            2 => format!("({} * {})", self.expr(depth - 1), self.expr(depth - 1)),
            3 => format!("({} / {})", self.expr(depth - 1), self.divisor(depth - 1)),
            4 => format!("({} % {})", self.expr(depth - 1), self.divisor(depth - 1)),
            5 => format!("abs({})", self.expr(depth - 1)),
            6 => format!(
                "{}({}, {})",
                if self.rng.below(2) == 0 { "min" } else { "max" },
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            _ => format!("(-{})", self.expr(depth - 1)),
        }
    }

    fn divisor(&mut self, depth: u32) -> String {
        const SAFE: [&str; 6] = ["2", "3", "5", "7", "9", "-3"];
        if self.rng.below(2) == 0 {
            SAFE[self.rng.below(SAFE.len() as u64) as usize].to_owned()
        } else {
            format!("(abs({}) + 1)", self.expr(depth))
        }
    }

    fn cond(&mut self, depth: u32) -> String {
        const CMP: [&str; 6] = ["<", "<=", ">", ">=", "==", "!="];
        let base = format!(
            "({} {} {})",
            self.expr(depth),
            CMP[self.rng.below(CMP.len() as u64) as usize],
            self.expr(depth)
        );
        if depth > 0 && self.rng.below(4) == 0 {
            let rhs = self.cond(depth - 1);
            let op = if self.rng.below(2) == 0 { "&&" } else { "||" };
            format!("({base} {op} {rhs})")
        } else {
            base
        }
    }

    fn stmts(&mut self, n: u64, depth: u32, out: &mut String) {
        for _ in 0..n {
            match self.rng.below(6) {
                0 => {
                    let name = format!("v{}", self.next_id);
                    self.next_id += 1;
                    let init = self.expr(2);
                    out.push_str(&format!("int {name} = {init};\n"));
                    self.vars.push(name.clone());
                    self.assignable.push(name);
                }
                1 => {
                    let name = format!("s{}", self.next_id);
                    self.next_id += 1;
                    let lit = self.rng.below(19) as i64 - 9;
                    out.push_str(&format!("static int {name} = {lit};\n"));
                    self.vars.push(name.clone());
                    self.assignable.push(name);
                }
                2 if !self.assignable.is_empty() => {
                    let i = self.rng.below(self.assignable.len() as u64) as usize;
                    let name = self.assignable[i].clone();
                    let e = self.expr(2);
                    out.push_str(&format!("{name} = {e};\n"));
                }
                3 => {
                    let slot = self.rng.below(64);
                    let e = self.expr(2);
                    out.push_str(&format!("out({slot}, {e});\n"));
                }
                4 if depth > 0 => {
                    let c = self.cond(1);
                    out.push_str(&format!("if ({c}) {{\n"));
                    let n_then = self.rng.below(3) + 1;
                    self.stmts(n_then, depth - 1, out);
                    if self.rng.below(2) == 0 {
                        out.push_str("} else {\n");
                        let n_else = self.rng.below(3) + 1;
                        self.stmts(n_else, depth - 1, out);
                    }
                    out.push_str("}\n");
                }
                _ => {
                    let e = self.expr(2);
                    out.push_str(&format!("{e};\n"));
                }
            }
        }
    }

    fn program(mut self) -> String {
        let mut src = String::new();
        let n = self.rng.below(8) + 2;
        self.stmts(n, 2, &mut src);
        let ret = self.expr(2);
        src.push_str(&format!("return {ret};\n"));
        src
    }
}

/// Differential soundness for one program over one input history
/// (statics persist across the runs, so order matters):
///
/// * the static fuel bound dominates observed fuel, for both the
///   original and the optimized program;
/// * the optimized program is observationally identical to the original
///   (return value, `out()` stream, and trap behavior per run);
/// * all three execution tiers agree on every observable, at the full
///   budget and at starved budgets that force mid-program aborts.
///
/// Returns whether the (unoptimized) program landed on the compiled
/// tier, so sweeps can assert a coverage floor — a silent
/// fall-back-to-fused-everywhere regression would otherwise keep this
/// green without testing the jit.
fn check_soundness(src: &str, history: &[(i64, i64)]) -> bool {
    let orig = Program::compile(src, &INPUTS)
        .unwrap_or_else(|e| panic!("generator emitted invalid program: {e}\n{src}"));
    let orig_bound = orig.static_fuel_bound();

    let limits = VerifyLimits {
        max_fuel: u64::MAX,
        ..VerifyLimits::default()
    };
    let verified = verify(src, &INPUTS, &limits)
        .unwrap_or_else(|e| panic!("generator tripped the verifier: {e}\n{src}"));
    let (opt, report) = verified.into_parts();
    assert_eq!(report.unoptimized_fuel_bound, orig_bound, "{src}");
    assert!(
        report.fuel_bound <= report.unoptimized_fuel_bound,
        "optimization must never raise the bound: {report:#?}\n{src}"
    );

    let mut orig_inst = Instance::new(&orig);
    let mut opt_inst = Instance::new(&opt);
    for &(a, b) in history {
        let inputs = [Value::Int(a), Value::Int(b)];
        let r_orig = orig_inst.run(&inputs, orig_bound);
        let r_opt = opt_inst.run(&inputs, report.fuel_bound);
        match (r_orig, r_opt) {
            (Ok(o), Ok(p)) => {
                assert!(o.fuel_used <= orig_bound, "bound unsound on\n{src}");
                assert!(p.fuel_used <= report.fuel_bound, "bound unsound on\n{src}");
                assert_eq!(o.ret, p.ret, "inputs ({a}, {b}) on\n{src}");
                assert_eq!(o.outputs, p.outputs, "inputs ({a}, {b}) on\n{src}");
            }
            (Err(eo), Err(ep)) => assert_eq!(eo, ep, "inputs ({a}, {b}) on\n{src}"),
            (o, p) => panic!("trap divergence on inputs ({a}, {b}): {o:?} vs {p:?}\n{src}"),
        }
    }

    // Tier-matrix exactness: all three execution tiers — the checked
    // per-op reference, the fused VM with block-granular precharge, and
    // the closure-compiled tier (when selected) — must report identical
    // results, outputs, statics, traps, and fuel. Over the same history,
    // at the full bound and at starved budgets that force mid-program
    // aborts (which also drive the compiled tier's per-op fallback).
    let tier = Instance::new(&orig).tier();
    for budget in [orig_bound, orig_bound / 2 + 1, 3, 1] {
        let mut top_inst = Instance::new(&orig); // compiled when eligible
        let mut fus_inst = Instance::new_fused(&orig);
        let mut ref_inst = Instance::new(&orig);
        assert_eq!(
            top_inst.tier(),
            tier,
            "tier selection must be deterministic"
        );
        assert_eq!(fus_inst.tier(), ExecTier::Fused);
        for &(a, b) in history {
            let inputs = [Value::Int(a), Value::Int(b)];
            let r_top = run_sig(top_inst.run(&inputs, budget));
            let r_fus = run_sig(fus_inst.run(&inputs, budget));
            let r_ref = run_sig(ref_inst.run_per_op(&inputs, budget));
            assert_eq!(
                r_top, r_ref,
                "{tier:?} tier diverged from per-op reference (budget {budget}, inputs ({a}, {b})) on\n{src}"
            );
            assert_eq!(
                r_fus, r_ref,
                "fused tier diverged from per-op reference (budget {budget}, inputs ({a}, {b})) on\n{src}"
            );
            if let Ok((_, fuel, _)) = &r_ref {
                assert!(*fuel <= budget, "metering overdraft on\n{src}");
            }
            assert_eq!(top_inst.raw_globals(), ref_inst.raw_globals(), "{src}");
            assert_eq!(fus_inst.raw_globals(), ref_inst.raw_globals(), "{src}");
        }
    }
    tier == ExecTier::Compiled
}

/// Collapses a run result to its observable signature: ret, fuel used,
/// and the published outputs (trap results compare as the error).
#[allow(clippy::type_complexity)]
fn run_sig(
    r: Result<ecode::RunOutcome<'_>, ecode::EcodeError>,
) -> Result<(i64, u64, Vec<(i64, f64)>), ecode::EcodeError> {
    r.map(|o| (o.ret, o.fuel_used, o.outputs.to_vec()))
}

#[test]
fn generated_programs_bound_sound_and_optimizer_equivalent() {
    let mut sweep = Rng::new(0x5157_0f00d);
    let mut compiled = 0usize;
    for seed in 0..300u64 {
        let src = Gen::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 1).program();
        let mut history = vec![
            (0, 0),
            (1, -1),
            (i64::MAX, i64::MIN),
            (-1, i64::MAX),
            (4096, 7),
        ];
        for _ in 0..3 {
            history.push((sweep.next() as i64, sweep.next() as i64));
        }
        if check_soundness(&src, &history) {
            compiled += 1;
        }
    }
    // Coverage floor: the sweep is only a jit test if generated programs
    // actually take the compiled tier. A drop below this floor means
    // tier selection silently regressed to fused-everywhere.
    assert!(
        compiled >= 250,
        "only {compiled}/300 generated programs compiled; jit coverage regressed"
    );
}

// ---------------------------------------------------------------------
// Shard-differential soundness: any program the analysis calls fully
// mergeable must produce bit-identical statics under sequential vs.
// K-shard evaluation, for arbitrary event partitions. A mismatch here
// is a soundness bug in the classifier, not in the test.
// ---------------------------------------------------------------------

/// Runs the differential check. Returns whether the program was fully
/// mergeable with at least one updatable slot (coverage accounting).
fn check_shard_exactness(src: &str, history: &[(i64, i64)], rng: &mut Rng) -> bool {
    let limits = VerifyLimits {
        max_fuel: u64::MAX,
        ..VerifyLimits::default()
    };
    let verified = verify(src, &INPUTS, &limits)
        .unwrap_or_else(|e| panic!("generator tripped the verifier: {e}\n{src}"));
    let (program, report) = verified.into_parts();
    let plan = &report.merge_plan;
    if !plan.fully_mergeable() {
        return false;
    }
    let mut seq = Instance::new(&program);
    let mut seq_fused = Instance::new_fused(&program);
    for &(a, b) in history {
        // Generated programs never trap (divisors are provably nonzero),
        // so the trap-free precondition of the exactness claim holds.
        seq.run(&[Value::Int(a), Value::Int(b)], report.fuel_bound)
            .unwrap_or_else(|e| panic!("generated program trapped: {e}\n{src}"));
        seq_fused
            .run(&[Value::Int(a), Value::Int(b)], report.fuel_bound)
            .unwrap();
    }
    // The sharded fold below is compared against the tier `Instance::new`
    // selected; the fused VM must agree with it bit-for-bit first, so
    // shard exactness holds regardless of which tier replicas run on.
    assert_eq!(
        seq.raw_globals(),
        seq_fused.raw_globals(),
        "tier divergence in sequential statics on\n{src}"
    );
    for k in [2usize, 3, 8] {
        let mut shards: Vec<Instance> = (0..k).map(|_| Instance::new(&program)).collect();
        for &(a, b) in history {
            // Arbitrary partition: shard-safety may not depend on *how*
            // events are split, only that each runs exactly once.
            let s = rng.below(k as u64) as usize;
            shards[s]
                .run(&[Value::Int(a), Value::Int(b)], report.fuel_bound)
                .unwrap();
        }
        // Fold in a rotated order too, so merge-order independence is
        // exercised along with the partition.
        let start = rng.below(k as u64) as usize;
        let mut merged = Instance::new(&program);
        for i in 0..k {
            merged
                .merge_from(&shards[(start + i) % k], plan)
                .unwrap_or_else(|e| panic!("mergeable plan refused to fold: {e}\n{src}"));
        }
        assert_eq!(
            merged.raw_globals(),
            seq.raw_globals(),
            "K={k} shard fold diverged from sequential on\n{src}\nplan: {plan:#?}"
        );
    }
    plan.slots.iter().any(|s| s.class != MergeClass::ReadOnly)
}

/// Mergeable-biased generator: mostly counter/min-max/gated update
/// patterns the classifier should accept, salted with last-write-wins,
/// static-copy, and static-guarded updates it must reject. Plain [`Gen`]
/// programs rarely produce interesting update patterns; this one exists
/// so the differential sweep actually exercises every lattice class.
///
/// Each static is assigned one update *role* up front and every site on
/// it stays role-consistent — mixing kinds on one slot (counter here,
/// min-fold there) is a family mismatch the classifier rightly calls
/// Opaque, and uniform mixing would leave almost no mergeable programs.
#[derive(Clone, Copy)]
enum Role {
    Counter,
    MinFold,
    MaxFold,
    Gated(i64),
    Lww,
    Poison,
}

struct MergeGen {
    rng: Rng,
    statics: Vec<(String, Role)>,
    next_local: u32,
}

impl MergeGen {
    fn new(seed: u64) -> MergeGen {
        MergeGen {
            rng: Rng::new(seed),
            statics: Vec::new(),
            next_local: 0,
        }
    }

    /// Input-only int expression: constants and inputs, never statics.
    fn input_expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.below(3) == 0 {
            return match self.rng.below(4) {
                0 => format!("{}", self.rng.below(41) as i64 - 20),
                1 => "size".to_owned(),
                2 => "port".to_owned(),
                _ => format!("{}", self.rng.below(1_000)),
            };
        }
        match self.rng.below(5) {
            0 => format!(
                "({} + {})",
                self.input_expr(depth - 1),
                self.input_expr(depth - 1)
            ),
            1 => format!(
                "({} - {})",
                self.input_expr(depth - 1),
                self.input_expr(depth - 1)
            ),
            2 => format!(
                "min({}, {})",
                self.input_expr(depth - 1),
                self.input_expr(depth - 1)
            ),
            3 => format!(
                "max({}, {})",
                self.input_expr(depth - 1),
                self.input_expr(depth - 1)
            ),
            _ => format!("abs({})", self.input_expr(depth - 1)),
        }
    }

    fn input_cond(&mut self) -> String {
        const CMP: [&str; 6] = ["<", "<=", ">", ">=", "==", "!="];
        format!(
            "({} {} {})",
            self.input_expr(1),
            CMP[self.rng.below(CMP.len() as u64) as usize],
            self.input_expr(1)
        )
    }

    fn program(mut self) -> String {
        let mut src = String::new();
        let n_statics = 1 + self.rng.below(4);
        for i in 0..n_statics {
            // ~1/4 of slots draw a non-shard-safe role, so roughly half
            // of the generated programs exercise the fallback path.
            let role = match self.rng.below(12) {
                0..=3 => Role::Counter,
                4 | 5 => Role::MinFold,
                6 | 7 => Role::MaxFold,
                8 => Role::Gated(self.rng.below(9) as i64 + 1),
                9 | 10 => Role::Lww,
                _ => Role::Poison,
            };
            let lit = self.rng.below(21) as i64 - 10;
            src.push_str(&format!("static int m{i} = {lit};\n"));
            self.statics.push((format!("m{i}"), role));
        }
        let n = 3 + self.rng.below(6);
        for _ in 0..n {
            let i = self.rng.below(self.statics.len() as u64) as usize;
            let (s, role) = self.statics[i].clone();
            match role {
                Role::Counter => {
                    let e = self.input_expr(2);
                    match self.rng.below(4) {
                        0 => src.push_str(&format!("{s} = {s} - {e};\n")),
                        1 => {
                            // Bump under an input-only gate — still a
                            // counter (the gate reads no static state).
                            let c = self.input_cond();
                            src.push_str(&format!("if ({c}) {{ {s} = {s} + {e}; }}\n"));
                        }
                        _ => src.push_str(&format!("{s} = {s} + {e};\n")),
                    }
                }
                Role::MinFold => {
                    let e = self.input_expr(2);
                    src.push_str(&format!("{s} = min({s}, {e});\n"));
                }
                Role::MaxFold => {
                    let e = self.input_expr(2);
                    src.push_str(&format!("{s} = max({s}, {e});\n"));
                }
                Role::Gated(k) => {
                    // Every site writes the role's constant; differing
                    // constants would honestly degrade to LastWriteWins.
                    let c = self.input_cond();
                    src.push_str(&format!("if ({c}) {{ {s} = {k}; }}\n"));
                }
                Role::Lww => {
                    // Input-dependent overwrite: not shard-safe.
                    let e = self.input_expr(2);
                    src.push_str(&format!("{s} = {e};\n"));
                }
                Role::Poison => {
                    let j = self.rng.below(self.statics.len() as u64) as usize;
                    let t = self.statics[j].0.clone();
                    match self.rng.below(3) {
                        0 => {
                            // Static copy: must classify Opaque.
                            src.push_str(&format!("{s} = {t} + 1;\n"));
                        }
                        1 => {
                            // Control dependence on static state: Opaque.
                            src.push_str(&format!("if ({t} > 0) {{ {s} = {s} + 1; }}\n"));
                        }
                        _ => {
                            // Join laundering: both arms assign the local
                            // input-only values that abstract equal, but
                            // the value picked depends on the static
                            // branch — the later bump is path-dependent
                            // and the classifier must call it Opaque.
                            let k = self.next_local;
                            self.next_local += 1;
                            let e1 = self.input_expr(1);
                            let e2 = self.input_expr(1);
                            src.push_str(&format!(
                                "int p{k} = 0;\n\
                                 if ({t} > 0) {{ p{k} = {e1}; }} else {{ p{k} = {e2}; }}\n\
                                 {s} = {s} + p{k};\n"
                            ));
                        }
                    }
                }
            }
            if self.rng.below(4) == 0 {
                let slot = self.rng.below(64);
                let e = self.input_expr(2);
                src.push_str(&format!("out({slot}, {e});\n"));
            }
        }
        // Read one static so at least one slot escapes.
        let i = self.rng.below(self.statics.len() as u64) as usize;
        src.push_str(&format!("return {};\n", self.statics[i].0));
        src
    }
}

#[test]
fn generated_mergeable_programs_shard_exactly() {
    let mut rng = Rng::new(0xd1f7_5eed);
    let (mut mergeable, mut fallback) = (0u32, 0u32);
    for seed in 0..300u64 {
        let per = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 1;
        // Both generators share the sweep's seed schedule: MergeGen for
        // lattice coverage, Gen for adversarial shapes it doesn't emit.
        for src in [MergeGen::new(per).program(), Gen::new(per).program()] {
            let mut history = vec![(0, 0), (1, -1), (i64::MAX, i64::MIN), (4096, 7)];
            for _ in 0..8 {
                history.push((rng.next() as i64, rng.next() as i64 % 10_000));
            }
            if check_shard_exactness(&src, &history, &mut rng) {
                mergeable += 1;
            } else {
                fallback += 1;
            }
        }
    }
    // Coverage floors: both the sharded path and the fallback path must
    // be exercised substantially, or the sweep is vacuous.
    assert!(mergeable >= 50, "only {mergeable} mergeable programs swept");
    assert!(fallback >= 50, "only {fallback} fallback programs swept");
    assert_eq!(mergeable + fallback, 600);
}

#[cfg(test)]
mod merge_props {
    use super::*;
    use proptest::prelude::*;

    /// One program per shard-safe lattice class (label, source).
    const CLASS_PROGRAMS: [(&str, &str); 4] = [
        (
            "counter",
            "static int s = 5;\ns = s + size;\ns = s - port;\nreturn s;",
        ),
        (
            "min-fold",
            "static int s = 1000;\ns = min(s, size);\nreturn s;",
        ),
        (
            "max-fold",
            "static int s = -1000;\ns = max(s, size);\nreturn s;",
        ),
        (
            "gated",
            "static int s = 3;\nif (size > port) { s = 42; }\nreturn s;",
        ),
    ];

    fn fold(a: &Instance, b: &Instance, plan: &ecode::MergePlan) -> Instance {
        let mut x = a.clone();
        x.merge_from(b, plan).expect("shard-safe plan folds");
        x
    }

    proptest! {
        /// Per lattice class: the merge fold is commutative and
        /// associative on raw bits, with the fresh instance as identity.
        /// These are exactly the properties that make "fold shards in
        /// any order" equal to sequential evaluation.
        #[test]
        fn prop_merge_fold_is_assoc_comm_with_identity(
            events in proptest::collection::vec((any::<i64>(), any::<i64>(), 0usize..3), 0..24),
        ) {
            for (label, src) in CLASS_PROGRAMS {
                let v = verify(src, &INPUTS, &VerifyLimits::default().require_mergeable())
                    .expect(label);
                let (program, report) = v.into_parts();
                let plan = &report.merge_plan;
                let mut insts =
                    [Instance::new(&program), Instance::new(&program), Instance::new(&program)];
                for &(x, y, which) in &events {
                    insts[which]
                        .run(&[Value::Int(x), Value::Int(y)], report.fuel_bound)
                        .expect("lattice programs never trap");
                }
                let [a, b, c] = &insts;
                let ab = fold(a, b, plan);
                let ba = fold(b, a, plan);
                prop_assert_eq!(ab.raw_globals(), ba.raw_globals(), "{} commutes", label);
                let ab_c = fold(&ab, c, plan);
                let bc = fold(b, c, plan);
                let a_bc = fold(a, &bc, plan);
                prop_assert_eq!(ab_c.raw_globals(), a_bc.raw_globals(), "{} associates", label);
                let fresh = Instance::new(&program);
                let a_id = fold(a, &fresh, plan);
                prop_assert_eq!(a_id.raw_globals(), a.raw_globals(), "{} identity", label);
            }
        }

        /// Proptest arm of the shard-differential sweep: random seeds,
        /// random histories, random partitions.
        #[test]
        fn prop_mergeable_programs_shard_exactly(
            seed in any::<u64>(),
            part_seed in any::<u64>(),
            history in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..12),
        ) {
            let mut rng = Rng::new(part_seed);
            let src = MergeGen::new(seed).program();
            check_shard_exactness(&src, &history, &mut rng);
        }
    }
}

#[cfg(test)]
mod props {
    #[allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fuel-bound soundness and optimizer equivalence over
        /// proptest-chosen seeds and inputs (the deterministic sweep
        /// above covers fixed seeds; this explores further).
        #[test]
        fn prop_bound_sound_and_optimizer_equivalent(
            seed in any::<u64>(),
            a in any::<i64>(),
            b in any::<i64>(),
            c in any::<i64>(),
            d in any::<i64>(),
        ) {
            let src = Gen::new(seed).program();
            let _ = check_soundness(&src, &[(a, b), (c, d), (b, a), (0, 0)]);
        }

        /// The verifier is total: arbitrary source never panics it.
        #[test]
        fn prop_verify_total(src in ".{0,200}") {
            let _ = verify(&src, &INPUTS, &VerifyLimits::default());
        }
    }
}
