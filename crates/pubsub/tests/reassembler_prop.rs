//! Property tests for `pubsub::reliable::Reassembler`: no interleaving
//! of loss, duplication, and reordering may ever produce an
//! out-of-order or duplicate delivery, and whatever survives the
//! network must be delivered exactly once, in sequence order.

use proptest::prelude::*;
use pubsub::reliable::{Offer, Reassembler};

/// One network action applied to a stream of sequenced batches.
#[derive(Debug, Clone)]
enum NetOp {
    /// Deliver the batch at this (wrapped) index of the pending set.
    Deliver(usize),
    /// Re-deliver an already-delivered batch (a network duplicate).
    Redeliver(usize),
    /// Drop the batch at this index — it never arrives.
    Drop(usize),
}

fn net_ops() -> impl Strategy<Value = Vec<NetOp>> {
    // Deliver-heavy mix (4:1:1) so streams usually make progress while
    // duplicates and drops stay common enough to matter.
    prop::collection::vec(
        (0usize..6, 0usize..64).prop_map(|(variant, i)| match variant {
            0..=3 => NetOp::Deliver(i),
            4 => NetOp::Redeliver(i),
            _ => NetOp::Drop(i),
        }),
        1..200,
    )
}

/// A delivered batch: sequence number plus its payload bytes.
type Delivered = Vec<(u64, Vec<u8>)>;

/// Drives a reassembler through an arbitrary interleaving and returns
/// every delivered `(seq, payload)` in delivery order, plus the set of
/// sequences the network actually dropped.
fn drive(total: u64, ops: &[NetOp]) -> (Delivered, Vec<u64>, Reassembler) {
    let payload = |seq: u64| vec![seq as u8, (seq >> 8) as u8];
    let mut in_flight: Vec<u64> = (1..=total).collect();
    let mut arrived: Vec<u64> = Vec::new();
    let mut dropped: Vec<u64> = Vec::new();
    let mut delivered: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut r = Reassembler::new();

    let push = |r: &mut Reassembler, seq: u64, delivered: &mut Vec<(u64, Vec<u8>)>| match r
        .offer(seq, payload(seq))
    {
        Offer::Delivered(batch) => delivered.extend(batch),
        Offer::Duplicate | Offer::Buffered => {}
    };

    for op in ops {
        match op {
            NetOp::Deliver(i) => {
                if in_flight.is_empty() {
                    continue;
                }
                let seq = in_flight.remove(i % in_flight.len());
                arrived.push(seq);
                push(&mut r, seq, &mut delivered);
            }
            NetOp::Redeliver(i) => {
                if arrived.is_empty() {
                    continue;
                }
                let seq = arrived[i % arrived.len()];
                push(&mut r, seq, &mut delivered);
            }
            NetOp::Drop(i) => {
                if in_flight.is_empty() {
                    continue;
                }
                dropped.push(in_flight.remove(i % in_flight.len()));
            }
        }
    }
    // The dissemination layer eventually retransmits everything lost in
    // flight (or the receiver NACKs it); model full recovery by
    // re-offering whatever never arrived.
    for seq in in_flight {
        push(&mut r, seq, &mut delivered);
    }
    (delivered, dropped, r)
}

proptest! {
    /// Core exactly-once/in-order property: under any interleaving of
    /// delivery, duplication, and loss-then-retransmit, the delivered
    /// stream is a strictly increasing run of sequence numbers with no
    /// duplicates, payloads intact, and — once the permanently-dropped
    /// sequences are skipped — every surviving batch is delivered.
    #[test]
    fn no_interleaving_breaks_order_or_exactly_once(
        total in 1u64..64,
        ops in net_ops(),
    ) {
        let (mut delivered, dropped, mut r) = drive(total, &ops);

        // Strictly increasing => no duplicates and no reordering.
        for w in delivered.windows(2) {
            prop_assert!(
                w[0].0 < w[1].0,
                "delivery order violated: seq {} then {}",
                w[0].0,
                w[1].0
            );
        }
        // Payload integrity: each batch carries its own sequence.
        for (seq, payload) in &delivered {
            prop_assert_eq!(payload[0] as u64 | ((payload[1] as u64) << 8), *seq);
        }

        // Permanent losses stall the stream at the first gap; abandoning
        // the gaps (as the GPA does when retries run out) must flush
        // every remaining survivor, still in order.
        let mut skip_targets: Vec<u64> = dropped.clone();
        skip_targets.sort_unstable();
        for gap_seq in skip_targets {
            delivered.extend(r.skip_to(gap_seq + 1));
        }
        let got: Vec<u64> = delivered.iter().map(|(s, _)| *s).collect();
        let expected: Vec<u64> = (1..=total).filter(|s| !dropped.contains(s)).collect();
        prop_assert_eq!(got, expected, "every survivor delivered exactly once, in order");
        prop_assert_eq!(r.pending_len(), 0, "nothing left buffered after recovery");
    }

    /// Offering the same sequence twice is *always* reported as a
    /// duplicate, whether it was delivered or is still buffered.
    #[test]
    fn duplicate_offers_are_always_flagged(seqs in prop::collection::vec(1u64..32, 1..64)) {
        let mut r = Reassembler::new();
        let mut seen: Vec<u64> = Vec::new();
        for seq in seqs {
            let outcome = r.offer(seq, vec![]);
            if seen.contains(&seq) {
                prop_assert_eq!(
                    outcome,
                    Offer::Duplicate,
                    "seq {} offered twice must be flagged",
                    seq
                );
            } else {
                prop_assert!(outcome != Offer::Duplicate, "fresh seq {} not a duplicate", seq);
                seen.push(seq);
            }
        }
    }

    /// `gap()` is `Some` exactly when something is buffered past a hole,
    /// and always spans `next_expected ..= first_buffered - 1`.
    #[test]
    fn gap_reporting_matches_buffer_state(
        total in 1u64..32,
        ops in net_ops(),
    ) {
        let payload = |seq: u64| vec![seq as u8];
        let mut in_flight: Vec<u64> = (1..=total).collect();
        let mut r = Reassembler::new();
        for op in &ops {
            let NetOp::Deliver(i) = op else { continue };
            if in_flight.is_empty() {
                break;
            }
            let seq = in_flight.remove(i % in_flight.len());
            let _ = r.offer(seq, payload(seq));
            match r.gap() {
                Some((lo, hi)) => {
                    prop_assert_eq!(lo, r.next_expected());
                    prop_assert!(hi >= lo, "gap ({}, {}) is a real range", lo, hi);
                    prop_assert!(r.pending_len() > 0, "a gap implies buffered successors");
                }
                None => prop_assert_eq!(
                    r.pending_len(),
                    0,
                    "no gap implies nothing buffered"
                ),
            }
        }
    }
}
