//! Control-plane messages: how remote consumers ask a node's
//! dissemination daemon for data.

use pbio::{read_u64, write_u64, PbioError};
use simnet::{EndPoint, Ip, Port};

use crate::PubSubError;

/// A subscription-management request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// Subscribe `reply_to` to the named topic, with an optional E-Code
    /// filter source.
    Subscribe {
        /// Topic name on the publishing node.
        topic: String,
        /// Where publications should be sent.
        reply_to: EndPoint,
        /// Optional E-Code filter source.
        filter: Option<String>,
    },
    /// Remove `reply_to`'s subscriptions from the named topic.
    Unsubscribe {
        /// Topic name.
        topic: String,
        /// The subscriber being removed.
        reply_to: EndPoint,
    },
    /// A subscribe was rejected. Sent by the daemon back to the
    /// requester when the topic is unknown or the filter fails static
    /// verification, carrying the rendered diagnostics — a bad filter is
    /// surfaced, never silently dropped.
    SubscribeNack {
        /// The topic of the rejected subscribe.
        topic: String,
        /// The subscriber the rejected request named.
        reply_to: EndPoint,
        /// Rendered verifier diagnostics (one string per finding).
        diagnostics: Vec<String>,
    },
    /// Cumulative acknowledgement of sequenced data batches: the
    /// subscriber has delivered (in order) every batch with sequence
    /// number `<= upto`. Lets the daemon trim its resend buffer.
    DataAck {
        /// The subscriber's data endpoint (identifies the stream on the
        /// daemon side).
        subscriber: EndPoint,
        /// Highest in-order sequence number delivered.
        upto: u64,
    },
    /// A gap report: the subscriber is missing batches `from_seq..=to_seq`
    /// and asks for their retransmission.
    DataNack {
        /// The subscriber's data endpoint (identifies the stream).
        subscriber: EndPoint,
        /// First missing sequence number.
        from_seq: u64,
        /// Last missing sequence number (inclusive).
        to_seq: u64,
    },
}

const TAG_SUBSCRIBE: u64 = 1;
const TAG_UNSUBSCRIBE: u64 = 2;
const TAG_SUBSCRIBE_NACK: u64 = 3;
const TAG_DATA_ACK: u64 = 4;
const TAG_DATA_NACK: u64 = 5;

fn write_string(buf: &mut Vec<u8>, s: &str) {
    write_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn read_string(buf: &mut &[u8]) -> Result<String, PbioError> {
    let len = read_u64(buf)? as usize;
    if buf.len() < len {
        return Err(PbioError::UnexpectedEof);
    }
    let (head, rest) = buf.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| PbioError::BadUtf8)?
        .to_owned();
    *buf = rest;
    Ok(s)
}

fn write_endpoint(buf: &mut Vec<u8>, ep: EndPoint) {
    write_u64(buf, ep.ip.0 as u64);
    write_u64(buf, ep.port.0 as u64);
}

fn read_endpoint(buf: &mut &[u8]) -> Result<EndPoint, PbioError> {
    let ip = Ip(read_u64(buf)? as u32);
    let port = Port(read_u64(buf)? as u16);
    Ok(EndPoint::new(ip, port))
}

impl ControlMsg {
    /// Serializes the message for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ControlMsg::Subscribe {
                topic,
                reply_to,
                filter,
            } => {
                write_u64(&mut buf, TAG_SUBSCRIBE);
                write_string(&mut buf, topic);
                write_endpoint(&mut buf, *reply_to);
                match filter {
                    Some(f) => {
                        buf.push(1);
                        write_string(&mut buf, f);
                    }
                    None => buf.push(0),
                }
            }
            ControlMsg::Unsubscribe { topic, reply_to } => {
                write_u64(&mut buf, TAG_UNSUBSCRIBE);
                write_string(&mut buf, topic);
                write_endpoint(&mut buf, *reply_to);
            }
            ControlMsg::SubscribeNack {
                topic,
                reply_to,
                diagnostics,
            } => {
                write_u64(&mut buf, TAG_SUBSCRIBE_NACK);
                write_string(&mut buf, topic);
                write_endpoint(&mut buf, *reply_to);
                write_u64(&mut buf, diagnostics.len() as u64);
                for d in diagnostics {
                    write_string(&mut buf, d);
                }
            }
            ControlMsg::DataAck { subscriber, upto } => {
                write_u64(&mut buf, TAG_DATA_ACK);
                write_endpoint(&mut buf, *subscriber);
                write_u64(&mut buf, *upto);
            }
            ControlMsg::DataNack {
                subscriber,
                from_seq,
                to_seq,
            } => {
                write_u64(&mut buf, TAG_DATA_NACK);
                write_endpoint(&mut buf, *subscriber);
                write_u64(&mut buf, *from_seq);
                write_u64(&mut buf, *to_seq);
            }
        }
        buf
    }

    /// Parses a wire message.
    ///
    /// # Errors
    ///
    /// Codec errors on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<ControlMsg, PubSubError> {
        let tag = read_u64(&mut buf)?;
        match tag {
            TAG_SUBSCRIBE => {
                let topic = read_string(&mut buf)?;
                let reply_to = read_endpoint(&mut buf)?;
                if buf.is_empty() {
                    return Err(PubSubError::Codec(PbioError::UnexpectedEof));
                }
                let has_filter = buf[0] != 0;
                buf = &buf[1..];
                let filter = if has_filter {
                    Some(read_string(&mut buf)?)
                } else {
                    None
                };
                Ok(ControlMsg::Subscribe {
                    topic,
                    reply_to,
                    filter,
                })
            }
            TAG_UNSUBSCRIBE => {
                let topic = read_string(&mut buf)?;
                let reply_to = read_endpoint(&mut buf)?;
                Ok(ControlMsg::Unsubscribe { topic, reply_to })
            }
            TAG_SUBSCRIBE_NACK => {
                let topic = read_string(&mut buf)?;
                let reply_to = read_endpoint(&mut buf)?;
                let n = read_u64(&mut buf)?;
                // Cap by remaining bytes so a hostile length cannot OOM.
                if n > buf.len() as u64 {
                    return Err(PubSubError::Codec(PbioError::UnexpectedEof));
                }
                let mut diagnostics = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    diagnostics.push(read_string(&mut buf)?);
                }
                Ok(ControlMsg::SubscribeNack {
                    topic,
                    reply_to,
                    diagnostics,
                })
            }
            TAG_DATA_ACK => {
                let subscriber = read_endpoint(&mut buf)?;
                let upto = read_u64(&mut buf)?;
                Ok(ControlMsg::DataAck { subscriber, upto })
            }
            TAG_DATA_NACK => {
                let subscriber = read_endpoint(&mut buf)?;
                let from_seq = read_u64(&mut buf)?;
                let to_seq = read_u64(&mut buf)?;
                Ok(ControlMsg::DataNack {
                    subscriber,
                    from_seq,
                    to_seq,
                })
            }
            _ => Err(PubSubError::Codec(PbioError::BadSchemaEncoding)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep() -> EndPoint {
        EndPoint::new(Ip(0x0A000002), Port(9999))
    }

    #[test]
    fn subscribe_round_trip_with_filter() {
        let msg = ControlMsg::Subscribe {
            topic: "interactions".into(),
            reply_to: ep(),
            filter: Some("return latency_us > 100;".into()),
        };
        assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn subscribe_round_trip_without_filter() {
        let msg = ControlMsg::Subscribe {
            topic: "t".into(),
            reply_to: ep(),
            filter: None,
        };
        assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn unsubscribe_round_trip() {
        let msg = ControlMsg::Unsubscribe {
            topic: "t".into(),
            reply_to: ep(),
        };
        assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn subscribe_nack_round_trip() {
        let msg = ControlMsg::SubscribeNack {
            topic: "interactions".into(),
            reply_to: ep(),
            diagnostics: vec![
                "error[E0001] (line 2): division by zero".into(),
                "warning[W0004]: unused inputs: size".into(),
            ],
        };
        assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn data_ack_round_trip() {
        let msg = ControlMsg::DataAck {
            subscriber: ep(),
            upto: u64::MAX - 1,
        };
        assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn data_nack_round_trip() {
        let msg = ControlMsg::DataNack {
            subscriber: ep(),
            from_seq: 17,
            to_seq: 23,
        };
        assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn garbage_rejected() {
        assert!(ControlMsg::decode(&[9, 9, 9]).is_err());
        assert!(ControlMsg::decode(&[]).is_err());
    }
}

#[cfg(test)]
#[allow(unused)] // a typecheck-only proptest elides macro bodies, orphaning these imports
mod control_fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Control-message decoding is total on arbitrary bytes (these
        /// arrive over the network from other nodes).
        #[test]
        fn prop_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = ControlMsg::decode(&bytes);
        }

        /// Encode/decode round-trips arbitrary topic names and filters.
        #[test]
        fn prop_round_trip(topic in ".{0,64}", filter in proptest::option::of(".{0,64}"),
                           ip in any::<u32>(), port in any::<u16>()) {
            let msg = ControlMsg::Subscribe {
                topic,
                reply_to: EndPoint::new(Ip(ip), Port(port)),
                filter,
            };
            prop_assert_eq!(ControlMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }
}
