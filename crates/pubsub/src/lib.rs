//! Kernel-level publish/subscribe channels for monitoring data.
//!
//! "After local, in-kernel analysis, monitoring data may then be
//! aggregated and sent to remote analyzers (or to any remote data
//! consumer) through kernel-level publish-subscribe channels." (§1)
//!
//! This crate is the channel bookkeeping and wire format; the actual
//! transport is `simos::World::kernel_send` / `KernelSink` (real simulated
//! packets consuming real bandwidth and CPU). Pieces:
//!
//! * [`Hub`] — the publisher side: topics, per-topic subscriber lists,
//!   per-subscription **dynamic data filters** written in E-Code (the
//!   paper's "dynamic data filters"), and PBIO encoding of records,
//! * [`ChannelDecoder`] — the subscriber side: learns schemas from the
//!   stream (self-describing) and decodes records,
//! * [`control`] — SUBSCRIBE/UNSUBSCRIBE control-message codecs.
//!
//! # Example
//!
//! ```
//! use pbio::{FieldType, Schema, Value};
//! use pubsub::{ChannelDecoder, Hub};
//! use simnet::{EndPoint, Ip, Port};
//!
//! let schema = Schema::build("metric")
//!     .field("latency_us", FieldType::U64)
//!     .finish()?;
//! let mut hub = Hub::new();
//! let topic = hub.topic("interactions");
//! let sub = EndPoint::new(Ip(2), Port(9999));
//! // Only deliver latencies over 1 ms:
//! hub.subscribe(topic, sub, Some("return latency_us > 1000;"))?;
//!
//! let sends = hub.publish(topic, &schema, &[Value::U64(5_000)])?;
//! assert_eq!(sends.len(), 1);
//! let mut dec = ChannelDecoder::new();
//! let (t, values) = dec.decode(&sends[0].1)?.expect("a record");
//! assert_eq!(t, topic);
//! assert_eq!(values, vec![Value::U64(5_000)]);
//!
//! let dropped = hub.publish(topic, &schema, &[Value::U64(10)])?;
//! assert!(dropped.is_empty(), "filter suppressed the record");
//! # Ok::<(), pubsub::PubSubError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod digest;
pub mod reliable;

use std::collections::HashMap;
use std::fmt;

use ecode::{Instance, Type, Value as EValue, VerifyLimits};
use pbio::{
    read_u64, write_u64, BatchEncoder, FieldType, PbioError, RecordReader, RecordWriter, Schema,
    SchemaId, SchemaRegistry, Value,
};
use simnet::EndPoint;

/// A channel topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicId(pub u32);

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PubSubError {
    /// The referenced topic does not exist.
    UnknownTopic(TopicId),
    /// A subscription filter failed static verification. Carries the
    /// full line-numbered diagnostics for the NACK path.
    BadFilter(ecode::VerifyError),
    /// Record encoding/decoding failed.
    Codec(PbioError),
    /// A record's fields did not match its schema.
    SchemaMismatch,
}

impl fmt::Display for PubSubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PubSubError::UnknownTopic(t) => write!(f, "unknown topic {}", t.0),
            PubSubError::BadFilter(e) => write!(f, "filter error: {e}"),
            PubSubError::Codec(e) => write!(f, "codec error: {e}"),
            PubSubError::SchemaMismatch => f.write_str("record does not match schema"),
        }
    }
}

impl std::error::Error for PubSubError {}

impl From<PbioError> for PubSubError {
    fn from(e: PbioError) -> Self {
        PubSubError::Codec(e)
    }
}

/// Worst-case fuel a subscription filter may cost per record. Filters
/// are statically verified against this budget at subscribe time, so a
/// filter that could exceed it is rejected before it ever runs.
pub const FILTER_FUEL_BUDGET: u64 = 10_000;

/// A compiled per-subscription filter. Filters see the record's numeric
/// and boolean fields as E-Code inputs by field name; string/bytes fields
/// are not visible to filters.
struct Filter {
    /// Persistent VM instance, reused (with fresh statics via
    /// `reset_globals`) across evaluations so the publish hot path does
    /// not clone the program per record.
    instance: Instance,
    /// Indices of the record fields that are filter inputs, in input order.
    field_indices: Vec<usize>,
    /// Reusable input scratch, rebuilt from the record each evaluation.
    inputs: Vec<EValue>,
    /// Statically proven worst-case fuel per evaluation.
    fuel_bound: u64,
}

impl Filter {
    fn compile(src: &str, schema: &Schema) -> Result<Filter, PubSubError> {
        let mut inputs: Vec<(&str, Type)> = Vec::new();
        let mut field_indices = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            let ty = match f.ty {
                FieldType::U64 | FieldType::I64 => Type::Int,
                FieldType::F64 => Type::Double,
                FieldType::Bool => Type::Bool,
                FieldType::Str | FieldType::Bytes => continue,
            };
            inputs.push((f.name.as_str(), ty));
            field_indices.push(i);
        }
        let verified = ecode::verify(
            src,
            &inputs,
            &VerifyLimits::with_max_fuel(FILTER_FUEL_BUDGET),
        )
        .map_err(PubSubError::BadFilter)?;
        let (program, report) = verified.into_parts();
        Ok(Filter {
            instance: Instance::new(&program),
            field_indices,
            inputs: Vec::new(),
            fuel_bound: report.fuel_bound,
        })
    }

    /// Returns whether the record passes, plus the fuel spent deciding.
    fn passes(&mut self, values: &[Value]) -> (bool, u64) {
        self.inputs.clear();
        for &i in &self.field_indices {
            self.inputs.push(match &values[i] {
                Value::U64(v) => EValue::Int(*v as i64),
                Value::I64(v) => EValue::Int(*v),
                Value::F64(v) => EValue::Double(*v),
                Value::Bool(v) => EValue::Bool(*v),
                Value::Str(_) | Value::Bytes(_) => unreachable!("filtered out at compile"),
            });
        }
        self.eval()
    }

    /// [`passes`](Filter::passes) over a raw numeric row (digest bit
    /// convention) — the `publish_raw` hot path, which never
    /// materializes [`Value`]s. Decisions are identical to `passes` on
    /// the equivalent values: both marshal the same bits into the same
    /// E-Code inputs.
    fn passes_raw(&mut self, schema: &Schema, row: &[i64]) -> (bool, u64) {
        self.inputs.clear();
        for &i in &self.field_indices {
            let v = row[i];
            self.inputs.push(match schema.fields()[i].ty {
                FieldType::U64 | FieldType::I64 => EValue::Int(v),
                FieldType::F64 => EValue::Double(f64::from_bits(v as u64)),
                FieldType::Bool => EValue::Bool(v != 0),
                FieldType::Str | FieldType::Bytes => {
                    unreachable!("raw publish requires a numeric schema")
                }
            });
        }
        self.eval()
    }

    /// Runs the program over the marshalled `inputs` scratch.
    fn eval(&mut self) -> (bool, u64) {
        // Filters keep the original fresh-statics-per-evaluation
        // semantics: reset, then run the persistent instance.
        self.instance.reset_globals();
        // The verifier proved `fuel_bound` suffices, so granting exactly
        // that much can never abort with OutOfFuel.
        match self.instance.run(&self.inputs, self.fuel_bound) {
            Ok(out) => (out.ret != 0, out.fuel_used),
            // Defense in depth: a runtime trap (e.g. an input-dependent
            // division by zero, which verification only warns about) fails
            // open — the subscriber gets the record rather than silently
            // losing data.
            Err(_) => (true, self.fuel_bound),
        }
    }
}

struct Subscription {
    endpoint: EndPoint,
    filter: Option<Filter>,
    /// Schema ids already announced to this subscriber.
    sent_schemas: std::collections::HashSet<u32>,
    delivered: u64,
    filtered: u64,
}

/// The publisher half of a node's monitoring channels.
pub struct Hub {
    topics: HashMap<String, TopicId>,
    subs: HashMap<TopicId, Vec<Subscription>>,
    schemas: SchemaRegistry,
    next_topic: u32,
    /// Total E-Code fuel burned in filters (host converts to CPU cost).
    filter_fuel: u64,
    /// Late-compiled filters that failed verification (the subscription
    /// then delivers unfiltered rather than silently dropping records).
    filter_failures: u64,
    /// Filters awaiting their topic's first schema: (topic, sub index,
    /// source).
    pending_filters: Vec<(TopicId, usize, String)>,
    /// Per-schema batch encoders for the raw publish path, keyed by
    /// registered schema id (schema validation is loop-invariant; spend
    /// it once).
    raw_encoders: HashMap<u32, BatchEncoder>,
    /// Reusable record-bytes scratch for `publish_raw`.
    raw_record: Vec<u8>,
}

impl Default for Hub {
    fn default() -> Self {
        Self::new()
    }
}

impl Hub {
    /// An empty hub.
    pub fn new() -> Self {
        Hub {
            topics: HashMap::new(),
            subs: HashMap::new(),
            schemas: SchemaRegistry::new(),
            next_topic: 0,
            filter_fuel: 0,
            filter_failures: 0,
            pending_filters: Vec::new(),
            raw_encoders: HashMap::new(),
            raw_record: Vec::new(),
        }
    }

    /// Gets or creates a topic by name.
    pub fn topic(&mut self, name: &str) -> TopicId {
        if let Some(&t) = self.topics.get(name) {
            return t;
        }
        let t = TopicId(self.next_topic);
        self.next_topic += 1;
        self.topics.insert(name.to_owned(), t);
        self.subs.insert(t, Vec::new());
        t
    }

    /// Looks up a topic by name without creating it.
    pub fn topic_id(&self, name: &str) -> Option<TopicId> {
        self.topics.get(name).copied()
    }

    /// Adds a subscription. `filter` is an optional E-Code source whose
    /// inputs are the numeric/boolean fields of published records; a
    /// nonzero return delivers the record.
    ///
    /// The filter is compiled lazily against the first published schema —
    /// pass `schema_hint` via [`subscribe_with_schema`](Hub::subscribe_with_schema)
    /// to compile eagerly and catch errors at subscribe time.
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownTopic`] if the topic does not exist.
    pub fn subscribe(
        &mut self,
        topic: TopicId,
        endpoint: EndPoint,
        filter: Option<&str>,
    ) -> Result<(), PubSubError> {
        let subs = self
            .subs
            .get_mut(&topic)
            .ok_or(PubSubError::UnknownTopic(topic))?;
        subs.push(Subscription {
            endpoint,
            filter: None,
            sent_schemas: Default::default(),
            delivered: 0,
            filtered: 0,
        });
        if let Some(src) = filter {
            // Remember the source; compile on first publish (schema known).
            let idx = subs.len() - 1;
            self.pending_filters.push((topic, idx, src.to_owned()));
        }
        Ok(())
    }

    /// Adds a subscription with an eagerly compiled and **statically
    /// verified** filter. Returns the filter's proven worst-case fuel per
    /// record (`None` when no filter was given), which hosts use to
    /// pre-size cost accounting.
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownTopic`], or [`PubSubError::BadFilter`]
    /// carrying the verifier's line-numbered diagnostics — nothing is
    /// registered in that case.
    pub fn subscribe_with_schema(
        &mut self,
        topic: TopicId,
        endpoint: EndPoint,
        filter: Option<&str>,
        schema: &Schema,
    ) -> Result<Option<u64>, PubSubError> {
        let compiled = match filter {
            Some(src) => Some(Filter::compile(src, schema)?),
            None => None,
        };
        let subs = self
            .subs
            .get_mut(&topic)
            .ok_or(PubSubError::UnknownTopic(topic))?;
        let fuel_bound = compiled.as_ref().map(|f| f.fuel_bound);
        subs.push(Subscription {
            endpoint,
            filter: compiled,
            sent_schemas: Default::default(),
            delivered: 0,
            filtered: 0,
        });
        Ok(fuel_bound)
    }

    /// Removes all subscriptions of `endpoint` on `topic`. Returns how
    /// many were removed.
    pub fn unsubscribe(&mut self, topic: TopicId, endpoint: EndPoint) -> usize {
        let Some(subs) = self.subs.get_mut(&topic) else {
            return 0;
        };
        let before = subs.len();
        subs.retain(|s| s.endpoint != endpoint);
        before - subs.len()
    }

    /// Number of subscriptions on a topic.
    pub fn subscriber_count(&self, topic: TopicId) -> usize {
        self.subs.get(&topic).map(|s| s.len()).unwrap_or(0)
    }

    /// Encodes and fans a record out to every passing subscriber. Returns
    /// `(endpoint, wire bytes)` pairs the caller hands to the kernel
    /// transport. The first delivery of a schema to a subscriber inlines
    /// the schema description (self-describing stream).
    ///
    /// # Errors
    ///
    /// Codec errors if the values do not match the schema.
    pub fn publish(
        &mut self,
        topic: TopicId,
        schema: &Schema,
        values: &[Value],
    ) -> Result<Vec<(EndPoint, Vec<u8>)>, PubSubError> {
        if !self.subs.contains_key(&topic) {
            return Err(PubSubError::UnknownTopic(topic));
        }
        self.compile_pending_filters(topic, schema);

        if values.len() != schema.len() {
            return Err(PubSubError::SchemaMismatch);
        }
        let schema_id = self.schemas.register(schema);

        // Encode the record once.
        let mut rw = RecordWriter::new(schema);
        for v in values {
            rw.push_value(v)?;
        }
        let record = rw.finish()?;

        // Subscriptions for one topic are a Vec: delivery walks them in
        // registration order, never in hash order.
        let topic_subs = self.subs.get_mut(&topic).expect("checked");
        let mut out = Vec::new();
        for sub in topic_subs.iter_mut() {
            if let Some(filter) = sub.filter.as_mut() {
                let (pass, fuel) = filter.passes(values);
                self.filter_fuel += fuel;
                if !pass {
                    sub.filtered += 1;
                    continue;
                }
            }
            let include_schema = sub.sent_schemas.insert(schema_id.0);
            let mut wire = Vec::with_capacity(record.len() + 8);
            write_u64(&mut wire, topic.0 as u64);
            write_u64(&mut wire, schema_id.0 as u64);
            wire.push(include_schema as u8);
            if include_schema {
                schema.encode(&mut wire);
            }
            wire.extend_from_slice(&record);
            sub.delivered += 1;
            out.push((sub.endpoint, wire));
        }
        Ok(out)
    }

    /// [`publish`](Hub::publish) over a raw numeric row (one `i64` per
    /// schema field, digest raw-row bit convention: integers hold the
    /// value, doubles hold `f64::to_bits`, bools are nonzero-for-true) —
    /// the daemon's per-record hot path.
    ///
    /// Wire bytes, filter decisions, fuel accounting, and delivery
    /// counters are **identical** to `publish` with the equivalent
    /// [`Value`]s; the difference is purely cost: the schema is compiled
    /// to a [`BatchEncoder`] once (cached per schema id), the record
    /// encodes through the vectorized bounds-check-hoisted loop into a
    /// reusable scratch, and filters marshal straight from the row.
    ///
    /// # Errors
    ///
    /// Same as `publish`, plus [`PubSubError::Codec`] if the schema has
    /// string/bytes fields (those records have no raw-row form — keep
    /// publishing them through `publish`).
    pub fn publish_raw(
        &mut self,
        topic: TopicId,
        schema: &Schema,
        row: &[i64],
    ) -> Result<Vec<(EndPoint, Vec<u8>)>, PubSubError> {
        if !self.subs.contains_key(&topic) {
            return Err(PubSubError::UnknownTopic(topic));
        }
        self.compile_pending_filters(topic, schema);

        if row.len() != schema.len() {
            return Err(PubSubError::SchemaMismatch);
        }
        let schema_id = self.schemas.register(schema);
        let enc = match self.raw_encoders.entry(schema_id.0) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => v.insert(BatchEncoder::new(schema)?),
        };
        self.raw_record.clear();
        enc.encode_row_into(row, &mut self.raw_record)?;

        let record = &self.raw_record;
        let topic_subs = self.subs.get_mut(&topic).expect("checked");
        let mut out = Vec::new();
        for sub in topic_subs.iter_mut() {
            if let Some(filter) = sub.filter.as_mut() {
                let (pass, fuel) = filter.passes_raw(schema, row);
                self.filter_fuel += fuel;
                if !pass {
                    sub.filtered += 1;
                    continue;
                }
            }
            let include_schema = sub.sent_schemas.insert(schema_id.0);
            let mut wire = Vec::with_capacity(record.len() + 8);
            write_u64(&mut wire, topic.0 as u64);
            write_u64(&mut wire, schema_id.0 as u64);
            wire.push(include_schema as u8);
            if include_schema {
                schema.encode(&mut wire);
            }
            wire.extend_from_slice(record);
            sub.delivered += 1;
            out.push((sub.endpoint, wire));
        }
        Ok(out)
    }

    /// Late-compiles any pending filters for `topic` now that a schema
    /// is known. A filter that fails verification must not abort the
    /// publish (that would drop the record for *every* subscriber on the
    /// topic): the failure is counted and that one subscription delivers
    /// unfiltered, consistent with the fail-open policy in `passes`.
    fn compile_pending_filters(&mut self, topic: TopicId, schema: &Schema) {
        let pending = std::mem::take(&mut self.pending_filters);
        for (t, idx, src) in pending {
            if t == topic {
                match Filter::compile(&src, schema) {
                    Ok(filter) => {
                        if let Some(sub) = self.subs.get_mut(&t).and_then(|v| v.get_mut(idx)) {
                            sub.filter = Some(filter);
                        }
                    }
                    Err(_) => self.filter_failures += 1,
                }
            } else {
                self.pending_filters.push((t, idx, src));
            }
        }
    }

    /// Total E-Code fuel burned by subscription filters so far (the host
    /// converts this to CPU time and charges it as monitoring overhead).
    pub fn filter_fuel(&self) -> u64 {
        self.filter_fuel
    }

    /// How many lazily-compiled filters failed verification (those
    /// subscriptions deliver unfiltered instead of silently dropping).
    pub fn filter_failures(&self) -> u64 {
        self.filter_failures
    }

    /// The largest statically proven per-record fuel bound across all
    /// installed filters — the worst case one published record can cost
    /// in filter CPU per subscriber. Hosts use it to pre-size
    /// per-instruction cost accounting.
    pub fn max_filter_fuel_bound(&self) -> u64 {
        self.subs
            .values()
            .flatten()
            .filter_map(|s| s.filter.as_ref().map(|f| f.fuel_bound))
            .max()
            .unwrap_or(0)
    }

    /// How many installed filters run on each execution tier, as
    /// `(compiled, fused)`. Tier selection happens automatically at
    /// compile time ([`ecode::Instance::new`]); this only observes the
    /// outcome — both tiers are observably identical.
    pub fn filter_tiers(&self) -> (usize, usize) {
        // Counting is order-free, so iterating the subscription map in
        // hash order cannot be observed in the result.
        let tier_count = |want: ecode::ExecTier| {
            self.subs
                .values()
                .flatten()
                .filter(|s| s.filter.as_ref().is_some_and(|f| f.instance.tier() == want))
                .count()
        };
        (
            tier_count(ecode::ExecTier::Compiled),
            tier_count(ecode::ExecTier::Fused),
        )
    }

    /// (delivered, filtered) counts for a subscriber on a topic.
    pub fn delivery_stats(&self, topic: TopicId, endpoint: EndPoint) -> Option<(u64, u64)> {
        self.subs
            .get(&topic)?
            .iter()
            .find(|s| s.endpoint == endpoint)
            .map(|s| (s.delivered, s.filtered))
    }
}

/// The subscriber half: decodes the self-describing stream.
#[derive(Default)]
pub struct ChannelDecoder {
    schemas: SchemaRegistry,
}

impl ChannelDecoder {
    /// An empty decoder (learns schemas from the stream).
    pub fn new() -> Self {
        ChannelDecoder::default()
    }

    /// Decodes one published message into `(topic, values)`. Returns
    /// `Ok(None)` for a schema-only announcement carrying no record.
    ///
    /// # Errors
    ///
    /// Codec errors on malformed input or unknown schema ids.
    pub fn decode(&mut self, wire: &[u8]) -> Result<Option<(TopicId, Vec<Value>)>, PubSubError> {
        let mut buf = wire;
        let topic = TopicId(read_u64(&mut buf)? as u32);
        let schema_id = SchemaId(read_u64(&mut buf)? as u32);
        if buf.is_empty() {
            return Err(PubSubError::Codec(PbioError::UnexpectedEof));
        }
        let has_schema = buf[0] != 0;
        buf = &buf[1..];
        if has_schema {
            let schema = Schema::decode(&mut buf)?;
            self.schemas.install(schema_id, schema);
        }
        if buf.is_empty() {
            return Ok(None);
        }
        let schema = self.schemas.get(schema_id)?.clone();
        let values = RecordReader::new(&schema, buf).read_all()?;
        Ok(Some((topic, values)))
    }

    /// The schema most recently associated with an id, if known.
    pub fn schema(&self, id: SchemaId) -> Option<&Schema> {
        self.schemas.get(id).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Ip, Port};

    fn schema() -> Schema {
        Schema::build("metric")
            .field("latency_us", FieldType::U64)
            .field("node", FieldType::Str)
            .field("load", FieldType::F64)
            .finish()
            .unwrap()
    }

    fn ep(host: u32) -> EndPoint {
        EndPoint::new(Ip(host), Port(9999))
    }

    fn rec(latency: u64, load: f64) -> Vec<Value> {
        vec![
            Value::U64(latency),
            Value::Str("proxy".into()),
            Value::F64(load),
        ]
    }

    #[test]
    fn publish_without_subscribers_sends_nothing() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        let out = hub.publish(t, &schema(), &rec(1, 0.5)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn fanout_to_multiple_subscribers() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        hub.subscribe(t, ep(1), None).unwrap();
        hub.subscribe(t, ep(2), None).unwrap();
        let out = hub.publish(t, &schema(), &rec(5, 0.1)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(hub.subscriber_count(t), 2);
    }

    #[test]
    fn schema_travels_once_per_subscriber() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        hub.subscribe(t, ep(1), None).unwrap();
        let first = hub.publish(t, &schema(), &rec(5, 0.1)).unwrap();
        let second = hub.publish(t, &schema(), &rec(6, 0.2)).unwrap();
        assert!(
            first[0].1.len() > second[0].1.len() + 20,
            "first message carries the schema: {} vs {}",
            first[0].1.len(),
            second[0].1.len()
        );
        // Both decode fine in order.
        let mut dec = ChannelDecoder::new();
        assert!(dec.decode(&first[0].1).unwrap().is_some());
        let (topic, vals) = dec.decode(&second[0].1).unwrap().unwrap();
        assert_eq!(topic, t);
        assert_eq!(vals[0], Value::U64(6));
    }

    #[test]
    fn decoder_without_schema_errors() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        hub.subscribe(t, ep(1), None).unwrap();
        let first = hub.publish(t, &schema(), &rec(5, 0.1)).unwrap();
        let second = hub.publish(t, &schema(), &rec(6, 0.2)).unwrap();
        let _ = first;
        let mut dec = ChannelDecoder::new();
        // Skipping the schema-bearing message leaves the id unknown.
        assert!(matches!(
            dec.decode(&second[0].1),
            Err(PubSubError::Codec(PbioError::UnknownSchema(_)))
        ));
    }

    #[test]
    fn filter_suppresses_and_counts() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        hub.subscribe_with_schema(t, ep(1), Some("return latency_us > 100;"), &schema())
            .unwrap();
        assert!(hub.publish(t, &schema(), &rec(50, 0.0)).unwrap().is_empty());
        assert_eq!(hub.publish(t, &schema(), &rec(500, 0.0)).unwrap().len(), 1);
        assert_eq!(hub.delivery_stats(t, ep(1)), Some((1, 1)));
        assert!(hub.filter_fuel() > 0);
        // A trivial comparison filter fits any CompileBudget: it must
        // have landed on the compiled tier.
        assert_eq!(hub.filter_tiers(), (1, 0));
    }

    #[test]
    fn filter_sees_float_fields() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        hub.subscribe_with_schema(t, ep(1), Some("return load > 0.9;"), &schema())
            .unwrap();
        assert!(hub.publish(t, &schema(), &rec(1, 0.5)).unwrap().is_empty());
        assert_eq!(hub.publish(t, &schema(), &rec(1, 0.95)).unwrap().len(), 1);
    }

    #[test]
    fn late_compiled_filter_works() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        hub.subscribe(t, ep(1), Some("return latency_us >= 10;"))
            .unwrap();
        assert!(hub.publish(t, &schema(), &rec(5, 0.0)).unwrap().is_empty());
        assert_eq!(hub.publish(t, &schema(), &rec(10, 0.0)).unwrap().len(), 1);
    }

    #[test]
    fn bad_filter_is_reported_eagerly() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        let err = hub
            .subscribe_with_schema(t, ep(1), Some("return nonsense_field;"), &schema())
            .unwrap_err();
        assert!(matches!(err, PubSubError::BadFilter(_)));
    }

    #[test]
    fn unsubscribe_removes() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        hub.subscribe(t, ep(1), None).unwrap();
        hub.subscribe(t, ep(2), None).unwrap();
        assert_eq!(hub.unsubscribe(t, ep(1)), 1);
        assert_eq!(hub.subscriber_count(t), 1);
        assert_eq!(hub.unsubscribe(t, ep(1)), 0);
    }

    #[test]
    fn unknown_topic_errors() {
        let mut hub = Hub::new();
        let bogus = TopicId(99);
        assert!(matches!(
            hub.subscribe(bogus, ep(1), None),
            Err(PubSubError::UnknownTopic(_))
        ));
        assert!(matches!(
            hub.publish(bogus, &schema(), &rec(1, 0.0)),
            Err(PubSubError::UnknownTopic(_))
        ));
    }

    #[test]
    fn value_count_mismatch_errors() {
        let mut hub = Hub::new();
        let t = hub.topic("x");
        assert!(matches!(
            hub.publish(t, &schema(), &[Value::U64(1)]),
            Err(PubSubError::SchemaMismatch)
        ));
    }

    #[test]
    fn topics_are_stable_by_name() {
        let mut hub = Hub::new();
        let a = hub.topic("alpha");
        let b = hub.topic("beta");
        assert_ne!(a, b);
        assert_eq!(hub.topic("alpha"), a);
        assert_eq!(hub.topic_id("beta"), Some(b));
        assert_eq!(hub.topic_id("gamma"), None);
    }

    fn numeric_schema() -> Schema {
        Schema::build("numeric")
            .field("latency_us", FieldType::U64)
            .field("delta", FieldType::I64)
            .field("load", FieldType::F64)
            .field("hot", FieldType::Bool)
            .finish()
            .unwrap()
    }

    /// `publish_raw` is a pure producer-side optimization: over the same
    /// record stream — filters, schema inlining, counters, fuel, and
    /// every wire byte included — it must be indistinguishable from
    /// `publish` with the equivalent values.
    #[test]
    fn publish_raw_is_byte_identical_to_publish() {
        let schema = numeric_schema();
        let mut by_values = Hub::new();
        let mut by_rows = Hub::new();
        for hub in [&mut by_values, &mut by_rows] {
            let t = hub.topic("m");
            hub.subscribe_with_schema(t, ep(1), Some("return latency_us > 100 && hot;"), &schema)
                .unwrap();
            hub.subscribe(t, ep(2), None).unwrap();
        }
        let t = by_values.topic("m");
        for i in 0..20u64 {
            let latency = i * 30;
            let delta = 5 - i as i64;
            let load = 0.25 + i as f64;
            let hot = i % 3 == 0;
            let values = vec![
                Value::U64(latency),
                Value::I64(delta),
                Value::F64(load),
                Value::Bool(hot),
            ];
            let row = [latency as i64, delta, load.to_bits() as i64, hot as i64];
            let a = by_values.publish(t, &schema, &values).unwrap();
            let b = by_rows.publish_raw(t, &schema, &row).unwrap();
            assert_eq!(a, b, "wire divergence at record {i}");
        }
        for e in [ep(1), ep(2)] {
            assert_eq!(by_values.delivery_stats(t, e), by_rows.delivery_stats(t, e));
        }
        assert_eq!(by_values.filter_fuel(), by_rows.filter_fuel());
        assert!(by_rows.filter_fuel() > 0);
    }

    #[test]
    fn publish_raw_rejects_string_schemas() {
        let mut hub = Hub::new();
        let t = hub.topic("m");
        hub.subscribe(t, ep(1), None).unwrap();
        assert!(matches!(
            hub.publish_raw(t, &schema(), &[1, 2, 3]),
            Err(PubSubError::Codec(PbioError::BadSchema(_)))
        ));
        // Row/schema arity mismatches fail the same way `publish` does.
        assert!(matches!(
            hub.publish_raw(t, &numeric_schema(), &[1]),
            Err(PubSubError::SchemaMismatch)
        ));
    }
}

#[cfg(test)]
#[allow(unused)] // a typecheck-only proptest elides macro bodies, orphaning these imports
mod wire_fuzz {
    use super::*;
    use proptest::prelude::*;
    use simnet::{Ip, Port};

    proptest! {
        /// The channel decoder is total on arbitrary input.
        #[test]
        fn prop_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut dec = ChannelDecoder::new();
            let _ = dec.decode(&bytes);
        }

        /// Publish → decode round-trips arbitrary numeric records.
        #[test]
        fn prop_publish_decode_roundtrip(a in any::<u64>(), b in any::<i64>(), c in -1e300f64..1e300) {
            let schema = Schema::build("fuzzrec")
                .field("a", FieldType::U64)
                .field("b", FieldType::I64)
                .field("c", FieldType::F64)
                .finish()
                .unwrap();
            let mut hub = Hub::new();
            let t = hub.topic("x");
            hub.subscribe(t, EndPoint::new(Ip(1), Port(9)), None).unwrap();
            let values = vec![Value::U64(a), Value::I64(b), Value::F64(c)];
            let sends = hub.publish(t, &schema, &values).unwrap();
            prop_assert_eq!(sends.len(), 1);
            let mut dec = ChannelDecoder::new();
            let (topic, decoded) = dec.decode(&sends[0].1).unwrap().unwrap();
            prop_assert_eq!(topic, t);
            prop_assert_eq!(decoded, values);
        }
    }
}
