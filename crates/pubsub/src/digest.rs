//! Sharded digest evaluation: N replica instances of one E-Code
//! program, partitioned by flow key, folded back with the program's
//! [`MergePlan`].
//!
//! This is the first working slice of the sharded GPA (ROADMAP item 1).
//! A *digest* is an E-Code program whose statics accumulate across
//! every ingested record — unlike a subscription [`Filter`](crate::Hub),
//! which resets its statics per record. When the verifier proves every
//! static shard-safe ([`MergePlan::fully_mergeable`]), the digest runs
//! as `shards` independent replicas; records are dispatched by a
//! deterministic FNV-1a hash of their flow key, and [`ShardedDigest::merged`]
//! folds the replicas into the exact statics a single sequential
//! instance would hold. Programs with any `Opaque`/`LastWriteWins` slot
//! silently fall back to one instance — correctness never depends on
//! the caller checking the plan first.

use std::cell::RefCell;

use ecode::{Instance, MergeError, MergePlan, Type, Value as EValue, VerifyLimits, VerifyReport};
use pbio::{FieldType, Schema, Value};

use crate::PubSubError;

/// Worst-case fuel a digest program may cost per record. Same budget as
/// subscription filters: digests run on the GPA's ingest path, which is
/// hot for exactly the same reason the publish path is.
pub const DIGEST_FUEL_BUDGET: u64 = 10_000;

/// Evaluation statistics, for overhead accounting and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestStats {
    /// Shard count the caller asked for.
    pub requested_shards: usize,
    /// Shard count actually running (1 when the plan forced fallback).
    pub shards: usize,
    /// Whether the digest is running more than one replica.
    pub sharded: bool,
    /// Records ingested, total.
    pub events: u64,
    /// Records ingested per shard, in shard order.
    pub per_shard_events: Vec<u64>,
    /// Records skipped because their values did not match the schema
    /// the digest was compiled against.
    pub skipped: u64,
    /// Total E-Code fuel burned (host converts to CPU cost).
    pub fuel_spent: u64,
    /// Runs that trapped at runtime (statics may be partially updated;
    /// counted, not hidden).
    pub aborted: u64,
}

/// A compiled digest program running as one or more shard replicas.
///
/// Records' numeric and boolean fields are visible to the program as
/// E-Code inputs by field name, exactly like subscription filters;
/// string/bytes fields are skipped.
#[derive(Debug, Clone)]
pub struct ShardedDigest {
    program: ecode::Program,
    plan: MergePlan,
    shards: Vec<Instance>,
    requested_shards: usize,
    /// Indices of the record fields that are program inputs, in input order.
    field_indices: Vec<usize>,
    /// Reusable input scratch, rebuilt from the record each evaluation.
    inputs: Vec<EValue>,
    /// Statically proven worst-case fuel per evaluation.
    fuel_bound: u64,
    per_shard_events: Vec<u64>,
    skipped: u64,
    fuel_spent: u64,
    aborted: u64,
    /// Lazily computed fold of the replicas, invalidated on ingest.
    /// `merged()`/`merged_global()` sit on the stats/query path and are
    /// typically called several times between ingests; one fold serves
    /// them all. `RefCell` is safe here: simulated crates are
    /// single-threaded by construction (analyzer rule D0004).
    merged_cache: RefCell<Option<Instance>>,
}

/// Deterministic 64-bit FNV-1a over the key's little-endian bytes.
/// Chosen over `std` hashing because shard placement must be identical
/// across runs, builds, and hosts (replay bit-stability).
fn fnv1a(key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardedDigest {
    /// Compiles `src` against `schema` and provisions replicas.
    ///
    /// `shards` is the *requested* replica count; the digest actually
    /// shards only when the verifier proves every static shard-safe.
    /// The verification itself is ordinary (no `require_mergeable`):
    /// non-mergeable digests are legal, they just run single-instance.
    pub fn compile(
        src: &str,
        schema: &Schema,
        shards: usize,
    ) -> Result<ShardedDigest, PubSubError> {
        let mut inputs: Vec<(&str, Type)> = Vec::new();
        let mut field_indices = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            let ty = match f.ty {
                FieldType::U64 | FieldType::I64 => Type::Int,
                FieldType::F64 => Type::Double,
                FieldType::Bool => Type::Bool,
                FieldType::Str | FieldType::Bytes => continue,
            };
            inputs.push((f.name.as_str(), ty));
            field_indices.push(i);
        }
        let verified = ecode::verify(
            src,
            &inputs,
            &VerifyLimits::with_max_fuel(DIGEST_FUEL_BUDGET),
        )
        .map_err(PubSubError::BadFilter)?;
        let (program, report) = verified.into_parts();
        let VerifyReport {
            fuel_bound,
            merge_plan,
            ..
        } = report;
        let n = if shards > 1 && merge_plan.fully_mergeable() {
            shards
        } else {
            1
        };
        Ok(ShardedDigest {
            shards: (0..n).map(|_| Instance::new(&program)).collect(),
            program,
            plan: merge_plan,
            requested_shards: shards,
            field_indices,
            inputs: Vec::new(),
            fuel_bound,
            per_shard_events: vec![0; n],
            skipped: 0,
            fuel_spent: 0,
            aborted: 0,
            merged_cache: RefCell::new(None),
        })
    }

    /// Whether the plan admitted more than one replica.
    pub fn is_sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// Number of replicas actually running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard-safety classification the replica count was decided by.
    pub fn plan(&self) -> &MergePlan {
        &self.plan
    }

    /// Statically proven worst-case fuel per record.
    pub fn fuel_bound(&self) -> u64 {
        self.fuel_bound
    }

    /// Which shard a flow key lands on. Deterministic: identical across
    /// runs and shard-local (a flow's records always meet the same
    /// replica, so per-flow sequential semantics are preserved).
    pub fn shard_of(&self, key: u64) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// Feeds one record (dispatched by `key`) to its shard's replica.
    pub fn ingest(&mut self, key: u64, values: &[Value]) {
        self.inputs.clear();
        for &i in &self.field_indices {
            let v = match values.get(i) {
                Some(Value::U64(v)) => EValue::Int(*v as i64),
                Some(Value::I64(v)) => EValue::Int(*v),
                Some(Value::F64(v)) => EValue::Double(*v),
                Some(Value::Bool(v)) => EValue::Bool(*v),
                // The record does not match the schema this digest was
                // compiled for; count and move on rather than trap.
                _ => {
                    self.skipped += 1;
                    return;
                }
            };
            self.inputs.push(v);
        }
        let shard = self.shard_of(key);
        // The replica's statics are about to change; drop the stale fold.
        self.merged_cache.get_mut().take();
        // Statics persist across records — that is the point of a digest.
        match self.shards[shard].run(&self.inputs, self.fuel_bound) {
            Ok(out) => self.fuel_spent += out.fuel_used,
            Err(_) => {
                // A runtime trap (input-dependent division by zero, say)
                // leaves that replica's statics partially updated, just
                // as it would a sequential instance.
                self.aborted += 1;
                self.fuel_spent += self.fuel_bound;
            }
        }
        self.per_shard_events[shard] += 1;
    }

    /// Folds every replica's statics into a fresh instance per the plan.
    ///
    /// A fresh instance (statics at their declared initial values) is
    /// the identity element of each shard-safe fold, so folding shards
    /// into it yields exactly the sequential statics. With one replica
    /// this degenerates to a copy, so the accessor works uniformly for
    /// fallback digests too.
    pub fn merged(&self) -> Result<Instance, MergeError> {
        if self.shards.len() == 1 {
            // Fallback digests may hold non-mergeable plans; a single
            // replica needs no folding.
            return Ok(self.shards[0].clone());
        }
        self.ensure_merged()?;
        Ok(self
            .merged_cache
            .borrow()
            .as_ref()
            .expect("ensure_merged filled the cache")
            .clone())
    }

    /// Runs the K-shard fold into the cache unless it is already fresh.
    fn ensure_merged(&self) -> Result<(), MergeError> {
        if self.merged_cache.borrow().is_some() {
            return Ok(());
        }
        let mut acc = Instance::new(&self.program);
        for shard in &self.shards {
            acc.merge_from(shard, &self.plan)?;
        }
        *self.merged_cache.borrow_mut() = Some(acc);
        Ok(())
    }

    /// Reads a static variable of the *merged* state by name. Repeated
    /// reads between ingests share one fold via the cache.
    pub fn merged_global(&self, name: &str) -> Option<EValue> {
        if self.shards.len() == 1 {
            return self.shards[0].global(name);
        }
        self.ensure_merged().ok()?;
        self.merged_cache.borrow().as_ref()?.global(name)
    }

    /// Current evaluation statistics.
    pub fn stats(&self) -> DigestStats {
        DigestStats {
            requested_shards: self.requested_shards,
            shards: self.shards.len(),
            sharded: self.is_sharded(),
            events: self.per_shard_events.iter().sum(),
            per_shard_events: self.per_shard_events.clone(),
            skipped: self.skipped,
            fuel_spent: self.fuel_spent,
            aborted: self.aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio::Schema;

    fn schema() -> Schema {
        Schema::build("rec")
            .field("size", FieldType::U64)
            .field("port", FieldType::U64)
            .finish()
            .unwrap()
    }

    const MERGEABLE: &str = "
        static int count = 0;
        static int bytes = 0;
        static int biggest = 0;
        static bool saw_admin = false;
        count = count + 1;
        bytes = bytes + size;
        biggest = max(biggest, size);
        if (port < 1024) { saw_admin = true; }
        return count;
    ";

    #[test]
    fn mergeable_digest_shards_and_folds_exactly() {
        let schema = schema();
        let mut seq = ShardedDigest::compile(MERGEABLE, &schema, 1).unwrap();
        let mut sharded = ShardedDigest::compile(MERGEABLE, &schema, 4).unwrap();
        assert!(!seq.is_sharded());
        assert!(sharded.is_sharded());
        assert_eq!(sharded.shard_count(), 4);

        for i in 0..100u64 {
            let rec = [
                Value::U64(i * 37 % 91),
                Value::U64(if i % 5 == 0 { 80 } else { 9000 }),
            ];
            seq.ingest(i % 7, &rec);
            sharded.ingest(i % 7, &rec);
        }
        let a = seq.merged().unwrap();
        let b = sharded.merged().unwrap();
        assert_eq!(a.raw_globals(), b.raw_globals(), "fold must be bit-exact");
        assert_eq!(sharded.merged_global("count"), Some(EValue::Int(100)));
        assert_eq!(sharded.merged_global("saw_admin"), Some(EValue::Bool(true)));

        let stats = sharded.stats();
        assert_eq!(stats.events, 100);
        assert_eq!(stats.per_shard_events.iter().sum::<u64>(), 100);
        assert!(stats.sharded);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.aborted, 0);
        assert!(stats.fuel_spent > 0);
    }

    #[test]
    fn opaque_digest_falls_back_to_one_instance() {
        // `acc * 2` scales accumulated state — classified Opaque — so
        // the requested 8 shards must collapse to 1.
        let src = "
            static int acc = 0;
            acc = acc * 2 + size;
            return acc;
        ";
        let d = ShardedDigest::compile(src, &schema(), 8).unwrap();
        assert!(!d.is_sharded());
        assert_eq!(d.shard_count(), 1);
        assert!(!d.plan().fully_mergeable());
        let stats = d.stats();
        assert_eq!(stats.requested_shards, 8);
        assert_eq!(stats.shards, 1);
    }

    #[test]
    fn merged_cache_invalidates_on_ingest() {
        let schema = schema();
        let mut d = ShardedDigest::compile(MERGEABLE, &schema, 4).unwrap();
        d.ingest(1, &[Value::U64(5), Value::U64(80)]);
        assert_eq!(d.merged_global("count"), Some(EValue::Int(1)));
        // Second read between ingests is served by the cached fold.
        assert_eq!(d.merged_global("bytes"), Some(EValue::Int(5)));
        // A new record must drop the stale fold.
        d.ingest(2, &[Value::U64(7), Value::U64(9000)]);
        assert_eq!(d.merged_global("count"), Some(EValue::Int(2)));
        assert_eq!(d.merged_global("bytes"), Some(EValue::Int(12)));
    }

    #[test]
    fn same_key_always_meets_the_same_shard() {
        let d = ShardedDigest::compile(MERGEABLE, &schema(), 8).unwrap();
        for key in 0..64u64 {
            assert_eq!(d.shard_of(key), d.shard_of(key));
            assert!(d.shard_of(key) < 8);
        }
    }
}
