//! Reliable delivery for monitoring channels: sequence-numbered batches,
//! a bounded sender-side resend buffer with exponential backoff, and a
//! receiver-side reassembler that detects gaps and duplicates.
//!
//! The dissemination daemon's publications are fire-and-forget UDP-style
//! kernel sends; under loss, a dropped batch would silently corrupt every
//! downstream record. This module adds the minimal machinery to notice:
//!
//! * every batch to a given subscriber carries a **per-subscription
//!   sequence number** (`1, 2, 3, …`, prefixed to the wire bytes),
//! * the sender keeps recent batches in a byte-bounded [`ResendBuffer`]
//!   and retransmits on NACK or on retransmit-timeout with exponential
//!   backoff,
//! * the receiver runs batches through a [`Reassembler`] that delivers
//!   in order, suppresses duplicates, and reports gaps for NACKing —
//!   or abandons them after a deadline so one lost batch cannot stall
//!   the stream forever (gaps are then *counted*, not silently eaten).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use bytes::Bytes;
use pbio::{read_u64, write_u64};
use simcore::{SimDuration, SimTime};

/// Upper bound on the bytes the (varint) sequence header adds per batch.
pub const MAX_SEQ_HEADER_BYTES: usize = 10;

/// Prefixes `payload` with its per-subscription sequence number
/// (varint-encoded, like all pbio integers).
pub fn encode_batch(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(MAX_SEQ_HEADER_BYTES + payload.len());
    encode_batch_into(seq, payload, &mut wire);
    wire
}

/// [`encode_batch`] into a caller-owned buffer (cleared first), so batch
/// encoding on the hot path can reuse one allocation across batches.
pub fn encode_batch_into(seq: u64, payload: &[u8], wire: &mut Vec<u8>) {
    wire.clear();
    wire.reserve(MAX_SEQ_HEADER_BYTES + payload.len());
    write_u64(wire, seq);
    wire.extend_from_slice(payload);
}

/// Splits a wire batch into `(seq, payload)`. Returns `None` on truncated
/// input.
pub fn decode_batch(data: &[u8]) -> Option<(u64, &[u8])> {
    let mut buf = data;
    let seq = read_u64(&mut buf).ok()?;
    Some((seq, buf))
}

/// Tuning for the sender-side resend buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResendConfig {
    /// Maximum bytes of un-acked batches kept for retransmission; the
    /// oldest are evicted (and counted) beyond this.
    pub cap_bytes: u64,
    /// Base retransmit timeout: an un-acked batch is retransmitted this
    /// long after it was last sent, doubling per retry.
    pub rto: SimDuration,
    /// Cap on the backoff exponent (`rto * 2^min(retries, cap)`).
    pub max_backoff_exp: u32,
}

impl Default for ResendConfig {
    fn default() -> Self {
        ResendConfig {
            cap_bytes: 512 * 1024,
            rto: SimDuration::from_millis(50),
            max_backoff_exp: 6,
        }
    }
}

#[derive(Debug, Clone)]
struct ResendEntry {
    seq: u64,
    /// Immutable, refcounted wire bytes: retransmission hands out cheap
    /// shared views instead of copying the payload.
    wire: Bytes,
    last_sent: SimTime,
    retries: u32,
}

impl ResendEntry {
    fn deadline(&self, config: &ResendConfig) -> SimTime {
        let exp = self.retries.min(config.max_backoff_exp);
        let wait = config.rto.as_nanos().saturating_mul(1u64 << exp);
        self.last_sent + SimDuration::from_nanos(wait)
    }
}

/// Byte-bounded store of recently published batches, ordered by sequence
/// number, supporting cumulative ACK trimming, NACK lookups, and
/// timeout-driven retransmission with exponential backoff.
#[derive(Debug)]
pub struct ResendBuffer {
    config: ResendConfig,
    entries: VecDeque<ResendEntry>,
    bytes: u64,
    evictions: u64,
}

impl ResendBuffer {
    /// An empty buffer.
    pub fn new(config: ResendConfig) -> ResendBuffer {
        ResendBuffer {
            config,
            entries: VecDeque::new(),
            bytes: 0,
            evictions: 0,
        }
    }

    /// Stores a just-sent batch. Sequence numbers must be pushed in
    /// increasing order. Evicts oldest entries beyond the byte cap —
    /// an evicted batch can never be retransmitted, so evictions are
    /// counted (the stream's receiver will eventually abandon that gap).
    ///
    /// Accepts anything convertible to [`Bytes`]; a `Vec<u8>` converts
    /// without copying, and a `Bytes` already shared with the original
    /// send is stored refcounted.
    pub fn push(&mut self, now: SimTime, seq: u64, wire: impl Into<Bytes>) {
        let wire = wire.into();
        debug_assert!(
            self.entries.back().map(|e| e.seq < seq).unwrap_or(true),
            "resend buffer requires increasing sequence numbers"
        );
        self.bytes += wire.len() as u64;
        self.entries.push_back(ResendEntry {
            seq,
            wire,
            last_sent: now,
            retries: 0,
        });
        while self.bytes > self.config.cap_bytes && self.entries.len() > 1 {
            let evicted = self.entries.pop_front().expect("non-empty");
            self.bytes -= evicted.wire.len() as u64;
            self.evictions += 1;
        }
    }

    /// Drops every batch with `seq <= upto` (cumulative ACK). Returns how
    /// many entries were freed.
    pub fn ack_upto(&mut self, upto: u64) -> usize {
        let mut freed = 0;
        while let Some(front) = self.entries.front() {
            if front.seq > upto {
                break;
            }
            let e = self.entries.pop_front().expect("non-empty");
            self.bytes -= e.wire.len() as u64;
            freed += 1;
        }
        freed
    }

    /// Shares the wire bytes of every held batch in `[from, to]` for a
    /// NACK-triggered retransmit, marking them as re-sent at `now`.
    /// Batches already evicted (or already acked) are simply absent.
    /// The returned [`Bytes`] are refcounted views — no payload copies.
    pub fn retransmit_range(&mut self, now: SimTime, from: u64, to: u64) -> Vec<(u64, Bytes)> {
        let mut out = Vec::new();
        for e in &mut self.entries {
            if e.seq >= from && e.seq <= to {
                e.last_sent = now;
                e.retries += 1;
                out.push((e.seq, e.wire.clone()));
            }
        }
        out
    }

    /// Batches whose retransmit deadline has passed at `now`: each is
    /// marked re-sent (doubling its next backoff) and returned for the
    /// caller to put back on the wire as refcounted shared views.
    pub fn due(&mut self, now: SimTime) -> Vec<(u64, Bytes)> {
        let config = self.config;
        let mut out = Vec::new();
        for e in &mut self.entries {
            if e.deadline(&config) <= now {
                e.last_sent = now;
                e.retries += 1;
                out.push((e.seq, e.wire.clone()));
            }
        }
        out
    }

    /// Number of held batches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently held.
    pub fn buffered_bytes(&self) -> u64 {
        self.bytes
    }

    /// Batches evicted un-acked because of the byte cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The oldest held sequence number, if any.
    pub fn lowest_seq(&self) -> Option<u64> {
        self.entries.front().map(|e| e.seq)
    }
}

/// What a [`Reassembler`] did with an offered batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Offer {
    /// The batch was in order: it (and any buffered successors it
    /// unblocked) are delivered, in sequence order.
    Delivered(Vec<(u64, Vec<u8>)>),
    /// Already seen — dropped, never delivered twice.
    Duplicate,
    /// Ahead of a gap — buffered until the gap fills or is abandoned.
    Buffered,
}

/// Receiver-side per-subscription stream state: delivers batches exactly
/// once and in order, buffers out-of-order arrivals, and exposes the
/// current gap for NACKing.
#[derive(Debug)]
pub struct Reassembler {
    /// Next sequence number not yet delivered (sequences start at 1).
    next: u64,
    pending: BTreeMap<u64, Vec<u8>>,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new()
    }
}

impl Reassembler {
    /// A fresh stream expecting sequence 1.
    pub fn new() -> Reassembler {
        Reassembler {
            next: 1,
            pending: BTreeMap::new(),
        }
    }

    /// Offers one received batch.
    pub fn offer(&mut self, seq: u64, payload: Vec<u8>) -> Offer {
        if seq < self.next || self.pending.contains_key(&seq) {
            return Offer::Duplicate;
        }
        if seq != self.next {
            self.pending.insert(seq, payload);
            return Offer::Buffered;
        }
        let mut out = vec![(seq, payload)];
        self.next += 1;
        while let Some(p) = self.pending.remove(&self.next) {
            out.push((self.next, p));
            self.next += 1;
        }
        Offer::Delivered(out)
    }

    /// The inclusive sequence range currently missing, if any batch is
    /// buffered past a hole: `(next_expected, first_buffered - 1)`.
    pub fn gap(&self) -> Option<(u64, u64)> {
        let (&first, _) = self.pending.iter().next()?;
        Some((self.next, first - 1))
    }

    /// Abandons everything below `seq`: advances the stream past a gap
    /// that will never be filled (sender evicted it, or retries ran out)
    /// and delivers any buffered batches that become in-order.
    pub fn skip_to(&mut self, seq: u64) -> Vec<(u64, Vec<u8>)> {
        if seq > self.next {
            self.next = seq;
        }
        self.pending.retain(|&s, _| s >= self.next);
        let mut out = Vec::new();
        while let Some(p) = self.pending.remove(&self.next) {
            out.push((self.next, p));
            self.next += 1;
        }
        out
    }

    /// The next sequence number the stream expects.
    pub fn next_expected(&self) -> u64 {
        self.next
    }

    /// The highest sequence delivered in order so far (cumulative-ACK
    /// value): `next_expected - 1`.
    pub fn ack_value(&self) -> u64 {
        self.next - 1
    }

    /// How many out-of-order batches are buffered.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn batch_encoding_round_trips() {
        for seq in [1u64, 42, 300, u64::MAX] {
            let wire = encode_batch(seq, b"payload");
            assert!(wire.len() <= MAX_SEQ_HEADER_BYTES + 7);
            assert_eq!(decode_batch(&wire), Some((seq, &b"payload"[..])));
        }
        assert_eq!(decode_batch(&[]), None, "empty input has no header");
        assert_eq!(decode_batch(&encode_batch(7, b"")), Some((7, &b""[..])));
    }

    #[test]
    fn in_order_stream_delivers_everything_once() {
        let mut r = Reassembler::new();
        for seq in 1..=10u64 {
            match r.offer(seq, vec![seq as u8]) {
                Offer::Delivered(got) => assert_eq!(got, vec![(seq, vec![seq as u8])]),
                other => panic!("seq {seq}: {other:?}"),
            }
        }
        assert_eq!(r.next_expected(), 11);
        assert_eq!(r.ack_value(), 10);
        assert_eq!(r.gap(), None);
    }

    #[test]
    fn gap_buffers_then_drains_in_order() {
        let mut r = Reassembler::new();
        assert!(matches!(r.offer(1, b"a".to_vec()), Offer::Delivered(_)));
        // 2 is lost; 3 and 4 arrive.
        assert_eq!(r.offer(3, b"c".to_vec()), Offer::Buffered);
        assert_eq!(r.offer(4, b"d".to_vec()), Offer::Buffered);
        assert_eq!(r.gap(), Some((2, 2)));
        // The retransmit of 2 unblocks the whole run.
        match r.offer(2, b"b".to_vec()) {
            Offer::Delivered(got) => {
                assert_eq!(
                    got,
                    vec![(2, b"b".to_vec()), (3, b"c".to_vec()), (4, b"d".to_vec())]
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.gap(), None);
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn duplicates_are_never_delivered_twice() {
        let mut r = Reassembler::new();
        assert!(matches!(r.offer(1, b"a".to_vec()), Offer::Delivered(_)));
        assert_eq!(r.offer(1, b"a".to_vec()), Offer::Duplicate);
        assert_eq!(r.offer(3, b"c".to_vec()), Offer::Buffered);
        assert_eq!(r.offer(3, b"c".to_vec()), Offer::Duplicate);
    }

    #[test]
    fn skip_to_abandons_gap_and_drains() {
        let mut r = Reassembler::new();
        assert!(matches!(r.offer(1, b"a".to_vec()), Offer::Delivered(_)));
        assert_eq!(r.offer(4, b"d".to_vec()), Offer::Buffered);
        assert_eq!(r.gap(), Some((2, 3)));
        let drained = r.skip_to(4);
        assert_eq!(drained, vec![(4, b"d".to_vec())]);
        assert_eq!(r.next_expected(), 5);
        assert_eq!(r.gap(), None);
        // Late arrivals of the abandoned range are duplicates now.
        assert_eq!(r.offer(2, b"b".to_vec()), Offer::Duplicate);
    }

    #[test]
    fn resend_buffer_acks_and_retransmits_by_range() {
        let mut buf = ResendBuffer::new(ResendConfig::default());
        for seq in 1..=5u64 {
            buf.push(t(seq), seq, encode_batch(seq, &[seq as u8; 100]));
        }
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.ack_upto(2), 2);
        assert_eq!(buf.lowest_seq(), Some(3));
        let rt = buf.retransmit_range(t(100), 3, 4);
        assert_eq!(rt.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![3, 4]);
        // Acked and never-held ranges retransmit nothing.
        assert!(buf.retransmit_range(t(101), 1, 2).is_empty());
        assert!(buf.retransmit_range(t(101), 9, 12).is_empty());
    }

    #[test]
    fn retransmits_share_payload_allocation() {
        let mut buf = ResendBuffer::new(ResendConfig::default());
        let wire = Bytes::from(encode_batch(1, &[7u8; 64]));
        buf.push(t(0), 1, wire.clone());
        let rt = buf.retransmit_range(t(5), 1, 1);
        assert_eq!(rt.len(), 1);
        // Same backing allocation as the original send — a refcounted
        // view, not a copy.
        assert!(std::ptr::eq(
            rt[0].1.as_ref().as_ptr(),
            wire.as_ref().as_ptr()
        ));
        let due = buf.due(t(10_000));
        assert_eq!(due.len(), 1);
        assert!(std::ptr::eq(
            due[0].1.as_ref().as_ptr(),
            wire.as_ref().as_ptr()
        ));
    }

    #[test]
    fn byte_cap_evicts_oldest_and_counts() {
        let config = ResendConfig {
            cap_bytes: 250,
            ..ResendConfig::default()
        };
        let mut buf = ResendBuffer::new(config);
        for seq in 1..=4u64 {
            buf.push(t(seq), seq, vec![0u8; 100]);
        }
        assert!(buf.buffered_bytes() <= 250);
        assert_eq!(buf.evictions(), 2);
        assert_eq!(buf.lowest_seq(), Some(3));
    }

    #[test]
    fn timeout_retransmit_backs_off_exponentially() {
        let config = ResendConfig {
            cap_bytes: 10_000,
            rto: SimDuration::from_millis(10),
            max_backoff_exp: 3,
        };
        let mut buf = ResendBuffer::new(config);
        buf.push(t(0), 1, b"x".to_vec());
        assert!(buf.due(t(9)).is_empty(), "before first deadline");
        assert_eq!(buf.due(t(10)).len(), 1, "first timeout after rto");
        // Second deadline is 2×rto after the retransmit.
        assert!(buf.due(t(29)).is_empty());
        assert_eq!(buf.due(t(30)).len(), 1);
        // Third: 4×rto.
        assert!(buf.due(t(69)).is_empty());
        assert_eq!(buf.due(t(70)).len(), 1);
        // ACK stops the cycle.
        buf.ack_upto(1);
        assert!(buf.due(t(10_000)).is_empty());
    }

    /// Deterministic generative sweep: under arbitrary loss, duplication
    /// and reordering between a ResendBuffer sender and a Reassembler
    /// receiver, every sequence is delivered exactly once (or abandoned
    /// explicitly) and in order.
    #[test]
    fn generative_sweep_loss_duplication_reordering() {
        let mut rng = simcore::SimRng::seed(0x5EED);
        for case in 0..100 {
            let total: u64 = rng.uniform_u64(1, 200);
            let loss_p = rng.unit_f64() * 0.4;
            let dup_p = rng.unit_f64() * 0.3;
            let mut sender = ResendBuffer::new(ResendConfig {
                cap_bytes: u64::MAX,
                rto: SimDuration::from_millis(10),
                max_backoff_exp: 4,
            });
            let mut receiver = Reassembler::new();
            let mut delivered: Vec<u64> = Vec::new();
            let mut in_flight: Vec<(u64, Bytes)> = Vec::new();
            let mut now = SimTime::ZERO;

            for seq in 1..=total {
                now += SimDuration::from_millis(1);
                let wire = Bytes::from(encode_batch(seq, &[case as u8]));
                sender.push(now, seq, wire.clone());
                if !rng.chance(loss_p) {
                    in_flight.push((seq, wire.clone()));
                    if rng.chance(dup_p) {
                        in_flight.push((seq, wire));
                    }
                }
            }
            // Rounds of (shuffled delivery, then timeout retransmit) until
            // nothing is outstanding.
            loop {
                rng.shuffle(&mut in_flight);
                for (_, wire) in in_flight.drain(..) {
                    let (seq, payload) = decode_batch(&wire).expect("well-formed");
                    if let Offer::Delivered(got) = receiver.offer(seq, payload.to_vec()) {
                        delivered.extend(got.iter().map(|(s, _)| *s));
                    }
                }
                sender.ack_upto(receiver.ack_value());
                if sender.is_empty() {
                    break;
                }
                now += SimDuration::from_secs(2);
                // Retransmits are delivered reliably in this sweep so the
                // loop terminates; loss of retransmits is exercised by the
                // end-to-end chaos test.
                in_flight.extend(sender.due(now));
            }
            let expect: Vec<u64> = (1..=total).collect();
            assert_eq!(delivered, expect, "case {case}: exactly-once, in order");
        }
    }
}
