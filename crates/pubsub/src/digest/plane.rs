//! The parallel digest plane: one worker thread per shard, fed columnar
//! record batches over bounded channels.
//!
//! This is the one corner of the workspace that uses real OS threads
//! (analyzer rule D0004 is waived for this file, see `analyzer.toml`):
//! the sharded GPA digest is an *engine* component, not simulated
//! workload, and the whole point of the shard-safety analysis is that
//! replica evaluation can leave the simulator's single-threaded world.
//! Thread scheduling still cannot leak into results — see the module
//! docs in [`super`] and DESIGN.md §11 for the argument.
//!
//! # Protocol
//!
//! Each worker owns its replica [`Instance`] and drains one bounded
//! SPSC channel of [`WorkerMsg`]s. Quiescence needs no locks or
//! atomics (D0004 forbids them anyway): channels are FIFO, so a
//! [`WorkerMsg::Drain`] enqueued after a set of batches is handled
//! only after those batches are folded in, and its reply — a clone of
//! the replica plus cumulative fuel/abort counters — is a consistent
//! snapshot. Workers never reset state; the coordinator treats every
//! drain as a fresh barrier read.
//!
//! Consumed batches are recycled to the coordinator over an unbounded
//! return channel, so steady-state ingest allocates nothing.
//!
//! # Failure
//!
//! A worker that panics drops its receiver, which surfaces at the
//! coordinator as a failed send/recv; the coordinator then joins the
//! worker and re-raises the original panic payload rather than hanging
//! a fold on a reply that will never come. `Drop` closes every channel
//! and joins every worker, propagating any parked panic unless the
//! thread is already unwinding.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ecode::{BatchEval, Instance, MergePlan, Program};

/// Full batches staged coordinator-side per shard before they are
/// shipped as one burst. Hash placement spreads consecutive records
/// round-robin across shards, so unstaged flushes would hand every
/// woken worker exactly one batch — on few cores that is a futex wake
/// plus two context switches per batch, which at digest rates costs
/// more than the evaluation itself. Bursts amortize the wake over
/// `STAGE_BATCHES` batches of work.
const STAGE_BATCHES: usize = 4;

/// In-flight batches per worker channel. Sized to absorb a full staged
/// burst without blocking the coordinator mid-send.
const CHANNEL_BATCHES: usize = 2 * STAGE_BATCHES;

/// A structure-of-arrays record batch in one flat allocation: the `j`-th
/// *active* column (see [`Plane::active`]) occupies
/// `buf[j * flush_rows ..][.. rows]`. A single fixed-size buffer keeps
/// the producer's inner loop to plain indexed stores — no per-push
/// length bookkeeping or capacity branches — and recycling it never
/// reallocates. Slots past `rows` are stale garbage from earlier use;
/// readers must slice by `rows`.
#[derive(Debug)]
pub(super) struct ColumnBatch {
    buf: Vec<i64>,
    rows: usize,
}

impl ColumnBatch {
    fn new(n_active: usize, flush_rows: usize) -> ColumnBatch {
        ColumnBatch {
            buf: vec![0; n_active * flush_rows],
            rows: 0,
        }
    }

    /// Reuse the allocation. The buffer is not zeroed: only `[.. rows]`
    /// of each column is ever read.
    fn clear(&mut self) {
        self.rows = 0;
    }

    /// Borrows the `j`-th active column.
    fn col(&self, j: usize, flush_rows: usize) -> &[i64] {
        &self.buf[j * flush_rows..][..self.rows]
    }
}

/// What the coordinator sends a worker.
enum WorkerMsg {
    /// Fold this batch into the replica, then recycle it.
    Batch(ColumnBatch),
    /// Reply with a snapshot of the replica and counters. FIFO ordering
    /// makes this a barrier for everything sent before it.
    Drain(Sender<Snapshot>),
    /// Test hook: panic inside the worker to exercise propagation.
    #[cfg(test)]
    Poison,
}

/// A worker's state at a drain barrier.
pub(super) struct Snapshot {
    pub(super) inst: Instance,
    pub(super) fuel_spent: u64,
    pub(super) aborted: u64,
}

/// Coordinator side of the worker pool. Owned by
/// [`ShardedDigest`](super::ShardedDigest) behind a `RefCell` so
/// `&self` accessors can run drain barriers.
pub(super) struct Plane {
    flush_rows: usize,
    /// `(input position, schema field index)` for every input the
    /// program actually reads. Only these columns are materialized —
    /// unused inputs never touch the batch (the evaluators never read
    /// them), which matters when a digest reads 4 fields of an
    /// 18-field record.
    active: Vec<(usize, usize)>,
    builders: Vec<ColumnBatch>,
    /// Full batches awaiting burst shipment, FIFO per shard.
    staged: Vec<Vec<ColumnBatch>>,
    txs: Vec<Sender<WorkerMsg>>,
    recycled: Vec<Receiver<ColumnBatch>>,
    workers: Vec<Option<JoinHandle<()>>>,
    pub(super) per_shard_events: Vec<u64>,
    /// Reusable per-batch shard-id scratch for [`Plane::ingest_rows`].
    shard_scratch: Vec<u8>,
}

impl Plane {
    /// Spawns `shards` workers, each compiling its own batch evaluator
    /// (or falling back to the scalar VM when the program does not
    /// vectorize). `field_indices[i]` is the schema field position of
    /// program input `i`.
    pub(super) fn spawn(
        program: &Program,
        plan: &MergePlan,
        fuel_bound: u64,
        field_indices: &[usize],
        shards: usize,
        flush_rows: usize,
    ) -> Plane {
        let n_inputs = field_indices.len();
        let used = program.used_inputs();
        let active: Vec<(usize, usize)> = field_indices
            .iter()
            .enumerate()
            .filter(|(input, _)| used[*input])
            .map(|(input, &field)| (input, field))
            .collect();
        // Workers rebuild each batch's column views from the same
        // layout parameters the producer writes with.
        let active_inputs: Vec<usize> = active.iter().map(|&(input, _)| input).collect();
        let mut txs = Vec::with_capacity(shards);
        let mut recycled = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = bounded::<WorkerMsg>(CHANNEL_BATCHES);
            let (back_tx, back_rx) = unbounded::<ColumnBatch>();
            let program = program.clone();
            let plan = plan.clone();
            let active_inputs = active_inputs.clone();
            let handle = std::thread::Builder::new()
                .name(format!("digest-worker-{shard}"))
                .spawn(move || {
                    worker_loop(
                        &program,
                        &plan,
                        fuel_bound,
                        n_inputs,
                        &active_inputs,
                        flush_rows,
                        &rx,
                        &back_tx,
                    )
                })
                .expect("spawn digest worker");
            txs.push(tx);
            recycled.push(back_rx);
            workers.push(Some(handle));
        }
        Plane {
            flush_rows,
            builders: (0..shards)
                .map(|_| ColumnBatch::new(active.len(), flush_rows))
                .collect(),
            staged: (0..shards)
                .map(|_| Vec::with_capacity(STAGE_BATCHES))
                .collect(),
            active,
            txs,
            recycled,
            workers,
            per_shard_events: vec![0; shards],
            shard_scratch: Vec::new(),
        }
    }

    pub(super) fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Appends one record to its shard's builder, flushing the builder
    /// to the worker when it reaches the batch size. `row` is a full
    /// schema row of raw bits; the plane's field mapping selects the
    /// (used) program inputs from it.
    pub(super) fn ingest_row(&mut self, shard: usize, row: &[i64]) {
        let b = &mut self.builders[shard];
        let mut slot = b.rows;
        for &(_, field) in &self.active {
            b.buf[slot] = row[field];
            slot += self.flush_rows;
        }
        b.rows += 1;
        self.per_shard_events[shard] += 1;
        if b.rows >= self.flush_rows {
            self.flush_shard(shard);
        }
    }

    /// Same as [`ingest_row`](Plane::ingest_row) for a row already in
    /// program-input order (the `Value`-typed ingest path).
    pub(super) fn ingest_mapped(&mut self, shard: usize, mapped: &[i64]) {
        let b = &mut self.builders[shard];
        let mut slot = b.rows;
        for &(input, _) in &self.active {
            b.buf[slot] = mapped[input];
            slot += self.flush_rows;
        }
        b.rows += 1;
        self.per_shard_events[shard] += 1;
        if b.rows >= self.flush_rows {
            self.flush_shard(shard);
        }
    }

    /// Batch ingest: `keys[i]` dispatches `rows[i * stride..][..stride]`.
    /// Shard placement hashes run as a pre-pass over the whole key
    /// slice, so the FNV-1a multiply chains of different keys overlap
    /// in the pipeline instead of serializing record by record; the
    /// builder-append loop then runs without per-record call overhead.
    /// The scatter loop is monomorphized per active-column count so the
    /// compiler unrolls it and keeps the field indices in registers —
    /// digest programs read a handful of an 18-field record, and the
    /// dynamic loop's bookkeeping is measurable at digest rates.
    pub(super) fn ingest_rows(&mut self, keys: &[u64], rows: &[i64], stride: usize) {
        let nshards = self.txs.len();
        let mut shard_ids = std::mem::take(&mut self.shard_scratch);
        shard_ids.clear();
        shard_ids.extend(
            keys.iter()
                .map(|&k| super::place(super::fnv1a(k), nshards) as u8),
        );
        match self.active.len() {
            1 => self.scatter_rows::<1>(&shard_ids, rows, stride),
            2 => self.scatter_rows::<2>(&shard_ids, rows, stride),
            3 => self.scatter_rows::<3>(&shard_ids, rows, stride),
            4 => self.scatter_rows::<4>(&shard_ids, rows, stride),
            5 => self.scatter_rows::<5>(&shard_ids, rows, stride),
            6 => self.scatter_rows::<6>(&shard_ids, rows, stride),
            _ => self.scatter_rows_dyn(&shard_ids, rows, stride),
        }
        self.shard_scratch = shard_ids;
    }

    /// Scatter for programs reading exactly `K` inputs: the field list
    /// lives in a fixed array, so the per-record copy is branch-free
    /// straight-line code after unrolling.
    fn scatter_rows<const K: usize>(&mut self, shard_ids: &[u8], rows: &[i64], stride: usize) {
        let mut fields = [0usize; K];
        for (f, &(_, field)) in fields.iter_mut().zip(&self.active) {
            *f = field;
        }
        let flush = self.flush_rows;
        for (&shard, row) in shard_ids.iter().zip(rows.chunks_exact(stride)) {
            let shard = shard as usize;
            let b = &mut self.builders[shard];
            let mut slot = b.rows;
            for &field in &fields {
                b.buf[slot] = row[field];
                slot += flush;
            }
            b.rows += 1;
            if b.rows >= flush {
                self.flush_shard(shard);
            }
        }
        // Event accounting runs as its own pass over the (L1-resident)
        // id slice, keeping the scatter loop to copy work only.
        for &shard in shard_ids {
            self.per_shard_events[shard as usize] += 1;
        }
    }

    /// Fallback scatter for programs reading more inputs than the
    /// monomorphized variants cover.
    fn scatter_rows_dyn(&mut self, shard_ids: &[u8], rows: &[i64], stride: usize) {
        let flush = self.flush_rows;
        for (&shard, row) in shard_ids.iter().zip(rows.chunks_exact(stride)) {
            let shard = shard as usize;
            let b = &mut self.builders[shard];
            let mut slot = b.rows;
            for &(_, field) in &self.active {
                b.buf[slot] = row[field];
                slot += flush;
            }
            b.rows += 1;
            if b.rows >= flush {
                self.flush_shard(shard);
            }
        }
        for &shard in shard_ids {
            self.per_shard_events[shard as usize] += 1;
        }
    }

    fn next_batch(&mut self, shard: usize) -> ColumnBatch {
        match self.recycled[shard].try_recv() {
            Ok(mut b) => {
                b.clear();
                b
            }
            Err(_) => ColumnBatch::new(self.active.len(), self.flush_rows),
        }
    }

    /// Stages the shard's builder and ships a burst once enough batches
    /// have accumulated (see [`STAGE_BATCHES`]).
    fn flush_shard(&mut self, shard: usize) {
        if self.builders[shard].rows == 0 {
            return;
        }
        let fresh = self.next_batch(shard);
        let full = std::mem::replace(&mut self.builders[shard], fresh);
        self.staged[shard].push(full);
        if self.staged[shard].len() >= STAGE_BATCHES {
            self.ship_shard(shard);
        }
    }

    /// Sends the shard's staged batches back-to-back: one worker wake
    /// services the whole burst.
    fn ship_shard(&mut self, shard: usize) {
        let mut staged = std::mem::take(&mut self.staged[shard]);
        for full in staged.drain(..) {
            if self.txs[shard].send(WorkerMsg::Batch(full)).is_err() {
                self.propagate_death(shard);
            }
        }
        self.staged[shard] = staged;
    }

    /// Ships every partial builder and staged batch to its worker
    /// without waiting for evaluation.
    pub(super) fn flush_all(&mut self) {
        for shard in 0..self.txs.len() {
            self.flush_shard(shard);
            self.ship_shard(shard);
        }
    }

    /// Flushes every partial builder and waits for every worker to
    /// answer a drain barrier. Returns snapshots in shard order, so the
    /// caller's fold order is deterministic no matter how threads were
    /// scheduled.
    pub(super) fn drain(&mut self) -> Vec<Snapshot> {
        self.flush_all();
        let mut replies = Vec::with_capacity(self.txs.len());
        for shard in 0..self.txs.len() {
            let (reply_tx, reply_rx) = bounded::<Snapshot>(1);
            if self.txs[shard].send(WorkerMsg::Drain(reply_tx)).is_err() {
                self.propagate_death(shard);
            }
            replies.push(reply_rx);
        }
        replies
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| match rx.recv() {
                Ok(snap) => snap,
                Err(_) => self.propagate_death(shard),
            })
            .collect()
    }

    /// Test hook: make one worker panic so lifecycle tests can assert
    /// the panic surfaces instead of hanging a fold.
    #[cfg(test)]
    pub(super) fn inject_panic(&mut self, shard: usize) {
        let _ = self.txs[shard].send(WorkerMsg::Poison);
    }

    /// A send or recv against `shard` failed: the worker is gone. Join
    /// it and re-raise its panic payload so the failure carries the
    /// original message, not a channel error.
    fn propagate_death(&mut self, shard: usize) -> ! {
        if let Some(handle) = self.workers[shard].take() {
            match handle.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(()) => panic!("digest worker {shard} exited before its channel closed"),
            }
        }
        panic!("digest worker {shard} died and was already joined");
    }
}

impl Drop for Plane {
    fn drop(&mut self) {
        // Closing the channels ends every worker loop.
        self.txs.clear();
        let panicked: Vec<_> = self
            .workers
            .iter_mut()
            .filter_map(|w| w.take())
            .filter_map(|h| h.join().err())
            .collect();
        if let Some(payload) = panicked.into_iter().next() {
            // Don't turn an unwind already in progress into an abort.
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl std::fmt::Debug for Plane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plane")
            .field("shards", &self.txs.len())
            .field("flush_rows", &self.flush_rows)
            .field("per_shard_events", &self.per_shard_events)
            .finish_non_exhaustive()
    }
}

/// Body of one shard worker: fold batches into the owned replica until
/// the coordinator hangs up. `active_inputs` and `flush_rows` describe
/// the flat batch layout (see [`ColumnBatch`]): the `j`-th entry of
/// `active_inputs` is the program input whose column sits at offset
/// `j * flush_rows`.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    program: &Program,
    plan: &MergePlan,
    fuel_bound: u64,
    n_inputs: usize,
    active_inputs: &[usize],
    flush_rows: usize,
    rx: &Receiver<WorkerMsg>,
    back_tx: &Sender<ColumnBatch>,
) {
    let mut inst = Instance::new(program);
    let mut batch_eval = BatchEval::try_compile(program, plan, fuel_bound);
    let mut fuel_spent = 0u64;
    let mut aborted = 0u64;
    let mut row_scratch = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Batch(batch) => {
                // Unused inputs get an empty column: neither evaluator
                // reads them (the vectorized one length-checks only
                // used inputs; the scalar VM never loads them, so any
                // placeholder bits do).
                let mut cols: Vec<&[i64]> = vec![&[]; n_inputs];
                for (j, &input) in active_inputs.iter().enumerate() {
                    cols[input] = batch.col(j, flush_rows);
                }
                match &mut batch_eval {
                    Some(be) => {
                        fuel_spent += be.run(&mut inst, &cols, batch.rows);
                    }
                    // Scalar fallback for programs outside the
                    // vectorizable class: row-at-a-time, same replica.
                    None => {
                        for r in 0..batch.rows {
                            row_scratch.clear();
                            row_scratch.extend(cols.iter().map(|c| {
                                if c.is_empty() {
                                    0
                                } else {
                                    c[r]
                                }
                            }));
                            match inst.run_raw(&row_scratch, fuel_bound) {
                                Ok(out) => fuel_spent += out.fuel_used,
                                Err(_) => {
                                    aborted += 1;
                                    fuel_spent += fuel_bound;
                                }
                            }
                        }
                    }
                }
                drop(cols);
                // The coordinator may have stopped recycling; that is
                // not the worker's problem.
                let _ = back_tx.send(batch);
            }
            WorkerMsg::Drain(reply) => {
                let _ = reply.send(Snapshot {
                    inst: inst.clone(),
                    fuel_spent,
                    aborted,
                });
            }
            #[cfg(test)]
            WorkerMsg::Poison => panic!("digest worker poisoned by test"),
        }
    }
}
