//! Sharded digest evaluation: N replica instances of one E-Code
//! program, partitioned by flow key, folded back with the program's
//! [`MergePlan`].
//!
//! A *digest* is an E-Code program whose statics accumulate across
//! every ingested record — unlike a subscription [`Filter`](crate::Hub),
//! which resets its statics per record. When the verifier proves every
//! static shard-safe ([`MergePlan::fully_mergeable`]), the digest runs
//! as `shards` independent replicas, each owned by a dedicated worker
//! thread (see [`plane`]); records are dispatched by a deterministic
//! FNV-1a hash of their flow key into per-shard *columnar batches*
//! (one column of raw input bits per program input), and the workers
//! evaluate whole batches at a time — vectorized via
//! [`ecode::BatchEval`] when the program admits it, scalar otherwise.
//! [`ShardedDigest::merged`] quiesces the workers (flush + drain
//! barrier) and folds the replicas into the exact statics a single
//! sequential instance would hold. Programs with any
//! `Opaque`/`LastWriteWins` slot silently fall back to one inline
//! instance — no threads, no batching, no flow-key hashing —
//! correctness never depends on the caller checking the plan first.
//!
//! Why thread scheduling cannot leak into results: batches reach each
//! shard in ingest order over a FIFO channel, each shard's statics
//! evolve only from its own stream, and the fold algebra is proven
//! order-insensitive per slot — so the only nondeterminism threads add
//! (who runs when) is invisible to the folded statics. DESIGN.md §11
//! develops the full argument.

mod plane;

use std::cell::RefCell;

use ecode::{Instance, MergeError, MergePlan, Type, Value as EValue, VerifyLimits, VerifyReport};
use pbio::{FieldType, Schema, Value};

use crate::PubSubError;
use plane::Plane;

/// Worst-case fuel a digest program may cost per record. Same budget as
/// subscription filters: digests run on the GPA's ingest path, which is
/// hot for exactly the same reason the publish path is.
pub const DIGEST_FUEL_BUDGET: u64 = 10_000;

/// Tuning knobs for the parallel digest plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestConfig {
    /// Records buffered per shard before the batch ships to its worker.
    /// The default amortizes worker wake-ups and dispatch overhead
    /// across ~4k rows while keeping per-shard columns comfortably
    /// inside L2; sizes past ~16k rows spill the builders out of cache
    /// and cost more than the wake-ups they save.
    pub flush_rows: usize,
}

impl Default for DigestConfig {
    fn default() -> Self {
        DigestConfig { flush_rows: 4096 }
    }
}

/// Evaluation statistics, for overhead accounting and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestStats {
    /// Shard count the caller asked for.
    pub requested_shards: usize,
    /// Shard count actually running (1 when the plan forced fallback).
    pub shards: usize,
    /// Whether the digest is running more than one replica.
    pub sharded: bool,
    /// Records ingested, total.
    pub events: u64,
    /// Records ingested per shard, in shard order.
    pub per_shard_events: Vec<u64>,
    /// Records skipped because their values did not match the schema
    /// the digest was compiled against.
    pub skipped: u64,
    /// Total E-Code fuel burned (host converts to CPU cost).
    pub fuel_spent: u64,
    /// Runs that trapped at runtime (statics may be partially updated;
    /// counted, not hidden).
    pub aborted: u64,
}

/// The evaluation engine behind a digest.
enum Engine {
    /// One inline replica, evaluated on the caller's thread with the
    /// scalar VM. Used for `shards == 1` and for non-mergeable
    /// programs; pays no flow-key hash, no batching, no channels.
    Single {
        inst: Instance,
        events: u64,
        fuel_spent: u64,
        aborted: u64,
    },
    /// K worker threads fed columnar batches. Behind a `RefCell` so
    /// `&self` accessors (`merged`, `stats`) can run drain barriers.
    Parallel(RefCell<Plane>),
}

/// A compiled digest program running as one or more shard replicas.
///
/// Records' numeric and boolean fields are visible to the program as
/// E-Code inputs by field name, exactly like subscription filters;
/// string/bytes fields are skipped.
pub struct ShardedDigest {
    program: ecode::Program,
    plan: MergePlan,
    engine: Engine,
    requested_shards: usize,
    n_schema_fields: usize,
    /// Indices of the record fields that are program inputs, in input order.
    field_indices: Vec<usize>,
    /// Reusable program-input-ordered scratch row.
    raw_row: Vec<i64>,
    /// Statically proven worst-case fuel per evaluation.
    fuel_bound: u64,
    /// Execution tier every replica runs on. Tier selection is a pure
    /// function of the program, so one probe at compile time speaks for
    /// all shards (including the parallel plane's worker-local replicas).
    tier: ecode::ExecTier,
    skipped: u64,
    /// Lazily computed fold of the replicas, invalidated on ingest.
    /// `merged()`/`merged_global()` sit on the stats/query path and are
    /// typically called several times between ingests; one fold (and,
    /// for the parallel engine, one drain barrier) serves them all.
    merged_cache: RefCell<Option<Instance>>,
}

/// Deterministic 64-bit FNV-1a over the key's little-endian bytes.
/// Chosen over `std` hashing because shard placement must be identical
/// across runs, builds, and hosts (replay bit-stability).
fn fnv1a(key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps a placement hash onto `n` shards. Power-of-two counts (the
/// common configuration) take a mask instead of a hardware divide —
/// the divide's ~25-cycle latency is visible at digest ingest rates.
fn place(h: u64, n: usize) -> usize {
    if n.is_power_of_two() {
        (h & (n as u64 - 1)) as usize
    } else {
        (h % n as u64) as usize
    }
}

impl ShardedDigest {
    /// Compiles `src` against `schema` and provisions replicas with the
    /// default [`DigestConfig`].
    ///
    /// `shards` is the *requested* replica count; the digest actually
    /// shards only when the verifier proves every static shard-safe.
    /// The verification itself is ordinary (no `require_mergeable`):
    /// non-mergeable digests are legal, they just run single-instance.
    pub fn compile(
        src: &str,
        schema: &Schema,
        shards: usize,
    ) -> Result<ShardedDigest, PubSubError> {
        Self::compile_with(src, schema, shards, DigestConfig::default())
    }

    /// [`compile`](ShardedDigest::compile) with explicit plane tuning.
    pub fn compile_with(
        src: &str,
        schema: &Schema,
        shards: usize,
        config: DigestConfig,
    ) -> Result<ShardedDigest, PubSubError> {
        let mut inputs: Vec<(&str, Type)> = Vec::new();
        let mut field_indices = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            let ty = match f.ty {
                FieldType::U64 | FieldType::I64 => Type::Int,
                FieldType::F64 => Type::Double,
                FieldType::Bool => Type::Bool,
                FieldType::Str | FieldType::Bytes => continue,
            };
            inputs.push((f.name.as_str(), ty));
            field_indices.push(i);
        }
        let verified = ecode::verify(
            src,
            &inputs,
            &VerifyLimits::with_max_fuel(DIGEST_FUEL_BUDGET),
        )
        .map_err(PubSubError::BadFilter)?;
        let (program, report) = verified.into_parts();
        let VerifyReport {
            fuel_bound,
            merge_plan,
            ..
        } = report;
        let tier = Instance::new(&program).tier();
        let engine = if shards > 1 && merge_plan.fully_mergeable() {
            Engine::Parallel(RefCell::new(Plane::spawn(
                &program,
                &merge_plan,
                fuel_bound,
                &field_indices,
                shards,
                config.flush_rows.max(1),
            )))
        } else {
            Engine::Single {
                inst: Instance::new(&program),
                events: 0,
                fuel_spent: 0,
                aborted: 0,
            }
        };
        Ok(ShardedDigest {
            program,
            plan: merge_plan,
            engine,
            requested_shards: shards,
            n_schema_fields: schema.fields().len(),
            field_indices,
            raw_row: Vec::new(),
            fuel_bound,
            tier,
            skipped: 0,
            merged_cache: RefCell::new(None),
        })
    }

    /// Whether the plan admitted more than one replica.
    pub fn is_sharded(&self) -> bool {
        self.shard_count() > 1
    }

    /// Number of replicas actually running.
    pub fn shard_count(&self) -> usize {
        match &self.engine {
            Engine::Single { .. } => 1,
            Engine::Parallel(p) => p.borrow().shards(),
        }
    }

    /// The shard-safety classification the replica count was decided by.
    pub fn plan(&self) -> &MergePlan {
        &self.plan
    }

    /// Statically proven worst-case fuel per record.
    pub fn fuel_bound(&self) -> u64 {
        self.fuel_bound
    }

    /// The execution tier every replica runs on — `Compiled` when the
    /// program passed the [`ecode::CompileBudget`] heuristic, `Fused`
    /// otherwise. Per-shard replicas all make the same (deterministic)
    /// choice, and the tiers are observably identical, so `merge_from`
    /// folds stay bit-identical regardless of tier.
    pub fn tier(&self) -> ecode::ExecTier {
        self.tier
    }

    /// Which shard a flow key lands on. Deterministic: identical across
    /// runs and shard-local (a flow's records always meet the same
    /// replica, so per-flow sequential semantics are preserved). The
    /// single-replica engine never hashes — one shard needs no
    /// placement.
    pub fn shard_of(&self, key: u64) -> usize {
        match self.shard_count() {
            1 => 0,
            n => place(fnv1a(key), n),
        }
    }

    /// Feeds one record (dispatched by `key`) to its shard's replica.
    ///
    /// The parallel engine buffers the record into a columnar batch;
    /// effects become observable at the next barrier
    /// ([`merged`](ShardedDigest::merged) / [`stats`](ShardedDigest::stats)),
    /// which is where batches are flushed and workers quiesced.
    pub fn ingest(&mut self, key: u64, values: &[Value]) {
        self.raw_row.clear();
        for &i in &self.field_indices {
            let v = match values.get(i) {
                Some(Value::U64(v)) => *v as i64,
                Some(Value::I64(v)) => *v,
                Some(Value::F64(v)) => v.to_bits() as i64,
                Some(Value::Bool(v)) => *v as i64,
                // The record does not match the schema this digest was
                // compiled for; count and move on rather than trap.
                _ => {
                    self.skipped += 1;
                    return;
                }
            };
            self.raw_row.push(v);
        }
        // The replicas' statics are about to change; drop the stale fold.
        self.merged_cache.get_mut().take();
        match &mut self.engine {
            Engine::Single {
                inst,
                events,
                fuel_spent,
                aborted,
            } => run_single(
                inst,
                &self.raw_row,
                self.fuel_bound,
                events,
                fuel_spent,
                aborted,
            ),
            Engine::Parallel(p) => {
                let p = p.get_mut();
                let shard = place(fnv1a(key), p.shards());
                p.ingest_mapped(shard, &self.raw_row);
            }
        }
    }

    /// Hot-path ingest: `row` holds one raw `i64` per schema field, in
    /// schema order (ints/bools as-is, doubles via `f64::to_bits`;
    /// entries at string/bytes positions are ignored). Skips the
    /// `Value` marshalling and per-field type checks of
    /// [`ingest`](ShardedDigest::ingest) — the caller owns the bit
    /// contract, which record types like `InteractionRecord::to_raw_row`
    /// satisfy by construction.
    pub fn ingest_raw(&mut self, key: u64, row: &[i64]) {
        if row.len() != self.n_schema_fields {
            self.skipped += 1;
            return;
        }
        self.merged_cache.get_mut().take();
        match &mut self.engine {
            Engine::Single {
                inst,
                events,
                fuel_spent,
                aborted,
            } => {
                self.raw_row.clear();
                for &i in &self.field_indices {
                    self.raw_row.push(row[i]);
                }
                run_single(
                    inst,
                    &self.raw_row,
                    self.fuel_bound,
                    events,
                    fuel_spent,
                    aborted,
                );
            }
            Engine::Parallel(p) => {
                let p = p.get_mut();
                let shard = place(fnv1a(key), p.shards());
                p.ingest_row(shard, row);
            }
        }
    }

    /// Batch form of [`ingest_raw`](ShardedDigest::ingest_raw):
    /// `keys[i]` dispatches the row at `rows[i * stride..][..stride]`
    /// where `stride` is the schema field count. This is the digest
    /// plane's preferred entry point: shard placement hashes run as a
    /// pre-pass over the contiguous key slice — the FNV-1a rounds of
    /// different keys overlap in flight instead of serializing behind
    /// one record's dispatch — and the per-call bookkeeping (cache
    /// invalidation, engine dispatch) is paid once per batch.
    ///
    /// A `rows` length that is not `keys.len() * stride` skips the
    /// whole call (counted per record), mirroring the per-record
    /// arity rule.
    pub fn ingest_raw_rows(&mut self, keys: &[u64], rows: &[i64]) {
        let stride = self.n_schema_fields;
        if keys.len().checked_mul(stride) != Some(rows.len()) {
            self.skipped += keys.len() as u64;
            return;
        }
        if keys.is_empty() {
            return;
        }
        self.merged_cache.get_mut().take();
        match &mut self.engine {
            Engine::Single {
                inst,
                events,
                fuel_spent,
                aborted,
            } => {
                for row in rows.chunks_exact(stride) {
                    self.raw_row.clear();
                    for &i in &self.field_indices {
                        self.raw_row.push(row[i]);
                    }
                    run_single(
                        inst,
                        &self.raw_row,
                        self.fuel_bound,
                        events,
                        fuel_spent,
                        aborted,
                    );
                }
            }
            Engine::Parallel(p) => p.get_mut().ingest_rows(keys, rows, stride),
        }
    }

    /// Ships any partially-filled per-shard batches to the workers
    /// without waiting for them to be evaluated. Hosts call this at
    /// report boundaries (the plane's "time threshold" — the simulator
    /// has no wall clock) so records do not linger in builders between
    /// barriers. No-op for the single-replica engine.
    pub fn flush(&mut self) {
        if let Engine::Parallel(p) = &mut self.engine {
            p.get_mut().flush_all();
        }
    }

    /// Folds every replica's statics into a fresh instance per the plan.
    ///
    /// For the parallel engine this is a *drain barrier*: partial
    /// batches are flushed, every worker answers a FIFO drain message,
    /// and the snapshots are folded in shard order. A fresh instance
    /// (statics at their declared initial values) is the identity
    /// element of each shard-safe fold, so folding shards into it
    /// yields exactly the sequential statics. With one replica this
    /// degenerates to a copy, so the accessor works uniformly for
    /// fallback digests too.
    pub fn merged(&self) -> Result<Instance, MergeError> {
        if let Engine::Single { inst, .. } = &self.engine {
            // Fallback digests may hold non-mergeable plans; a single
            // replica needs no folding.
            return Ok(inst.clone());
        }
        self.ensure_merged()?;
        Ok(self
            .merged_cache
            .borrow()
            .as_ref()
            .expect("ensure_merged filled the cache")
            .clone())
    }

    /// Runs the drain-and-fold into the cache unless it is already fresh.
    fn ensure_merged(&self) -> Result<(), MergeError> {
        if self.merged_cache.borrow().is_some() {
            return Ok(());
        }
        let Engine::Parallel(p) = &self.engine else {
            return Ok(());
        };
        let snapshots = p.borrow_mut().drain();
        let mut acc = Instance::new(&self.program);
        for snap in &snapshots {
            acc.merge_from(&snap.inst, &self.plan)?;
        }
        *self.merged_cache.borrow_mut() = Some(acc);
        Ok(())
    }

    /// Reads a static variable of the *merged* state by name. Repeated
    /// reads between ingests share one drain + fold via the cache.
    pub fn merged_global(&self, name: &str) -> Option<EValue> {
        if let Engine::Single { inst, .. } = &self.engine {
            return inst.global(name);
        }
        self.ensure_merged().ok()?;
        self.merged_cache.borrow().as_ref()?.global(name)
    }

    /// Current evaluation statistics. For the parallel engine this is a
    /// drain barrier (fuel and abort counts live in the workers).
    pub fn stats(&self) -> DigestStats {
        match &self.engine {
            Engine::Single {
                events,
                fuel_spent,
                aborted,
                ..
            } => DigestStats {
                requested_shards: self.requested_shards,
                shards: 1,
                sharded: false,
                events: *events,
                per_shard_events: vec![*events],
                skipped: self.skipped,
                fuel_spent: *fuel_spent,
                aborted: *aborted,
            },
            Engine::Parallel(p) => {
                let mut p = p.borrow_mut();
                let snapshots = p.drain();
                DigestStats {
                    requested_shards: self.requested_shards,
                    shards: p.shards(),
                    sharded: true,
                    events: p.per_shard_events.iter().sum(),
                    per_shard_events: p.per_shard_events.clone(),
                    skipped: self.skipped,
                    fuel_spent: snapshots.iter().map(|s| s.fuel_spent).sum(),
                    aborted: snapshots.iter().map(|s| s.aborted).sum(),
                }
            }
        }
    }

    /// Test hook: make one worker panic to exercise propagation.
    #[cfg(test)]
    fn inject_panic(&mut self, shard: usize) {
        if let Engine::Parallel(p) = &mut self.engine {
            p.get_mut().inject_panic(shard);
        }
    }
}

/// Inline scalar evaluation for the single-replica engine.
fn run_single(
    inst: &mut Instance,
    row: &[i64],
    fuel_bound: u64,
    events: &mut u64,
    fuel_spent: &mut u64,
    aborted: &mut u64,
) {
    // Statics persist across records — that is the point of a digest.
    match inst.run_raw(row, fuel_bound) {
        Ok(out) => *fuel_spent += out.fuel_used,
        Err(_) => {
            // A runtime trap (input-dependent division by zero, say)
            // leaves the statics partially updated, just as it would a
            // sequential instance.
            *aborted += 1;
            *fuel_spent += fuel_bound;
        }
    }
    *events += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio::Schema;

    fn schema() -> Schema {
        Schema::build("rec")
            .field("size", FieldType::U64)
            .field("port", FieldType::U64)
            .finish()
            .unwrap()
    }

    const MERGEABLE: &str = "
        static int count = 0;
        static int bytes = 0;
        static int biggest = 0;
        static bool saw_admin = false;
        count = count + 1;
        bytes = bytes + size;
        biggest = max(biggest, size);
        if (port < 1024) { saw_admin = true; }
        return count;
    ";

    #[test]
    fn mergeable_digest_shards_and_folds_exactly() {
        let schema = schema();
        let mut seq = ShardedDigest::compile(MERGEABLE, &schema, 1).unwrap();
        let mut sharded = ShardedDigest::compile(MERGEABLE, &schema, 4).unwrap();
        assert!(!seq.is_sharded());
        assert!(sharded.is_sharded());
        assert_eq!(sharded.shard_count(), 4);
        // Both engines must agree on the (deterministic) execution tier,
        // and the canonical mergeable digest fits the default budget.
        assert_eq!(seq.tier(), ecode::ExecTier::Compiled);
        assert_eq!(sharded.tier(), seq.tier());

        for i in 0..100u64 {
            let rec = [
                Value::U64(i * 37 % 91),
                Value::U64(if i % 5 == 0 { 80 } else { 9000 }),
            ];
            seq.ingest(i % 7, &rec);
            sharded.ingest(i % 7, &rec);
        }
        let a = seq.merged().unwrap();
        let b = sharded.merged().unwrap();
        assert_eq!(a.raw_globals(), b.raw_globals(), "fold must be bit-exact");
        assert_eq!(sharded.merged_global("count"), Some(EValue::Int(100)));
        assert_eq!(sharded.merged_global("saw_admin"), Some(EValue::Bool(true)));

        let stats = sharded.stats();
        assert_eq!(stats.events, 100);
        assert_eq!(stats.per_shard_events.iter().sum::<u64>(), 100);
        assert!(stats.sharded);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.aborted, 0);
        assert!(stats.fuel_spent > 0);
        assert_eq!(stats.fuel_spent, seq.stats().fuel_spent, "fuel is exact");
    }

    #[test]
    fn opaque_digest_falls_back_to_one_instance() {
        // `acc * 2` scales accumulated state — classified Opaque — so
        // the requested 8 shards must collapse to 1.
        let src = "
            static int acc = 0;
            acc = acc * 2 + size;
            return acc;
        ";
        let d = ShardedDigest::compile(src, &schema(), 8).unwrap();
        assert!(!d.is_sharded());
        assert_eq!(d.shard_count(), 1);
        assert!(!d.plan().fully_mergeable());
        let stats = d.stats();
        assert_eq!(stats.requested_shards, 8);
        assert_eq!(stats.shards, 1);
    }

    #[test]
    fn merged_cache_invalidates_on_ingest() {
        let schema = schema();
        let mut d = ShardedDigest::compile(MERGEABLE, &schema, 4).unwrap();
        d.ingest(1, &[Value::U64(5), Value::U64(80)]);
        assert_eq!(d.merged_global("count"), Some(EValue::Int(1)));
        // Second read between ingests is served by the cached fold.
        assert_eq!(d.merged_global("bytes"), Some(EValue::Int(5)));
        // A new record must drop the stale fold.
        d.ingest(2, &[Value::U64(7), Value::U64(9000)]);
        assert_eq!(d.merged_global("count"), Some(EValue::Int(2)));
        assert_eq!(d.merged_global("bytes"), Some(EValue::Int(12)));
    }

    #[test]
    fn same_key_always_meets_the_same_shard() {
        let d = ShardedDigest::compile(MERGEABLE, &schema(), 8).unwrap();
        for key in 0..64u64 {
            assert_eq!(d.shard_of(key), d.shard_of(key));
            assert!(d.shard_of(key) < 8);
        }
    }

    #[test]
    fn raw_ingest_matches_value_ingest_bitwise() {
        let schema = schema();
        let mut by_value = ShardedDigest::compile(MERGEABLE, &schema, 4).unwrap();
        let mut by_raw = ShardedDigest::compile(MERGEABLE, &schema, 4).unwrap();
        for i in 0..300u64 {
            let size = i * 131 % 7919;
            let port = if i % 11 == 0 { 443 } else { 8080 };
            by_value.ingest(i, &[Value::U64(size), Value::U64(port)]);
            by_raw.ingest_raw(i, &[size as i64, port as i64]);
        }
        assert_eq!(
            by_value.merged().unwrap().raw_globals(),
            by_raw.merged().unwrap().raw_globals()
        );
        // A wrong-arity raw row is counted, not evaluated.
        by_raw.ingest_raw(0, &[1]);
        assert_eq!(by_raw.stats().skipped, 1);
    }

    /// Division by a record field bails the batch vectorizer (a zero
    /// lane would have to trap mid-batch), but the accumulator is still
    /// sum-mergeable — so this program runs sharded with every worker
    /// on the scalar-VM fallback. The fold must stay bit-exact with
    /// sequential, and a genuinely trapping record must surface in
    /// `aborted` identically on both engines.
    #[test]
    fn non_vectorizable_digest_uses_worker_scalar_fallback() {
        let src = "
            static int ratio_sum = 0;
            ratio_sum = ratio_sum + size / port;
            return ratio_sum;
        ";
        let schema = schema();
        let mut seq = ShardedDigest::compile(src, &schema, 1).unwrap();
        let mut sharded = ShardedDigest::compile(src, &schema, 4).unwrap();
        assert!(sharded.is_sharded(), "program must stay shardable");
        for i in 0..200u64 {
            let size = (i * 97 % 5000) as i64;
            let port = if i == 137 { 0 } else { (1 + i % 17) as i64 };
            seq.ingest_raw(i, &[size, port]);
            sharded.ingest_raw(i, &[size, port]);
        }
        assert_eq!(
            seq.merged().unwrap().raw_globals(),
            sharded.merged().unwrap().raw_globals()
        );
        let (s1, s2) = (seq.stats(), sharded.stats());
        assert_eq!(s1.aborted, 1, "the port-0 record must trap");
        assert_eq!(s2.aborted, 1);
        assert_eq!(s1.fuel_spent, s2.fuel_spent, "abort accounting is exact");
    }

    // ---------------------------------------------------------------
    // Worker lifecycle
    // ---------------------------------------------------------------

    /// Records buffered below the flush threshold must still be visible
    /// through a merge: `merged()` is a flush + drain barrier.
    #[test]
    fn merge_drains_partial_batches() {
        let mut d =
            ShardedDigest::compile_with(MERGEABLE, &schema(), 4, DigestConfig { flush_rows: 4096 })
                .unwrap();
        for i in 0..17u64 {
            d.ingest_raw(i, &[10, 80]);
        }
        assert_eq!(d.merged_global("count"), Some(EValue::Int(17)));
        let stats = d.stats();
        assert_eq!(stats.events, 17);
        assert!(stats.fuel_spent > 0, "drain must surface worker fuel");
    }

    /// Dropping a sharded digest with buffered records and live workers
    /// must terminate promptly (channels close, workers join).
    #[test]
    fn drop_shuts_workers_down_cleanly() {
        let mut d = ShardedDigest::compile(MERGEABLE, &schema(), 8).unwrap();
        for i in 0..100u64 {
            d.ingest_raw(i, &[i as i64, 80]);
        }
        drop(d); // must not hang or leak threads
    }

    /// A panicking worker must surface at the next barrier as a panic
    /// carrying the worker's payload — never a hung fold.
    #[test]
    fn worker_panic_propagates_to_merge() {
        let mut d = ShardedDigest::compile(MERGEABLE, &schema(), 4).unwrap();
        for i in 0..8u64 {
            d.ingest_raw(i, &[1, 80]);
        }
        d.inject_panic(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.merged()))
            .expect_err("merge after a worker panic must panic, not hang");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("poisoned"),
            "payload should be the worker's: {msg}"
        );
        // The digest is broken but must still drop without aborting.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(d)));
    }

    /// A panicking worker surfaces at drop too (propagated, not lost),
    /// when no barrier runs first.
    #[test]
    fn worker_panic_propagates_at_drop() {
        let mut d = ShardedDigest::compile(MERGEABLE, &schema(), 4).unwrap();
        d.ingest_raw(1, &[1, 80]);
        d.inject_panic(0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(d)))
            .expect_err("drop must re-raise the worker panic");
        drop(err);
    }

    // ---------------------------------------------------------------
    // Parallel ≡ sequential (property)
    // ---------------------------------------------------------------

    /// One digest per (shards, flush_rows) configuration, same stream,
    /// same statics — regardless of batch boundaries and scheduling.
    fn assert_stream_invariant(records: &[(u64, i64, i64)], shards: usize, flush_rows: usize) {
        let schema = schema();
        let mut seq = ShardedDigest::compile(MERGEABLE, &schema, 1).unwrap();
        let mut par =
            ShardedDigest::compile_with(MERGEABLE, &schema, shards, DigestConfig { flush_rows })
                .unwrap();
        for &(key, size, port) in records {
            seq.ingest_raw(key, &[size, port]);
            par.ingest_raw(key, &[size, port]);
        }
        let a = seq.merged().unwrap();
        let b = par.merged().unwrap();
        assert_eq!(
            a.raw_globals(),
            b.raw_globals(),
            "shards={shards} flush_rows={flush_rows}"
        );
        let (sa, sb) = (seq.stats(), par.stats());
        assert_eq!(sa.events, sb.events);
        assert_eq!(sa.fuel_spent, sb.fuel_spent, "fuel metering must be exact");
        assert_eq!(sa.aborted, sb.aborted);
    }

    #[allow(unused)] // a typecheck-only proptest elides macro bodies, orphaning these imports
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Parallel batched ingest ≡ sequential ingest on
            /// `raw_globals`, for random record streams, shard counts,
            /// and batch sizes (including 1: every record its own batch).
            #[test]
            fn prop_parallel_batched_equals_sequential(
                records in proptest::collection::vec(
                    (0u64..64, 0i64..100_000, 0i64..10_000), 0..400),
                shards in 2usize..9,
                flush_rows in 1usize..130,
            ) {
                assert_stream_invariant(&records, shards, flush_rows);
            }
        }
    }
}
