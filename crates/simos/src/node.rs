//! Per-node kernel state and statistics.

use std::collections::{HashMap, HashSet, VecDeque};

use kprof::{FileId, Kprof, Pid};
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FlowKey, Port};

use crate::process::Process;
use crate::socket::{Socket, SocketId};
use crate::{Disk, NodeConfig};

/// Cumulative CPU time by category. The categories add up to total busy
/// time; `monitor` is the perturbation SysProf itself causes — the paper's
/// overhead metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuUsage {
    /// Time in user mode (application compute).
    pub user: SimDuration,
    /// Time in kernel mode on behalf of processes (syscalls).
    pub kernel: SimDuration,
    /// Interrupt/softirq time (network stack processing).
    pub irq: SimDuration,
    /// Monitoring overhead (Kprof hooks, analyzer callbacks, daemon work).
    pub monitor: SimDuration,
}

impl CpuUsage {
    /// Total busy time.
    pub fn busy(&self) -> SimDuration {
        self.user + self.kernel + self.irq + self.monitor
    }

    /// Busy fraction of a window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            self.busy().as_secs_f64() / window.as_secs_f64()
        }
    }
}

/// Observable per-node counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Application payload bytes delivered to user space (or kernel
    /// daemons) on this node.
    pub bytes_received: u64,
    /// Application payload bytes submitted for send on this node.
    pub bytes_sent: u64,
    /// Packets that arrived at the NIC.
    pub packets_in: u64,
    /// Packets handed to the NIC for transmit.
    pub packets_out: u64,
    /// Packets dropped at the NIC ring (receive livelock).
    pub ring_drops: u64,
    /// Packets dropped at socket receive buffers.
    pub socket_drops: u64,
    /// Packets that arrived while this node was crashed.
    pub crash_drops: u64,
    /// Complete application messages delivered.
    pub messages_delivered: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// CPU time breakdown.
    pub cpu: CpuUsage,
}

/// What the CPU is doing right now.
#[derive(Debug)]
pub(crate) struct RunningQuantum {
    pub pid: Pid,
    pub end_handle: simcore::EventHandle,
    pub end_time: SimTime,
    pub kind: crate::world::QuantumKind,
    /// The quantum's own planned work (excludes context-switch cost and
    /// any time stolen by interrupts/monitoring).
    pub work: SimDuration,
    /// Time stolen by interrupts/monitoring during this quantum (already
    /// included in `end_time` stretches; excluded from the quantum's own
    /// work accounting).
    pub stolen: SimDuration,
}

/// One simulated machine: kernel state + instrumentation.
pub(crate) struct Node {
    pub id: NodeId,
    pub config: NodeConfig,
    pub kprof: Kprof,
    pub disk: Disk,
    pub procs: HashMap<Pid, Process>,
    pub runq: VecDeque<Pid>,
    pub running: Option<RunningQuantum>,
    /// CPU committed through this time by interrupt work while idle.
    pub cpu_busy_until: SimTime,
    pub last_pid: Option<Pid>,
    pub dispatch_pending: bool,
    pub sockets: HashMap<SocketId, Socket>,
    /// Inbound flow (src=peer, dst=local) → socket.
    pub flows: HashMap<FlowKey, SocketId>,
    pub listeners: HashMap<Port, Pid>,
    /// Ports served by kernel sinks (dissemination/pub-sub endpoints).
    pub sink_ports: HashSet<Port>,
    /// Kernel-side assembly sockets for sink traffic, keyed by rx flow.
    pub sink_socks: HashMap<FlowKey, Socket>,
    pub next_sock: u64,
    pub next_msg: u64,
    pub next_ephemeral: u16,
    /// Device transmit queue occupancy (bytes), for send backpressure.
    pub tx_queue_bytes: u64,
    /// Pids blocked waiting for tx queue space.
    pub tx_waiters: Vec<Pid>,
    /// Softirq pipeline horizon.
    pub softirq_busy_until: SimTime,
    /// Packets in the NIC ring / softirq backlog.
    pub rx_backlog: u32,
    /// (pid, file) pairs that have already emitted FileOpen.
    pub opened: HashSet<(Pid, FileId)>,
    pub stats: NodeStats,
}

impl Node {
    pub fn new(id: NodeId, config: NodeConfig) -> Self {
        Node {
            id,
            config,
            kprof: Kprof::new(id),
            disk: Disk::new(config.disk),
            procs: HashMap::new(),
            runq: VecDeque::new(),
            running: None,
            cpu_busy_until: SimTime::ZERO,
            last_pid: None,
            dispatch_pending: false,
            sockets: HashMap::new(),
            flows: HashMap::new(),
            listeners: HashMap::new(),
            sink_ports: HashSet::new(),
            sink_socks: HashMap::new(),
            next_sock: 1,
            next_msg: 1,
            next_ephemeral: 32768,
            tx_queue_bytes: 0,
            tx_waiters: Vec::new(),
            softirq_busy_until: SimTime::ZERO,
            rx_backlog: 0,
            opened: HashSet::new(),
            stats: NodeStats::default(),
        }
    }

    /// Allocates a node-local socket id.
    pub fn alloc_sock(&mut self) -> SocketId {
        let id = SocketId(self.next_sock);
        self.next_sock += 1;
        id
    }

    /// Allocates an ephemeral port.
    pub fn alloc_ephemeral(&mut self) -> Port {
        let p = Port(self.next_ephemeral);
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(32768);
        p
    }
}
