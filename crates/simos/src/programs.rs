//! Reusable building-block programs for tests, docs, and microbenchmarks.
//!
//! The real evaluation workloads (Iozone, httperf, RUBiS servlets, the NFS
//! proxy) live in the `sysprof-apps` crate; these are the simplest useful
//! programs.

use simcore::SimDuration;
use simnet::Port;

use crate::program::{Message, ProcCtx, Program};
use crate::SocketId;

/// Listens on a port and discards everything it receives (traffic counts
/// still appear in [`NodeStats`](crate::NodeStats)).
#[derive(Debug)]
pub struct SinkServer {
    port: Port,
}

impl SinkServer {
    /// A sink listening on `port`.
    pub fn new(port: Port) -> Self {
        SinkServer { port }
    }
}

impl Program for SinkServer {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(self.port);
    }
}

/// Connects to a remote listener, sends one message, and exits.
#[derive(Debug)]
pub struct OneShotSender {
    remote: simcore::NodeId,
    port: Port,
    bytes: u64,
}

impl OneShotSender {
    /// Sends `bytes` to `remote:port` once.
    pub fn new(remote: simcore::NodeId, port: Port, bytes: u64) -> Self {
        OneShotSender {
            remote,
            port,
            bytes,
        }
    }
}

impl Program for OneShotSender {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.remote, self.port);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        ctx.send(sock, self.bytes, 0);
        ctx.exit();
    }
}

/// Listens on a port and answers every message with a reply of fixed size,
/// after an optional service compute time. The reply reuses the request's
/// message id, so request/response pairs are correlated at the application
/// level (the monitor still never sees the ids).
#[derive(Debug)]
pub struct EchoServer {
    port: Port,
    reply_bytes: u64,
    service: SimDuration,
}

impl EchoServer {
    /// An echo server on `port` replying with `reply_bytes` after
    /// `service` compute per request.
    pub fn new(port: Port, reply_bytes: u64, service: SimDuration) -> Self {
        EchoServer {
            port,
            reply_bytes,
            service,
        }
    }
}

impl Program for EchoServer {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(self.port);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if !self.service.is_zero() {
            ctx.compute(self.service);
        }
        ctx.send_with_id(sock, self.reply_bytes, msg.kind + 1, msg.msg_id);
    }
}

/// Computes for a fixed total time, in chunks, then exits — a stand-in for
/// CPU-bound batch work (the linpack shape).
#[derive(Debug)]
pub struct ComputeLoop {
    total: SimDuration,
    chunk: SimDuration,
    done: SimDuration,
}

impl ComputeLoop {
    /// Computes for `total` time in `chunk`-sized pieces.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(total: SimDuration, chunk: SimDuration) -> Self {
        assert!(!chunk.is_zero(), "chunk must be non-zero");
        ComputeLoop {
            total,
            chunk,
            done: SimDuration::ZERO,
        }
    }

    fn step(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.done >= self.total {
            ctx.exit();
            return;
        }
        let next = self.chunk.min(self.total - self.done);
        self.done += next;
        ctx.compute(next);
        // Re-arm via a zero-length timer so progress shows up as distinct
        // scheduler activity rather than one monolithic op.
        ctx.sleep(SimDuration::ZERO, 0);
    }
}

impl Program for ComputeLoop {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        self.step(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
        self.step(ctx);
    }
}

/// Opens a connection and streams messages back-to-back for a duration —
/// the Iperf sender shape. Backpressure from the kernel's transmit queue
/// paces it to the link rate.
#[derive(Debug)]
pub struct BulkSender {
    remote: simcore::NodeId,
    port: Port,
    msg_bytes: u64,
    duration: SimDuration,
    started_at: Option<simcore::SimTime>,
    sock: Option<SocketId>,
}

impl BulkSender {
    /// Streams `msg_bytes`-sized messages to `remote:port` for `duration`.
    pub fn new(remote: simcore::NodeId, port: Port, msg_bytes: u64, duration: SimDuration) -> Self {
        BulkSender {
            remote,
            port,
            msg_bytes,
            duration,
            started_at: None,
            sock: None,
        }
    }

    fn pump(&mut self, ctx: &mut ProcCtx<'_>) {
        let Some(sock) = self.sock else { return };
        let started = self.started_at.expect("set on connect");
        if ctx.now().saturating_since(started) >= self.duration {
            ctx.close(sock);
            ctx.exit();
            return;
        }
        // Queue a burst, then yield via a zero timer; the send ops block
        // on tx backpressure when the device queue is full.
        for _ in 0..4 {
            ctx.send(sock, self.msg_bytes, 0);
        }
        ctx.sleep(SimDuration::ZERO, 0);
    }
}

impl Program for BulkSender {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.remote, self.port);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        self.started_at = Some(ctx.now());
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
        self.pump(ctx);
    }
}
