//! Sockets: kernel receive buffers, message reassembly, transmit
//! backpressure state.
//!
//! The receive buffer is byte-accounted: packets of in-flight messages
//! occupy buffer space until the owning process `recv`s the completed
//! message. A message that can never complete (a segment was dropped
//! upstream and there is no retransmission in the model) would pin its
//! bytes forever, so when the buffer is full the oldest *incomplete*
//! foreign assembly is evicted first — the moral equivalent of the kernel
//! reclaiming a stalled stream's buffers.

use std::collections::HashMap;

use kprof::Pid;
use simcore::SimTime;
use simnet::{EndPoint, FlowKey, Packet};

use crate::program::Message;

/// Node-local socket identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u64);

impl std::fmt::Display for SocketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sock{}", self.0)
    }
}

/// Reassembly state for one in-flight inbound message.
#[derive(Debug, Clone)]
struct Assembly {
    kind: u32,
    total: u64,
    received: u64,
    /// Packets (id, wire size) of this message held in the buffer.
    packets: Vec<(simnet::PacketId, u32)>,
    bytes_held: u64,
    first_enqueue: SimTime,
}

/// The packets (id, wire size) making up one delivered message.
pub type MessagePackets = Vec<(simnet::PacketId, u32)>;

/// A complete message queued for the application: the message, its
/// packets, when its first packet entered the buffer, and the buffer
/// bytes it holds.
type ReadyMessage = (Message, MessagePackets, SimTime, u64);

/// A connected socket endpoint in the simulated kernel.
#[derive(Debug)]
pub struct Socket {
    /// Node-local id.
    pub id: SocketId,
    /// Owning process.
    pub owner: Pid,
    /// Local `{ip, port}`.
    pub local: EndPoint,
    /// Remote `{ip, port}`.
    pub peer: EndPoint,
    /// Bytes currently queued in the transmit path (device queue share);
    /// the sender blocks when this exceeds the configured limit.
    pub tx_inflight: u64,
    /// Whether the owner is blocked waiting for tx space.
    pub tx_blocked: bool,
    /// True once closed; late packets are dropped.
    pub closed: bool,
    rx_capacity: u64,
    rx_bytes: u64,
    rx_high_water: u64,
    dropped: u64,
    evicted_assemblies: u64,
    assemblies: HashMap<u64, Assembly>,
    ready: Vec<ReadyMessage>,
}

impl Socket {
    /// Creates a socket with the given receive-buffer byte capacity.
    pub fn new(
        id: SocketId,
        owner: Pid,
        local: EndPoint,
        peer: EndPoint,
        rx_capacity_bytes: u64,
    ) -> Self {
        Socket {
            id,
            owner,
            local,
            peer,
            tx_inflight: 0,
            tx_blocked: false,
            closed: false,
            rx_capacity: rx_capacity_bytes,
            rx_bytes: 0,
            rx_high_water: 0,
            dropped: 0,
            evicted_assemblies: 0,
            assemblies: HashMap::new(),
            ready: Vec::new(),
        }
    }

    /// The flow key for traffic this socket sends (local → peer).
    pub fn tx_flow(&self) -> FlowKey {
        FlowKey::new(self.local, self.peer)
    }

    /// The flow key for traffic this socket receives (peer → local).
    pub fn rx_flow(&self) -> FlowKey {
        FlowKey::new(self.peer, self.local)
    }

    /// Evicts the oldest incomplete assembly other than `protect`,
    /// freeing its buffer bytes. Returns whether anything was evicted.
    fn evict_stalest(&mut self, protect: u64) -> bool {
        // Tie-break equal enqueue times by id: min_by_key alone would
        // resolve ties by HashMap iteration order.
        let victim = self
            .assemblies
            .iter()
            .filter(|(id, _)| **id != protect)
            .min_by_key(|(id, a)| (a.first_enqueue, **id))
            .map(|(id, _)| *id);
        match victim {
            Some(id) => {
                let a = self.assemblies.remove(&id).expect("victim exists");
                self.rx_bytes = self.rx_bytes.saturating_sub(a.bytes_held);
                self.dropped += a.packets.len() as u64;
                self.evicted_assemblies += 1;
                true
            }
            None => false,
        }
    }

    /// Offers an inbound packet to the kernel receive buffer at time `now`.
    ///
    /// Returns `true` if accepted, `false` if the buffer was full (the
    /// caller emits the drop event). On accept, reassembly state advances;
    /// a completed message moves to the ready queue.
    pub fn offer(&mut self, packet: Packet, now: SimTime) -> bool {
        if self.closed {
            return false;
        }
        let size = packet.size as u64;
        while self.rx_bytes.saturating_add(size) > self.rx_capacity {
            if !self.evict_stalest(packet.payload.msg_id) {
                self.dropped += 1;
                return false;
            }
        }
        self.rx_bytes += size;
        self.rx_high_water = self.rx_high_water.max(self.rx_bytes);

        let tag = packet.payload;
        let payload = packet.size.saturating_sub(Packet::HEADER_BYTES) as u64;
        let asm = self
            .assemblies
            .entry(tag.msg_id)
            .or_insert_with(|| Assembly {
                kind: tag.kind,
                total: tag.total_bytes,
                received: 0,
                packets: Vec::new(),
                bytes_held: 0,
                first_enqueue: now,
            });
        asm.received += payload;
        asm.bytes_held += size;
        asm.packets.push((packet.id, packet.size));
        if asm.received >= asm.total {
            let asm = self.assemblies.remove(&tag.msg_id).expect("just inserted");
            self.ready.push((
                Message {
                    msg_id: tag.msg_id,
                    kind: asm.kind,
                    bytes: asm.total,
                },
                asm.packets,
                asm.first_enqueue,
                asm.bytes_held,
            ));
        }
        true
    }

    /// Whether a complete message awaits delivery.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Number of complete messages awaiting delivery.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Peeks at the oldest complete message without consuming it: the
    /// message and its packet count (for costing the `recv` copy).
    pub fn peek_ready(&self) -> Option<(Message, usize)> {
        self.ready.first().map(|(m, pkts, _, _)| (*m, pkts.len()))
    }

    /// Takes the oldest complete message: the message, its packets
    /// (id + size, for per-packet delivery events), and the time its first
    /// packet entered the socket buffer. Frees the message's buffer bytes.
    pub fn take_ready(&mut self) -> Option<(Message, MessagePackets, SimTime)> {
        if self.ready.is_empty() {
            return None;
        }
        let (msg, packets, t, bytes) = self.ready.remove(0);
        self.rx_bytes = self.rx_bytes.saturating_sub(bytes);
        Some((msg, packets, t))
    }

    /// Bytes currently held in the kernel receive buffer.
    pub fn rx_backlog_bytes(&self) -> u64 {
        self.rx_bytes
    }

    /// Largest buffer occupancy seen.
    pub fn rx_high_water(&self) -> u64 {
        self.rx_high_water
    }

    /// Packets dropped or evicted at this socket's buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stalled incomplete assemblies reclaimed under buffer pressure.
    pub fn evicted_assemblies(&self) -> u64 {
        self.evicted_assemblies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Ip, PacketId, PayloadTag, Port};

    fn ep(ip: u32, port: u16) -> EndPoint {
        EndPoint::new(Ip(ip), Port(port))
    }

    fn sock() -> Socket {
        Socket::new(SocketId(1), Pid(1), ep(1, 80), ep(2, 9000), 1 << 20)
    }

    fn pkt(id: u64, msg: u64, payload: u32, total: u64) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowKey::new(ep(2, 9000), ep(1, 80)),
            size: payload + Packet::HEADER_BYTES,
            payload: PayloadTag::new(msg, 0, total),
        }
    }

    #[test]
    fn single_packet_message_completes() {
        let mut s = sock();
        assert!(s.offer(pkt(1, 5, 100, 100), SimTime::from_micros(3)));
        assert!(s.has_ready());
        let (msg, packets, t) = s.take_ready().unwrap();
        assert_eq!(msg.msg_id, 5);
        assert_eq!(msg.bytes, 100);
        assert_eq!(packets.len(), 1);
        assert_eq!(t, SimTime::from_micros(3));
        assert_eq!(s.rx_backlog_bytes(), 0);
    }

    #[test]
    fn multi_packet_message_assembles() {
        let mut s = sock();
        let total = 3000u64;
        assert!(s.offer(pkt(1, 7, 1434, total), SimTime::from_micros(1)));
        assert!(!s.has_ready());
        assert!(s.offer(pkt(2, 7, 1434, total), SimTime::from_micros(2)));
        assert!(!s.has_ready());
        assert!(s.offer(pkt(3, 7, 132, total), SimTime::from_micros(3)));
        assert!(s.has_ready());
        let (msg, packets, first) = s.take_ready().unwrap();
        assert_eq!(msg.bytes, total);
        assert_eq!(packets.len(), 3);
        assert_eq!(first, SimTime::from_micros(1));
    }

    #[test]
    fn interleaved_messages_assemble_independently() {
        let mut s = sock();
        s.offer(pkt(1, 1, 1434, 2000), SimTime::ZERO);
        s.offer(pkt(2, 2, 500, 500), SimTime::ZERO);
        assert!(s.has_ready(), "small message completed first");
        s.offer(pkt(3, 1, 566, 2000), SimTime::ZERO);
        let (m2, ..) = s.take_ready().unwrap();
        assert_eq!(m2.msg_id, 2);
        let (m1, ..) = s.take_ready().unwrap();
        assert_eq!(m1.msg_id, 1);
    }

    #[test]
    fn buffer_overflow_rejects_same_message_continuation() {
        let mut s = Socket::new(SocketId(1), Pid(1), ep(1, 80), ep(2, 9), 2000);
        assert!(s.offer(pkt(1, 1, 1434, 100_000), SimTime::ZERO));
        // Same message: its own assembly is protected from eviction, so
        // the buffer is genuinely full.
        assert!(
            !s.offer(pkt(2, 1, 1434, 100_000), SimTime::ZERO),
            "over 2000B cap"
        );
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn stalled_foreign_assembly_is_evicted_under_pressure() {
        let mut s = Socket::new(SocketId(1), Pid(1), ep(1, 80), ep(2, 9), 2000);
        // Message 1 is stuck (one of its packets was lost upstream).
        assert!(s.offer(pkt(1, 1, 1434, 100_000), SimTime::ZERO));
        // Message 2 arrives later and needs the space: msg 1 is reclaimed.
        assert!(s.offer(pkt(2, 2, 1434, 1434), SimTime::from_micros(9)));
        assert_eq!(s.evicted_assemblies(), 1);
        assert_eq!(s.dropped(), 1, "the zombie's packet counts as dropped");
        assert!(s.has_ready(), "message 2 completed");
        let (m, ..) = s.take_ready().unwrap();
        assert_eq!(m.msg_id, 2);
    }

    #[test]
    fn ready_messages_hold_bytes_until_taken() {
        let mut s = sock();
        s.offer(pkt(1, 1, 100, 100), SimTime::ZERO);
        assert!(
            s.rx_backlog_bytes() > 0,
            "undelivered message occupies buffer"
        );
        s.take_ready();
        assert_eq!(s.rx_backlog_bytes(), 0);
    }

    #[test]
    fn closed_socket_rejects() {
        let mut s = sock();
        s.closed = true;
        assert!(!s.offer(pkt(1, 1, 10, 10), SimTime::ZERO));
    }

    #[test]
    fn flow_keys_orient_correctly() {
        let s = sock();
        assert_eq!(s.tx_flow().src, s.local);
        assert_eq!(s.rx_flow().src, s.peer);
        assert_eq!(s.tx_flow().reversed(), s.rx_flow());
    }

    #[test]
    fn zero_byte_message_is_one_packet() {
        let mut s = sock();
        assert!(s.offer(pkt(1, 3, 0, 0), SimTime::ZERO));
        assert!(s.has_ready());
        let (msg, ..) = s.take_ready().unwrap();
        assert_eq!(msg.bytes, 0);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut s = sock();
        s.offer(pkt(1, 1, 1000, 2000), SimTime::ZERO);
        s.offer(pkt(2, 1, 1000, 2000), SimTime::ZERO);
        let peak = s.rx_high_water();
        s.take_ready();
        assert_eq!(s.rx_high_water(), peak, "high water does not decay");
        assert!(peak >= 2000);
    }
}
