//! Tunable cost constants for the simulated kernel.
//!
//! Defaults approximate the paper's testbed: a 2.8 GHz uniprocessor P4
//! running Linux 2.4 with a non-offloading gigabit NIC — a platform where
//! gigabit receive processing consumes most of a CPU (the era's "1 GHz per
//! Gbps" rule), which is what makes the Iperf overhead experiment (§3.1)
//! come out the way it does.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::DiskSpec;

/// Per-operation CPU costs and scheduler parameters for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Scheduler timeslice for compute-bound work.
    pub timeslice: SimDuration,
    /// Direct cost of a context switch.
    pub context_switch: SimDuration,
    /// Base cost of entering/leaving the kernel for a syscall.
    pub syscall_base: SimDuration,
    /// Cost per byte of copying between user and kernel space.
    pub copy_per_byte_ns: f64,
    /// NIC receive interrupt handling, per packet.
    pub rx_irq: SimDuration,
    /// Protocol (IP+TCP) receive processing, per packet (softirq).
    pub rx_stack: SimDuration,
    /// Per-packet cost of the user-copy step of `recv`.
    pub rx_deliver: SimDuration,
    /// Protocol transmit processing, per packet.
    pub tx_stack: SimDuration,
    /// NIC rx ring capacity in packets: softirq backlog beyond this drops
    /// arriving packets at the NIC (receive livelock).
    pub rx_ring_packets: u32,
    /// Socket receive buffer capacity in bytes.
    pub socket_rx_bytes: u64,
    /// Socket/device transmit queue capacity in bytes; senders block when
    /// it is full (backpressure) and wake when it drains below half.
    pub socket_tx_bytes: u64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            timeslice: SimDuration::from_millis(5),
            context_switch: SimDuration::from_micros(2),
            syscall_base: SimDuration::from_micros(1),
            copy_per_byte_ns: 1.4, // ~700 MB/s copy on the era's hardware
            rx_irq: SimDuration::from_micros(3),
            rx_stack: SimDuration::from_micros(6),
            rx_deliver: SimDuration::from_nanos(1_300),
            tx_stack: SimDuration::from_micros(3),
            rx_ring_packets: 300,
            socket_rx_bytes: 4 * 1024 * 1024,
            socket_tx_bytes: 256 * 1024,
        }
    }
}

impl CostConfig {
    /// Cost of copying `bytes` across the user/kernel boundary.
    pub fn copy_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 * self.copy_per_byte_ns) as u64)
    }
}

/// Per-node hardware/OS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NodeConfig {
    /// CPU cost model.
    pub costs: CostConfig,
    /// The node's single disk (the paper's nodes have one).
    pub disk: DiskSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_linearly() {
        let c = CostConfig::default();
        assert_eq!(c.copy_cost(0), SimDuration::ZERO);
        let one_kb = c.copy_cost(1024).as_nanos() as i64;
        let two_kb = c.copy_cost(2048).as_nanos() as i64;
        assert!((two_kb - 2 * one_kb).abs() <= 1, "{one_kb} vs {two_kb}");
    }

    #[test]
    fn defaults_are_sane() {
        let c = CostConfig::default();
        assert!(c.timeslice > c.context_switch);
        assert!(c.rx_ring_packets > 0);
        assert!(c.socket_rx_bytes > 0);
    }
}
